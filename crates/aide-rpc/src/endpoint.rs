//! RPC endpoints: request/reply correlation, the dispatcher worker pool,
//! and simulated link-time accounting.
//!
//! Each VM owns an [`Endpoint`]. A background *receiver loop* reads frames
//! from the transport: replies are routed to the blocked caller by sequence
//! number; requests are queued to a pool of worker threads that execute them
//! through the endpoint's [`Dispatcher`] — the paper's "pool of threads to
//! perform RPCs on behalf of the other JVM". Workers can re-enter the
//! interpreter, which may issue further nested remote calls, so the pool
//! must be at least as deep as the maximum cross-VM call nesting.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aide_graph::CommParams;
use aide_trace::{names as span_names, SpanContext};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::link::{LinkError, NetClock, Session};
use crate::reftable::{ExportTable, ImportTable};
use crate::transport::BackendKind;
use crate::wire::{Message, Reply, Request, WireError};

/// A unit of work queued to the serving pool: the dedup key, the request,
/// and the caller's wire trace context (the parent of the serve span).
type Job = (u64, u64, Request, Option<SpanContext>);

/// Process-wide source of endpoint (client) ids, carried in every request
/// frame so the serving side can deduplicate retries per caller.
static NEXT_CLIENT_ID: AtomicU64 = AtomicU64::new(1);

/// Metric handles resolved once per endpoint so the call path records
/// with plain atomic ops (no registry lookups).
struct RpcMetrics {
    requests: Arc<aide_telemetry::Counter>,
    backend_requests: Arc<aide_telemetry::Counter>,
    errors: Arc<aide_telemetry::Counter>,
    latency_micros: Arc<aide_telemetry::Histogram>,
    simulated_bytes: Arc<aide_telemetry::Counter>,
    retries: Arc<aide_telemetry::Counter>,
    dedup_hits: Arc<aide_telemetry::Counter>,
    late_replies: Arc<aide_telemetry::Counter>,
    bad_frames: Arc<aide_telemetry::Counter>,
}

/// Name of the per-backend request counter for `backend`.
fn backend_requests_name(backend: BackendKind) -> &'static str {
    match backend {
        BackendKind::InMemory => aide_telemetry::names::RPC_BACKEND_INMEM_REQUESTS,
        BackendKind::Tcp => aide_telemetry::names::RPC_BACKEND_TCP_REQUESTS,
        BackendKind::Emulated => aide_telemetry::names::RPC_BACKEND_EMU_REQUESTS,
    }
}

impl RpcMetrics {
    fn resolve(backend: BackendKind) -> Self {
        let t = aide_telemetry::global();
        RpcMetrics {
            requests: t.counter(aide_telemetry::names::RPC_REQUESTS),
            backend_requests: t.counter(backend_requests_name(backend)),
            errors: t.counter(aide_telemetry::names::RPC_ERRORS),
            latency_micros: t.histogram(
                aide_telemetry::names::RPC_LATENCY_MICROS,
                aide_telemetry::buckets::LATENCY_MICROS,
            ),
            simulated_bytes: t.counter(aide_telemetry::names::RPC_SIMULATED_BYTES),
            retries: t.counter(aide_telemetry::names::RPC_RETRIES),
            dedup_hits: t.counter(aide_telemetry::names::RPC_DEDUP_HITS),
            late_replies: t.counter(aide_telemetry::names::RPC_LATE_REPLIES),
            bad_frames: t.counter(aide_telemetry::names::RPC_BAD_FRAMES),
        }
    }
}

/// Errors surfaced to RPC callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The link closed before the reply arrived.
    Disconnected,
    /// No reply arrived within the endpoint's timeout.
    Timeout,
    /// The peer executed the request and reported an error.
    Remote(String),
    /// A malformed frame was received.
    Protocol(String),
    /// The peer refused the request under admission control: it is
    /// saturated, not failed. Callers should back off for at least
    /// `retry_after_ms` or place the work on a different peer — in-place
    /// retries are never attempted for this variant, because the reply
    /// did arrive and repeating it would only add load.
    Busy {
        /// Server's backoff hint, in milliseconds.
        retry_after_ms: u32,
    },
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Disconnected => f.write_str("peer disconnected"),
            RpcError::Timeout => f.write_str("rpc timed out"),
            RpcError::Remote(msg) => write!(f, "remote error: {msg}"),
            RpcError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            RpcError::Busy { retry_after_ms } => {
                write!(f, "peer busy, retry after {retry_after_ms}ms")
            }
        }
    }
}

impl std::error::Error for RpcError {}

impl From<LinkError> for RpcError {
    fn from(_: LinkError) -> Self {
        RpcError::Disconnected
    }
}

impl From<WireError> for RpcError {
    fn from(e: WireError) -> Self {
        RpcError::Protocol(e.to_string())
    }
}

/// Executes requests arriving from the peer.
///
/// The distributed platform implements this by re-entering the interpreter
/// ([`aide_vm::Machine::call_on`] and friends) on the serving VM.
pub trait Dispatcher: Send + Sync {
    /// Executes `request`, returning a reply payload or an error string
    /// that will be transported back to the caller.
    fn dispatch(&self, request: Request) -> Result<Reply, String>;
}

/// Retry discipline for [`Endpoint::call_with_retry`].
///
/// Retries resend the *same* frame — same sequence number, same client id —
/// so the serving side's at-most-once cache can recognise them, and a late
/// reply to an earlier attempt satisfies a later one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum send attempts (1 = no retries).
    pub max_attempts: u32,
    /// How long each attempt waits for a reply before resending.
    pub attempt_timeout: Duration,
    /// Backoff before the first retry; later retries scale by
    /// [`backoff_factor`](RetryPolicy::backoff_factor).
    pub base_backoff: Duration,
    /// Multiplier applied to the backoff after every retry.
    pub backoff_factor: f64,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
    /// Jitter fraction: each sleep is scaled by a factor drawn uniformly
    /// from `[1 - jitter, 1 + jitter]`. 0 disables jitter.
    pub jitter: f64,
    /// Overall deadline across all attempts and backoffs.
    pub deadline: Duration,
    /// Seed for the deterministic jitter stream (mixed with the request's
    /// sequence number so concurrent calls do not march in lockstep).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            attempt_timeout: Duration::from_secs(2),
            base_backoff: Duration::from_millis(25),
            backoff_factor: 2.0,
            max_backoff: Duration::from_secs(1),
            jitter: 0.25,
            deadline: Duration::from_secs(30),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// Configuration of an [`Endpoint`].
#[derive(Debug, Clone, Copy)]
pub struct EndpointConfig {
    /// Worker threads serving incoming requests. Must cover the deepest
    /// cross-VM call nesting (each nested bounce occupies one worker).
    pub workers: usize,
    /// How long a caller waits for a reply before giving up.
    pub call_timeout: Duration,
    /// How long the receiver keeps draining in-flight replies after
    /// shutdown begins. Bounds [`Endpoint::join`] even when the peer never
    /// acknowledges the shutdown (a crashed or hung surrogate).
    pub drain_timeout: Duration,
    /// Retry discipline used by [`Endpoint::call_with_retry`].
    pub retry: RetryPolicy,
}

impl Default for EndpointConfig {
    fn default() -> Self {
        EndpointConfig {
            workers: 64,
            call_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(1),
            retry: RetryPolicy::default(),
        }
    }
}

type PendingMap = Arc<Mutex<HashMap<u64, Sender<Result<Reply, String>>>>>;

/// Sequence numbers whose caller gave up waiting. When the reply finally
/// arrives the receiver counts it as a *late reply* instead of silently
/// discarding it — the observable symptom that a retry layer is needed.
type LateSet = Arc<Mutex<HashSet<u64>>>;

/// Bound on remembered timed-out sequence numbers; replies that never
/// arrive would otherwise grow the set forever.
const LATE_SET_CAPACITY: usize = 4096;

/// At-most-once execution cache on the serving side, keyed by
/// `(client id, sequence number)`.
///
/// A retried non-idempotent request ([`Request::Invoke`],
/// [`Request::Migrate`], …) must never execute twice: the first arrival
/// marks the key in-flight and executes; duplicates arriving during
/// execution are dropped (the eventual reply answers every copy, since
/// retries share the sequence number); duplicates arriving after
/// completion are answered from the memoized reply frame.
struct DedupCache {
    capacity: usize,
    entries: Mutex<DedupInner>,
}

#[derive(Default)]
struct DedupInner {
    map: HashMap<(u64, u64), Option<Vec<u8>>>,
    fifo: VecDeque<(u64, u64)>,
}

/// What the worker should do with an arriving request.
enum DedupDecision {
    /// First sighting: execute it.
    Execute,
    /// Duplicate of a request still executing: drop (its reply is coming).
    InFlight,
    /// Duplicate of a completed request: resend the memoized reply frame.
    Replay(Vec<u8>),
}

impl DedupCache {
    fn new(capacity: usize) -> Self {
        DedupCache {
            capacity: capacity.max(1),
            entries: Mutex::new(DedupInner::default()),
        }
    }

    fn begin(&self, key: (u64, u64)) -> DedupDecision {
        let mut inner = self.entries.lock();
        match inner.map.get(&key) {
            Some(None) => return DedupDecision::InFlight,
            Some(Some(frame)) => return DedupDecision::Replay(frame.clone()),
            None => {}
        }
        if inner.fifo.len() >= self.capacity {
            // Evict the oldest *completed* entry; in-flight markers rotate
            // to the back so an executing request is never forgotten.
            for _ in 0..inner.fifo.len() {
                let oldest = inner.fifo.pop_front().expect("fifo non-empty");
                if matches!(inner.map.get(&oldest), Some(None)) {
                    inner.fifo.push_back(oldest);
                } else {
                    inner.map.remove(&oldest);
                    break;
                }
            }
        }
        inner.map.insert(key, None);
        inner.fifo.push_back(key);
        DedupDecision::Execute
    }

    fn complete(&self, key: (u64, u64), reply_frame: Vec<u8>) {
        let mut inner = self.entries.lock();
        if let Some(slot) = inner.map.get_mut(&key) {
            *slot = Some(reply_frame);
        }
    }
}

/// Requests exempt from at-most-once bookkeeping: idempotent health and
/// introspection traffic that would otherwise churn the cache. Lease
/// renewals qualify — renewing twice is the same as renewing once.
fn is_idempotent(request: &Request) -> bool {
    matches!(
        request,
        Request::Ping | Request::Stats | Request::GcRenew { .. }
    )
}

/// Reference-table handles wired into an endpoint by
/// [`Endpoint::attach_gc`] so lease maintenance piggybacks on ordinary
/// traffic: every outgoing frame is stamped with the import table's
/// advertised lease epoch, and every stamped incoming frame renews the
/// export table's current-epoch leases.
struct GcHooks {
    exports: Arc<ExportTable>,
    imports: Arc<ImportTable>,
}

/// xorshift64 step returning a uniform f64 in [0, 1) — the same generator
/// the chaos schedule and failover backoff use, so jitter is reproducible.
fn xorshift_unit(state: &mut u64) -> f64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// One VM's side of the RPC connection.
pub struct Endpoint {
    session: Session,
    params: CommParams,
    clock: Arc<NetClock>,
    pending: PendingMap,
    late_expected: LateSet,
    next_seq: AtomicU64,
    client_id: u64,
    closing: Arc<AtomicBool>,
    shutdown_tx: Sender<()>,
    config: EndpointConfig,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    requests_served: Arc<AtomicU64>,
    retries: AtomicU64,
    dedup_hits: Arc<AtomicU64>,
    late_replies: Arc<AtomicU64>,
    bad_frames: Arc<AtomicU64>,
    gc: Arc<Mutex<Option<GcHooks>>>,
    metrics: RpcMetrics,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("workers", &self.config.workers)
            .field("closing", &self.closing.load(Ordering::Relaxed))
            .finish()
    }
}

impl Endpoint {
    /// Starts an endpoint: spawns the receiver loop and the worker pool.
    ///
    /// `dispatcher` serves the peer's requests; `clock` accumulates
    /// simulated link time priced by `params`.
    pub fn start(
        session: Session,
        params: CommParams,
        clock: Arc<NetClock>,
        dispatcher: Arc<dyn Dispatcher>,
        config: EndpointConfig,
    ) -> Arc<Endpoint> {
        let (shutdown_tx, shutdown_rx) = unbounded::<()>();
        let backend = session.backend();
        let endpoint = Arc::new(Endpoint {
            session: session.clone(),
            params,
            clock,
            pending: Arc::new(Mutex::new(HashMap::new())),
            late_expected: Arc::new(Mutex::new(HashSet::new())),
            next_seq: AtomicU64::new(0),
            client_id: NEXT_CLIENT_ID.fetch_add(1, Ordering::Relaxed),
            closing: Arc::new(AtomicBool::new(false)),
            shutdown_tx,
            config,
            threads: Mutex::new(Vec::new()),
            requests_served: Arc::new(AtomicU64::new(0)),
            retries: AtomicU64::new(0),
            dedup_hits: Arc::new(AtomicU64::new(0)),
            late_replies: Arc::new(AtomicU64::new(0)),
            bad_frames: Arc::new(AtomicU64::new(0)),
            gc: Arc::new(Mutex::new(None)),
            metrics: RpcMetrics::resolve(backend),
        });

        let (job_tx, job_rx) = unbounded::<Job>();
        let dedup = Arc::new(DedupCache::new(1024));

        // Threads inherit the spawner's track label, so an endpoint started
        // by the surrogate daemon exports its serve spans on the
        // "surrogate" Perfetto lane even in a single-process run.
        let track = aide_trace::current_track();

        // Worker pool.
        let mut handles = Vec::with_capacity(config.workers + 1);
        for i in 0..config.workers {
            let rx: Receiver<Job> = job_rx.clone();
            let disp = dispatcher.clone();
            let out = session.clone();
            let served = endpoint.requests_served.clone();
            let dedup = dedup.clone();
            let dedup_hits = endpoint.dedup_hits.clone();
            let dedup_hits_metric = endpoint.metrics.dedup_hits.clone();
            let gc = endpoint.gc.clone();
            let track = track.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rpc-worker-{i}"))
                    .spawn(move || {
                        aide_trace::set_thread_track(&track);
                        while let Ok((client, seq, request, ctx)) = rx.recv() {
                            let kind = request.kind();
                            let dedupable = !is_idempotent(&request);
                            if dedupable {
                                match dedup.begin((client, seq)) {
                                    DedupDecision::Execute => {}
                                    DedupDecision::InFlight => {
                                        dedup_hits.fetch_add(1, Ordering::Relaxed);
                                        dedup_hits_metric.inc();
                                        let mut span =
                                            aide_trace::child_of(ctx, span_names::RPC_DEDUP, "rpc");
                                        span.arg("kind", kind);
                                        span.arg("action", "drop_in_flight");
                                        continue;
                                    }
                                    DedupDecision::Replay(frame) => {
                                        dedup_hits.fetch_add(1, Ordering::Relaxed);
                                        dedup_hits_metric.inc();
                                        let mut span =
                                            aide_trace::child_of(ctx, span_names::RPC_DEDUP, "rpc");
                                        span.arg("kind", kind);
                                        span.arg("action", "replay_reply");
                                        drop(span);
                                        if out.send(frame).is_err() {
                                            break;
                                        }
                                        continue;
                                    }
                                }
                            }
                            // The serve span adopts the caller's wire context,
                            // which is what stitches client and surrogate into
                            // one connected trace tree.
                            let mut span = aide_trace::child_of(ctx, span_names::RPC_SERVE, "rpc");
                            span.arg("kind", kind);
                            span.arg("seq", seq);
                            let result = disp.dispatch(request);
                            served.fetch_add(1, Ordering::Relaxed);
                            let stamp = gc.lock().as_ref().map(|h| h.imports.advertised_epoch());
                            let frame = Message::Reply { seq, result }.encode_pooled_stamped(stamp);
                            drop(span);
                            if dedupable {
                                dedup.complete((client, seq), frame.to_vec());
                            }
                            if out.send(frame).is_err() {
                                break;
                            }
                        }
                        aide_trace::flush_thread();
                    })
                    .expect("spawn rpc worker"),
            );
        }

        // Receiver loop.
        {
            let session = session.clone();
            let pending = endpoint.pending.clone();
            let late_expected = endpoint.late_expected.clone();
            let closing = endpoint.closing.clone();
            let drain_timeout = config.drain_timeout;
            let late_replies = endpoint.late_replies.clone();
            let late_replies_metric = endpoint.metrics.late_replies.clone();
            let bad_frames = endpoint.bad_frames.clone();
            let bad_frames_metric = endpoint.metrics.bad_frames.clone();
            let gc = endpoint.gc.clone();
            let track = track.clone();
            handles.push(
                std::thread::Builder::new()
                    .name("rpc-recv".into())
                    .spawn(move || {
                        aide_trace::set_thread_track(&track);
                        receiver_loop(ReceiverCtx {
                            session: &session,
                            pending: &pending,
                            late_expected: &late_expected,
                            closing: &closing,
                            jobs: &job_tx,
                            shutdown: &shutdown_rx,
                            drain_timeout,
                            late_replies: &late_replies,
                            late_replies_metric: &late_replies_metric,
                            bad_frames: &bad_frames,
                            bad_frames_metric: &bad_frames_metric,
                            gc: &gc,
                        });
                        // Receiver gone: fail all outstanding calls.
                        pending.lock().clear();
                    })
                    .expect("spawn rpc receiver"),
            );
        }
        *endpoint.threads.lock() = handles;
        endpoint
    }

    /// Wires this endpoint into distributed GC lease maintenance.
    ///
    /// After this call every outgoing frame (request or reply) is stamped
    /// with `imports`' advertised lease epoch, and every stamped incoming
    /// frame renews `exports`' current-epoch leases — so steady-state RPC
    /// traffic keeps cross-VM references alive with no extra messages.
    pub fn attach_gc(&self, exports: Arc<ExportTable>, imports: Arc<ImportTable>) {
        *self.gc.lock() = Some(GcHooks { exports, imports });
    }

    /// The lease epoch to stamp on outgoing frames, when GC is attached.
    fn lease_stamp(&self) -> Option<u64> {
        self.gc
            .lock()
            .as_ref()
            .map(|h| h.imports.advertised_epoch())
    }

    /// Number of requests this endpoint has served for its peer.
    ///
    /// Retries absorbed by the at-most-once cache are *not* counted here —
    /// this is the number of actual dispatcher executions.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Process-unique id stamped into every request this endpoint sends;
    /// the serving side keys its at-most-once cache by `(client_id, seq)`.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Number of request frames this endpoint re-sent from
    /// [`call_with_retry`](Endpoint::call_with_retry).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Number of duplicate requests absorbed by the at-most-once cache
    /// while serving the peer (dropped in-flight or answered from the
    /// memoized reply).
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits.load(Ordering::Relaxed)
    }

    /// Number of replies that arrived after their caller had already timed
    /// out. Before the retry layer these were silently dropped; now they
    /// are accounted for, and retries (which keep the original sequence
    /// number registered) consume them directly.
    pub fn late_replies(&self) -> u64 {
        self.late_replies.load(Ordering::Relaxed)
    }

    /// Number of frames that failed to decode (truncated, corrupted, or
    /// wrong protocol version) and were discarded.
    pub fn bad_frames(&self) -> u64 {
        self.bad_frames.load(Ordering::Relaxed)
    }

    /// The shared simulated-communication clock.
    pub fn clock(&self) -> &Arc<NetClock> {
        &self.clock
    }

    /// Real traffic statistics of this endpoint's session.
    pub fn traffic(&self) -> &Arc<crate::link::TrafficStats> {
        self.session.stats()
    }

    /// Which backend this endpoint's session rides on.
    pub fn backend(&self) -> BackendKind {
        self.session.backend()
    }

    /// Sends `request` to the peer and blocks until its reply arrives,
    /// charging simulated link time for the round trip.
    ///
    /// # Errors
    ///
    /// [`RpcError::Remote`] if the peer reported an execution error,
    /// [`RpcError::Disconnected`] / [`RpcError::Timeout`] on link failures.
    pub fn call(&self, request: Request) -> Result<Reply, RpcError> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut span = aide_trace::span(span_names::RPC_CALL, "rpc");
        span.arg("kind", request.kind());
        span.arg("seq", seq);
        let msg = Message::Request {
            seq,
            client: self.client_id,
            body: request,
        };
        let req_bytes = msg.simulated_request_bytes();
        let (reply_bytes, is_migrate) = match &msg {
            Message::Request { body, .. } => (
                Message::simulated_reply_bytes(body),
                matches!(
                    body,
                    Request::Migrate { .. } | Request::MigratePrepare { .. }
                ),
            ),
            Message::Reply { .. } => unreachable!(),
        };

        let (tx, rx) = unbounded();
        self.pending.lock().insert(seq, tx);
        // Encoded while the call span is ambient, so the frame carries it
        // as the wire trace context.
        let frame = msg.encode_pooled_stamped(self.lease_stamp());
        let started = std::time::Instant::now();
        if let Err(e) = self.session.send(frame) {
            self.pending.lock().remove(&seq);
            self.metrics.errors.inc();
            span.arg("outcome", "disconnected");
            return Err(e.into());
        }

        let outcome = rx
            .recv_timeout(self.config.call_timeout)
            .map_err(|e| match e {
                crossbeam::channel::RecvTimeoutError::Timeout => RpcError::Timeout,
                crossbeam::channel::RecvTimeoutError::Disconnected => RpcError::Disconnected,
            });
        self.pending.lock().remove(&seq);
        self.metrics.requests.inc();
        self.metrics.backend_requests.inc();
        let elapsed_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.metrics.latency_micros.observe(elapsed_micros);
        crate::observe::call_completed(seq, 1, elapsed_micros, matches!(&outcome, Ok(Ok(_))));
        let result = match outcome {
            Ok(r) => r,
            Err(e) => {
                if e == RpcError::Timeout {
                    // Remember the abandoned sequence number so the
                    // receiver can count the reply if it straggles in.
                    self.note_late_expected(seq);
                }
                self.metrics.errors.inc();
                span.arg(
                    "outcome",
                    match &e {
                        RpcError::Timeout => "timeout",
                        _ => "disconnected",
                    },
                );
                return Err(e);
            }
        };
        span.arg(
            "outcome",
            match &result {
                Ok(Reply::Busy { .. }) => "busy",
                Ok(_) => "ok",
                Err(_) => "remote_error",
            },
        );
        self.metrics.simulated_bytes.add(req_bytes + reply_bytes);

        // Simulated link time: bulk transfers (offloading) stream at link
        // bandwidth with half-RTT setup; everything else is a synchronous
        // round trip.
        let seconds = if is_migrate {
            self.params.transfer_seconds(req_bytes)
        } else {
            self.params.rtt_seconds
                + ((req_bytes + reply_bytes) as f64 * 8.0) / self.params.bandwidth_bps
        };
        self.clock.add(seconds);
        self.clock.note_round_trip();

        match result {
            Ok(Reply::Busy { retry_after_ms }) => {
                self.metrics.errors.inc();
                Err(RpcError::Busy { retry_after_ms })
            }
            Ok(reply) => Ok(reply),
            Err(msg) => {
                self.metrics.errors.inc();
                Err(RpcError::Remote(msg))
            }
        }
    }

    /// Like [`call`], but resends the request under the endpoint's
    /// [`RetryPolicy`] until a reply arrives, the attempt budget is spent,
    /// or the deadline passes.
    ///
    /// Every attempt reuses the *same* sequence number and client id, so:
    ///
    /// * the serving side's at-most-once cache recognises duplicates and
    ///   never executes a non-idempotent request twice;
    /// * the caller stays registered for the sequence number across
    ///   attempts, so a late reply to attempt *n* satisfies attempt *n+1*
    ///   directly instead of being discarded.
    ///
    /// Simulated link time is charged once for the logical round trip —
    /// retries model real-time recovery, not extra application traffic.
    ///
    /// # Errors
    ///
    /// [`RpcError::Timeout`] once attempts or deadline are exhausted,
    /// [`RpcError::Disconnected`] if the link closes, [`RpcError::Remote`]
    /// if the peer executed the request and reported an error.
    ///
    /// [`call`]: Endpoint::call
    pub fn call_with_retry(&self, request: Request) -> Result<Reply, RpcError> {
        let policy = self.config.retry;
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut retry_span = aide_trace::span(span_names::RPC_RETRY, "rpc");
        retry_span.arg("kind", request.kind());
        retry_span.arg("seq", seq);
        let msg = Message::Request {
            seq,
            client: self.client_id,
            body: request,
        };
        let req_bytes = msg.simulated_request_bytes();
        let (reply_bytes, is_migrate) = match &msg {
            Message::Request { body, .. } => (
                Message::simulated_reply_bytes(body),
                matches!(
                    body,
                    Request::Migrate { .. } | Request::MigratePrepare { .. }
                ),
            ),
            Message::Reply { .. } => unreachable!(),
        };

        let (tx, rx) = unbounded();
        self.pending.lock().insert(seq, tx);
        let deadline = Instant::now() + policy.deadline;
        let mut jitter_state = (policy.seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
        let started = Instant::now();
        let mut attempt: u32 = 0;
        let outcome = loop {
            attempt += 1;
            if attempt > 1 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                self.metrics.retries.inc();
            }
            // Each attempt is its own span and re-encodes the frame under
            // it, so the serving side parents its serve span on the exact
            // attempt that reached it — the payload bytes are identical
            // across attempts (same seq, same client), only the trace
            // context differs, so the at-most-once dedup still works.
            let mut attempt_span = aide_trace::span(span_names::RPC_ATTEMPT, "rpc");
            attempt_span.arg("attempt", attempt);
            let frame = msg.encode_pooled_stamped(self.lease_stamp());
            if self.session.send(frame).is_err() {
                attempt_span.arg("outcome", "disconnected");
                break Err(RpcError::Disconnected);
            }
            let wait = policy
                .attempt_timeout
                .min(deadline.saturating_duration_since(Instant::now()));
            match rx.recv_timeout(wait) {
                Ok(r) => {
                    attempt_span.arg("outcome", "ok");
                    break Ok(r);
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    attempt_span.arg("outcome", "disconnected");
                    break Err(RpcError::Disconnected);
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    attempt_span.arg("outcome", "timeout");
                    // Close the attempt before sleeping: the backoff is a
                    // sibling span, so attempt and backoff durations never
                    // overlap in the critical-path attribution.
                    drop(attempt_span);
                    let now = Instant::now();
                    if attempt >= policy.max_attempts || now >= deadline {
                        break Err(RpcError::Timeout);
                    }
                    let exp = policy.base_backoff.as_secs_f64()
                        * policy.backoff_factor.powi(attempt as i32 - 1);
                    let capped = exp.min(policy.max_backoff.as_secs_f64());
                    let scale =
                        1.0 + policy.jitter * (2.0 * xorshift_unit(&mut jitter_state) - 1.0);
                    let sleep = Duration::from_secs_f64((capped * scale).max(0.0))
                        .min(deadline.saturating_duration_since(now));
                    let mut backoff_span = aide_trace::span(span_names::RPC_BACKOFF, "rpc");
                    backoff_span.arg("micros", sleep.as_micros());
                    std::thread::sleep(sleep);
                }
            }
        };
        self.pending.lock().remove(&seq);
        self.metrics.requests.inc();
        self.metrics.backend_requests.inc();
        let elapsed_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.metrics.latency_micros.observe(elapsed_micros);
        crate::observe::call_completed(seq, attempt, elapsed_micros, matches!(&outcome, Ok(Ok(_))));
        retry_span.arg("attempts", attempt);
        let result = match outcome {
            Ok(r) => r,
            Err(e) => {
                if e == RpcError::Timeout {
                    self.note_late_expected(seq);
                }
                self.metrics.errors.inc();
                retry_span.arg(
                    "outcome",
                    match &e {
                        RpcError::Timeout => "timeout",
                        _ => "disconnected",
                    },
                );
                return Err(e);
            }
        };
        retry_span.arg(
            "outcome",
            match &result {
                Ok(Reply::Busy { .. }) => "busy",
                Ok(_) => "ok",
                Err(_) => "remote_error",
            },
        );
        self.metrics.simulated_bytes.add(req_bytes + reply_bytes);
        let seconds = if is_migrate {
            self.params.transfer_seconds(req_bytes)
        } else {
            self.params.rtt_seconds
                + ((req_bytes + reply_bytes) as f64 * 8.0) / self.params.bandwidth_bps
        };
        self.clock.add(seconds);
        self.clock.note_round_trip();

        // A Busy reply is an answer, not a loss: it never burns another
        // attempt here (the loop already broke on the reply) and surfaces
        // as its own error so placement can move the work elsewhere.
        match result {
            Ok(Reply::Busy { retry_after_ms }) => {
                self.metrics.errors.inc();
                Err(RpcError::Busy { retry_after_ms })
            }
            Ok(reply) => Ok(reply),
            Err(msg) => {
                self.metrics.errors.inc();
                Err(RpcError::Remote(msg))
            }
        }
    }

    /// Marks `seq` as timed-out-but-possibly-answered, bounding the set so
    /// replies that never arrive cannot grow it without limit.
    fn note_late_expected(&self, seq: u64) {
        let mut late = self.late_expected.lock();
        if late.len() >= LATE_SET_CAPACITY {
            late.clear();
        }
        late.insert(seq);
    }

    /// Sends a null RPC ([`Request::Ping`]) and measures the *real*
    /// round-trip time.
    ///
    /// Unlike [`call`], no simulated link time is charged and no round trip
    /// is recorded on the [`NetClock`]: probes are health measurements
    /// (surrogate discovery, heartbeats), not application communication, so
    /// they must not pollute virtual-time accounting.
    ///
    /// # Errors
    ///
    /// [`RpcError::Timeout`] if no reply arrives within `timeout`,
    /// [`RpcError::Disconnected`] if the link is down.
    ///
    /// [`call`]: Endpoint::call
    pub fn probe(&self, timeout: Duration) -> Result<Duration, RpcError> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = unbounded();
        self.pending.lock().insert(seq, tx);
        let frame = Message::Request {
            seq,
            client: self.client_id,
            body: Request::Ping,
        }
        .encode_pooled_stamped(self.lease_stamp());
        let started = std::time::Instant::now();
        if let Err(e) = self.session.send(frame) {
            self.pending.lock().remove(&seq);
            return Err(e.into());
        }
        let outcome = rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => RpcError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => RpcError::Disconnected,
        });
        self.pending.lock().remove(&seq);
        outcome?.map_err(RpcError::Remote)?;
        let rtt = started.elapsed();
        self.metrics.requests.inc();
        self.metrics.backend_requests.inc();
        self.metrics
            .latency_micros
            .observe(u64::try_from(rtt.as_micros()).unwrap_or(u64::MAX));
        Ok(rtt)
    }

    /// Initiates an orderly shutdown: tells the peer (fire-and-forget so a
    /// half-closed peer cannot stall us), then signals the receiver to
    /// begin its bounded drain.
    pub fn shutdown(&self) {
        if self.closing.swap(true, Ordering::SeqCst) {
            return;
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let frame = Message::Request {
            seq,
            client: self.client_id,
            body: Request::Shutdown,
        }
        .encode_pooled();
        let _ = self.session.send(frame);
        let _ = self.shutdown_tx.send(());
    }

    /// Waits for the endpoint's threads to finish. After [`shutdown`] this
    /// returns within roughly [`EndpointConfig::drain_timeout`] even if the
    /// peer is dead or never acknowledges — the receiver's drain phase has
    /// a deadline, not just an idle condition.
    ///
    /// [`shutdown`]: Endpoint::shutdown
    pub fn join(&self) {
        let handles = std::mem::take(&mut *self.threads.lock());
        for h in handles {
            let _ = h.join();
        }
        // Tell a multiplexed carrier this logical session is finished so
        // the mux can free its route (no-op on direct channel sessions).
        self.session.close();
    }
}

/// Everything the receiver loop needs, bundled to keep the signature sane.
struct ReceiverCtx<'a> {
    session: &'a Session,
    pending: &'a PendingMap,
    late_expected: &'a LateSet,
    closing: &'a AtomicBool,
    jobs: &'a Sender<Job>,
    shutdown: &'a Receiver<()>,
    drain_timeout: Duration,
    late_replies: &'a AtomicU64,
    late_replies_metric: &'a aide_telemetry::Counter,
    bad_frames: &'a AtomicU64,
    bad_frames_metric: &'a aide_telemetry::Counter,
    gc: &'a Mutex<Option<GcHooks>>,
}

fn receiver_loop(ctx: ReceiverCtx<'_>) {
    let ReceiverCtx {
        session,
        pending,
        late_expected,
        closing,
        jobs,
        shutdown,
        drain_timeout,
        late_replies,
        late_replies_metric,
        bad_frames,
        bad_frames_metric,
        gc,
    } = ctx;
    let incoming = session.incoming();
    // `None` while running normally; set to a deadline once shutdown begins
    // (locally via the signal channel, or by the peer's Shutdown frame).
    // The deadline bounds the drain of in-flight replies so `join()` cannot
    // hang on a peer that never acknowledges.
    let mut drain_until: Option<std::time::Instant> = None;
    loop {
        let frame = if let Some(deadline) = drain_until {
            if pending.lock().is_empty() {
                return;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return;
            }
            match incoming.recv_timeout((deadline - now).min(Duration::from_millis(20))) {
                Ok(frame) => frame,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            }
        } else {
            // Steady state: block on the transport with no idle wakeups; an
            // explicit shutdown signal interrupts the wait immediately.
            crossbeam::select! {
                recv(incoming) -> msg => match msg {
                    Ok(frame) => frame,
                    Err(_) => return,
                },
                recv(shutdown) -> _ => {
                    closing.store(true, Ordering::SeqCst);
                    drain_until = Some(std::time::Instant::now() + drain_timeout);
                    continue;
                }
            }
        };
        session.note_received(frame.len());
        match Message::decode_stamped(&frame) {
            Ok((message, ctx, lease)) => {
                if let Some(epoch) = lease {
                    // The peer's lease stamp rides every frame: renewing
                    // here is what makes ordinary traffic keep this side's
                    // exports alive with no dedicated GC messages.
                    if let Some(hooks) = gc.lock().as_ref() {
                        hooks.exports.renew(epoch);
                    }
                }
                match message {
                    Message::Request { seq, client, body } => {
                        if matches!(body, Request::Shutdown) {
                            // Fire-and-forget: the sender does not wait for
                            // a reply.
                            closing.store(true, Ordering::SeqCst);
                            if drain_until.is_none() {
                                drain_until = Some(std::time::Instant::now() + drain_timeout);
                            }
                            continue;
                        }
                        if jobs.send((client, seq, body, ctx)).is_err() {
                            return;
                        }
                    }
                    Message::Reply { seq, result } => {
                        let waiter = pending.lock().remove(&seq);
                        if let Some(tx) = waiter {
                            let _ = tx.send(result);
                        } else if late_expected.lock().remove(&seq) {
                            // The caller already gave up on this sequence
                            // number: account for the straggler instead of
                            // losing it silently. (Replies to retried calls
                            // never land here — retries keep their waiter
                            // registered.)
                            late_replies.fetch_add(1, Ordering::Relaxed);
                            late_replies_metric.inc();
                        }
                    }
                }
            }
            Err(_) => {
                // Malformed frame (truncated, corrupted, wrong version):
                // count and drop it; retries recover the request.
                bad_frames.fetch_add(1, Ordering::Relaxed);
                bad_frames_metric.inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;
    use aide_vm::{ClassId, ObjectId};

    /// A dispatcher that answers ClassOf with a fixed class and echoes slot
    /// reads, failing on unknown objects.
    struct TestDispatcher {
        known: ObjectId,
    }

    impl Dispatcher for TestDispatcher {
        fn dispatch(&self, request: Request) -> Result<Reply, String> {
            match request {
                Request::ClassOf { target } if target == self.known => Ok(Reply::Class(ClassId(7))),
                Request::ClassOf { target } => Err(format!("dangling {target}")),
                Request::GetSlot { .. } => Ok(Reply::Slot(Some(self.known))),
                Request::FieldAccess { .. } => Ok(Reply::Unit),
                Request::Native { .. } => Ok(Reply::Unit),
                _ => Ok(Reply::Unit),
            }
        }
    }

    fn pair() -> (Arc<Endpoint>, Arc<Endpoint>) {
        let (link, ct, st) = Link::pair(CommParams::WAVELAN);
        let clock = link.clock.clone();
        let d1 = Arc::new(TestDispatcher {
            known: ObjectId::client(1),
        });
        let d2 = Arc::new(TestDispatcher {
            known: ObjectId::surrogate(2),
        });
        let client = Endpoint::start(
            ct,
            link.params,
            clock.clone(),
            d1,
            EndpointConfig::default(),
        );
        let surrogate = Endpoint::start(st, link.params, clock, d2, EndpointConfig::default());
        (client, surrogate)
    }

    #[test]
    fn request_reply_round_trip() {
        let (client, surrogate) = pair();
        let reply = client
            .call(Request::ClassOf {
                target: ObjectId::surrogate(2),
            })
            .unwrap();
        assert_eq!(reply, Reply::Class(ClassId(7)));
        assert_eq!(surrogate.requests_served(), 1);
    }

    #[test]
    fn remote_errors_are_propagated() {
        let (client, _surrogate) = pair();
        let err = client
            .call(Request::ClassOf {
                target: ObjectId::surrogate(99),
            })
            .unwrap_err();
        match err {
            RpcError::Remote(msg) => assert!(msg.contains("dangling")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn concurrent_calls_are_correlated() {
        let (client, _surrogate) = pair();
        let client = Arc::new(client);
        let mut joins = Vec::new();
        for _ in 0..8 {
            let c = client.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let reply = c
                        .call(Request::GetSlot {
                            target: ObjectId::surrogate(2),
                            slot: 0,
                        })
                        .unwrap();
                    assert_eq!(reply, Reply::Slot(Some(ObjectId::surrogate(2))));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn link_time_is_charged_per_round_trip() {
        let (client, _surrogate) = pair();
        let before = client.clock().seconds();
        client
            .call(Request::FieldAccess {
                target: ObjectId::surrogate(2),
                bytes: 0,
                write: false,
            })
            .unwrap();
        let delta = client.clock().seconds() - before;
        // One WaveLAN round trip (2.4 ms) plus two 32-byte headers.
        let expected = 2.4e-3 + (64.0 * 8.0) / 11.0e6;
        assert!((delta - expected).abs() < 1e-9, "delta {delta}");
        assert_eq!(client.clock().round_trips(), 1);
    }

    #[test]
    fn payload_bytes_stretch_link_time() {
        let (client, _surrogate) = pair();
        let before = client.clock().seconds();
        client
            .call(Request::FieldAccess {
                target: ObjectId::surrogate(2),
                bytes: 1_100_000, // ~0.8 s at 11 Mbps
                write: false,
            })
            .unwrap();
        let delta = client.clock().seconds() - before;
        assert!(delta > 0.75, "expected ~0.8 s of link time, got {delta}");
    }

    #[test]
    fn shutdown_stops_both_endpoints() {
        let (client, surrogate) = pair();
        client.shutdown();
        surrogate.shutdown();
        client.join();
        surrogate.join();
    }

    #[test]
    fn calls_after_peer_death_fail_fast() {
        let (link, ct, st) = Link::pair(CommParams::WAVELAN);
        let clock = link.clock.clone();
        let client = Endpoint::start(
            ct,
            link.params,
            clock,
            Arc::new(TestDispatcher {
                known: ObjectId::client(1),
            }),
            EndpointConfig {
                workers: 2,
                call_timeout: Duration::from_millis(200),
                drain_timeout: Duration::from_millis(200),
                ..EndpointConfig::default()
            },
        );
        drop(st); // peer never existed
        let err = client
            .call(Request::ClassOf {
                target: ObjectId::surrogate(0),
            })
            .unwrap_err();
        assert!(matches!(err, RpcError::Disconnected | RpcError::Timeout));
    }

    #[test]
    fn probe_measures_rtt_without_charging_link_time() {
        let (client, surrogate) = pair();
        let before_seconds = client.clock().seconds();
        let before_trips = client.clock().round_trips();
        client.probe(Duration::from_secs(2)).unwrap();
        assert_eq!(client.clock().seconds(), before_seconds);
        assert_eq!(client.clock().round_trips(), before_trips);
        assert_eq!(surrogate.requests_served(), 1);
    }

    #[test]
    fn probe_times_out_against_a_silent_peer() {
        let (link, ct, _st) = Link::pair(CommParams::WAVELAN);
        let client = Endpoint::start(
            ct,
            link.params,
            link.clock.clone(),
            Arc::new(TestDispatcher {
                known: ObjectId::client(1),
            }),
            EndpointConfig::default(),
        );
        // `_st` is alive but nothing serves it: the probe must not hang.
        let err = client.probe(Duration::from_millis(100)).unwrap_err();
        assert_eq!(err, RpcError::Timeout);
    }

    #[test]
    fn join_is_bounded_when_peer_never_acks_with_calls_in_flight() {
        let (link, ct, _st) = Link::pair(CommParams::WAVELAN);
        let client = Endpoint::start(
            ct,
            link.params,
            link.clock.clone(),
            Arc::new(TestDispatcher {
                known: ObjectId::client(1),
            }),
            EndpointConfig {
                workers: 2,
                call_timeout: Duration::from_secs(30),
                drain_timeout: Duration::from_millis(100),
                ..EndpointConfig::default()
            },
        );
        // A call that will never be answered: the peer transport is held
        // open (so the link is up) but nothing serves it.
        let caller = {
            let c = client.clone();
            std::thread::spawn(move || {
                c.call(Request::ClassOf {
                    target: ObjectId::surrogate(0),
                })
                .unwrap_err()
            })
        };
        // Let the call get in flight before shutting down.
        std::thread::sleep(Duration::from_millis(50));
        let started = std::time::Instant::now();
        client.shutdown();
        client.join();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "join must be bounded by the drain deadline, took {:?}",
            started.elapsed()
        );
        // The abandoned caller fails fast once the receiver clears pending.
        let err = caller.join().unwrap();
        assert!(matches!(err, RpcError::Disconnected | RpcError::Timeout));
    }

    #[test]
    fn shutdown_with_idle_peer_joins_promptly() {
        let (client, surrogate) = pair();
        let started = std::time::Instant::now();
        client.shutdown();
        client.join();
        surrogate.join();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "both sides wound down, took {:?}",
            started.elapsed()
        );
    }

    /// A dispatcher whose every execution takes `delay` of wall time.
    struct SlowDispatcher {
        delay: Duration,
    }

    impl Dispatcher for SlowDispatcher {
        fn dispatch(&self, _request: Request) -> Result<Reply, String> {
            std::thread::sleep(self.delay);
            Ok(Reply::Unit)
        }
    }

    #[test]
    fn retry_reuses_the_sequence_number_and_executes_once() {
        // The surrogate is slower than one attempt timeout, so the first
        // attempt gives up and resends. Because the retry keeps the same
        // sequence number registered, the late reply to attempt 1
        // satisfies attempt 2, and the duplicate request is absorbed by
        // the at-most-once cache instead of executing twice.
        let (link, ct, st) = Link::pair(CommParams::WAVELAN);
        let clock = link.clock.clone();
        let client = Endpoint::start(
            ct,
            link.params,
            clock.clone(),
            Arc::new(TestDispatcher {
                known: ObjectId::client(1),
            }),
            EndpointConfig {
                retry: RetryPolicy {
                    max_attempts: 8,
                    attempt_timeout: Duration::from_millis(100),
                    base_backoff: Duration::from_millis(1),
                    deadline: Duration::from_secs(10),
                    ..RetryPolicy::default()
                },
                ..EndpointConfig::default()
            },
        );
        let surrogate = Endpoint::start(
            st,
            link.params,
            clock,
            Arc::new(SlowDispatcher {
                delay: Duration::from_millis(350),
            }),
            EndpointConfig::default(),
        );
        let reply = client
            .call_with_retry(Request::FieldAccess {
                target: ObjectId::surrogate(1),
                bytes: 0,
                write: true,
            })
            .unwrap();
        assert_eq!(reply, Reply::Unit);
        assert!(client.retries() >= 1, "expected at least one resend");
        assert_eq!(
            surrogate.requests_served(),
            1,
            "the request must execute exactly once"
        );
        assert!(
            surrogate.dedup_hits() >= 1,
            "duplicates must be absorbed by the cache"
        );
        client.shutdown();
        surrogate.shutdown();
    }

    #[test]
    fn duplicated_requests_execute_once() {
        let (link, ct, st) = Link::pair(CommParams::WAVELAN);
        let clock = link.clock.clone();
        let (ct, _chaos_stats) = crate::chaos::chaos_wrap(
            ct,
            crate::chaos::ChaosSchedule {
                duplicate: 1.0,
                ..crate::chaos::ChaosSchedule::seeded(11)
            },
        );
        let client = Endpoint::start(
            ct,
            link.params,
            clock.clone(),
            Arc::new(TestDispatcher {
                known: ObjectId::client(1),
            }),
            EndpointConfig::default(),
        );
        let surrogate = Endpoint::start(
            st,
            link.params,
            clock,
            Arc::new(TestDispatcher {
                known: ObjectId::surrogate(2),
            }),
            EndpointConfig::default(),
        );
        for _ in 0..20 {
            let reply = client
                .call(Request::GetSlot {
                    target: ObjectId::surrogate(2),
                    slot: 0,
                })
                .unwrap();
            assert_eq!(reply, Reply::Slot(Some(ObjectId::surrogate(2))));
        }
        // Every request arrived twice; each logical request executed once
        // and its duplicate hit the cache.
        assert_eq!(surrogate.requests_served(), 20);
        assert_eq!(surrogate.dedup_hits(), 20);
        client.shutdown();
        surrogate.shutdown();
    }

    #[test]
    fn attached_gc_renews_leases_on_ordinary_traffic() {
        let (client, surrogate) = pair();
        let s_exports = Arc::new(ExportTable::new());
        let s_imports = Arc::new(ImportTable::new());
        s_exports.set_ttl_ms(100);
        surrogate.attach_gc(s_exports.clone(), s_imports);
        client.attach_gc(Arc::new(ExportTable::new()), Arc::new(ImportTable::new()));

        let id = ObjectId::surrogate(2);
        s_exports.export(id);
        s_exports.clock().advance_ms(90);
        // An ordinary request from the client carries its lease stamp; the
        // surrogate's receiver renews its exports before dispatching, so
        // by the time the reply is back the lease is fresh.
        client
            .call(Request::GetSlot {
                target: id,
                slot: 0,
            })
            .unwrap();
        s_exports.clock().advance_ms(90);
        assert!(
            s_exports.sweep_expired().is_empty(),
            "ordinary traffic must renew the lease"
        );
        // Silence past the TTL expires it.
        s_exports.clock().advance_ms(200);
        assert_eq!(s_exports.sweep_expired(), vec![id]);
        client.shutdown();
        surrogate.shutdown();
    }

    #[test]
    fn serve_spans_adopt_the_callers_wire_context() {
        let (client, surrogate) = pair();
        let root = aide_trace::span("endpoint.test.root", "test");
        let root_ctx = root.context();
        client
            .call(Request::GetSlot {
                target: ObjectId::surrogate(2),
                slot: 0,
            })
            .unwrap();
        drop(root);
        // Joining the endpoints exits their worker threads, which flushes
        // their thread-local span buffers.
        client.shutdown();
        surrogate.shutdown();
        client.join();
        surrogate.join();
        aide_trace::flush_thread();
        let spans = aide_trace::snapshot();
        let serve = spans
            .iter()
            .find(|s| s.trace_id == root_ctx.trace_id && s.name == span_names::RPC_SERVE)
            .expect("the serving side must record a span in the caller's trace");
        let call = spans
            .iter()
            .find(|s| Some(s.span_id) == serve.parent_id)
            .expect("the serve span's parent must be in the same export");
        assert_eq!(call.name, span_names::RPC_CALL);
        assert_eq!(call.parent_id, Some(root_ctx.span_id));
        assert_eq!(serve.arg("kind"), Some("GetSlot"));
    }

    #[test]
    fn retry_attempts_get_their_own_spans_with_backoff() {
        let (link, ct, st) = Link::pair(CommParams::WAVELAN);
        let clock = link.clock.clone();
        let client = Endpoint::start(
            ct,
            link.params,
            clock.clone(),
            Arc::new(TestDispatcher {
                known: ObjectId::client(1),
            }),
            EndpointConfig {
                retry: RetryPolicy {
                    max_attempts: 8,
                    attempt_timeout: Duration::from_millis(80),
                    base_backoff: Duration::from_millis(5),
                    deadline: Duration::from_secs(10),
                    ..RetryPolicy::default()
                },
                ..EndpointConfig::default()
            },
        );
        let surrogate = Endpoint::start(
            st,
            link.params,
            clock,
            Arc::new(SlowDispatcher {
                delay: Duration::from_millis(250),
            }),
            EndpointConfig::default(),
        );
        let root = aide_trace::span("endpoint.test.retry", "test");
        let root_ctx = root.context();
        client
            .call_with_retry(Request::FieldAccess {
                target: ObjectId::surrogate(1),
                bytes: 0,
                write: true,
            })
            .unwrap();
        drop(root);
        client.shutdown();
        surrogate.shutdown();
        client.join();
        surrogate.join();
        aide_trace::flush_thread();
        let spans = aide_trace::snapshot();
        let ours: Vec<_> = spans
            .iter()
            .filter(|s| s.trace_id == root_ctx.trace_id)
            .collect();
        let attempts: Vec<_> = ours
            .iter()
            .filter(|s| s.name == span_names::RPC_ATTEMPT)
            .collect();
        assert!(
            attempts.len() >= 2,
            "a timed-out first attempt and a winning retry, got {}",
            attempts.len()
        );
        assert!(
            attempts.iter().any(|a| a.arg("outcome") == Some("timeout")),
            "the losing attempt must be visible"
        );
        assert!(
            attempts.iter().any(|a| a.arg("outcome") == Some("ok")),
            "the winning attempt must be visible"
        );
        assert!(
            ours.iter()
                .any(|s| s.name == span_names::RPC_BACKOFF && s.arg("micros").is_some()),
            "the backoff sleep must be recorded with its duration"
        );
        // The dedup absorption on the serving side lands in this trace too.
        assert!(
            ours.iter().any(|s| s.name == span_names::RPC_DEDUP),
            "the absorbed duplicate must be attributed to the originating trace"
        );
    }

    #[test]
    fn late_replies_are_counted_not_lost() {
        let (link, ct, st) = Link::pair(CommParams::WAVELAN);
        let clock = link.clock.clone();
        let client = Endpoint::start(
            ct,
            link.params,
            clock.clone(),
            Arc::new(TestDispatcher {
                known: ObjectId::client(1),
            }),
            EndpointConfig {
                call_timeout: Duration::from_millis(50),
                ..EndpointConfig::default()
            },
        );
        let surrogate = Endpoint::start(
            st,
            link.params,
            clock,
            Arc::new(SlowDispatcher {
                delay: Duration::from_millis(200),
            }),
            EndpointConfig::default(),
        );
        let err = client
            .call(Request::FieldAccess {
                target: ObjectId::surrogate(1),
                bytes: 0,
                write: false,
            })
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout);
        // The reply straggles in ~150 ms after the caller gave up.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while client.late_replies() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(client.late_replies(), 1);
        client.shutdown();
        surrogate.shutdown();
    }
}
