//! RPC endpoints: request/reply correlation, the dispatcher worker pool,
//! and simulated link-time accounting.
//!
//! Each VM owns an [`Endpoint`]. A background *receiver loop* reads frames
//! from the transport: replies are routed to the blocked caller by sequence
//! number; requests are queued to a pool of worker threads that execute them
//! through the endpoint's [`Dispatcher`] — the paper's "pool of threads to
//! perform RPCs on behalf of the other JVM". Workers can re-enter the
//! interpreter, which may issue further nested remote calls, so the pool
//! must be at least as deep as the maximum cross-VM call nesting.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aide_graph::CommParams;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::link::{LinkError, NetClock, Transport};
use crate::wire::{Message, Reply, Request, WireError};

/// Metric handles resolved once per endpoint so the call path records
/// with plain atomic ops (no registry lookups).
struct RpcMetrics {
    requests: Arc<aide_telemetry::Counter>,
    errors: Arc<aide_telemetry::Counter>,
    latency_micros: Arc<aide_telemetry::Histogram>,
    simulated_bytes: Arc<aide_telemetry::Counter>,
}

impl RpcMetrics {
    fn resolve() -> Self {
        let t = aide_telemetry::global();
        RpcMetrics {
            requests: t.counter(aide_telemetry::names::RPC_REQUESTS),
            errors: t.counter(aide_telemetry::names::RPC_ERRORS),
            latency_micros: t.histogram(
                aide_telemetry::names::RPC_LATENCY_MICROS,
                aide_telemetry::buckets::LATENCY_MICROS,
            ),
            simulated_bytes: t.counter(aide_telemetry::names::RPC_SIMULATED_BYTES),
        }
    }
}

/// Errors surfaced to RPC callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The link closed before the reply arrived.
    Disconnected,
    /// No reply arrived within the endpoint's timeout.
    Timeout,
    /// The peer executed the request and reported an error.
    Remote(String),
    /// A malformed frame was received.
    Protocol(String),
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Disconnected => f.write_str("peer disconnected"),
            RpcError::Timeout => f.write_str("rpc timed out"),
            RpcError::Remote(msg) => write!(f, "remote error: {msg}"),
            RpcError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<LinkError> for RpcError {
    fn from(_: LinkError) -> Self {
        RpcError::Disconnected
    }
}

impl From<WireError> for RpcError {
    fn from(e: WireError) -> Self {
        RpcError::Protocol(e.to_string())
    }
}

/// Executes requests arriving from the peer.
///
/// The distributed platform implements this by re-entering the interpreter
/// ([`aide_vm::Machine::call_on`] and friends) on the serving VM.
pub trait Dispatcher: Send + Sync {
    /// Executes `request`, returning a reply payload or an error string
    /// that will be transported back to the caller.
    fn dispatch(&self, request: Request) -> Result<Reply, String>;
}

/// Configuration of an [`Endpoint`].
#[derive(Debug, Clone, Copy)]
pub struct EndpointConfig {
    /// Worker threads serving incoming requests. Must cover the deepest
    /// cross-VM call nesting (each nested bounce occupies one worker).
    pub workers: usize,
    /// How long a caller waits for a reply before giving up.
    pub call_timeout: Duration,
    /// How long the receiver keeps draining in-flight replies after
    /// shutdown begins. Bounds [`Endpoint::join`] even when the peer never
    /// acknowledges the shutdown (a crashed or hung surrogate).
    pub drain_timeout: Duration,
}

impl Default for EndpointConfig {
    fn default() -> Self {
        EndpointConfig {
            workers: 64,
            call_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(1),
        }
    }
}

type PendingMap = Arc<Mutex<HashMap<u64, Sender<Result<Reply, String>>>>>;

/// One VM's side of the RPC connection.
pub struct Endpoint {
    transport: Transport,
    params: CommParams,
    clock: Arc<NetClock>,
    pending: PendingMap,
    next_seq: AtomicU64,
    closing: Arc<AtomicBool>,
    shutdown_tx: Sender<()>,
    config: EndpointConfig,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    requests_served: Arc<AtomicU64>,
    metrics: RpcMetrics,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("workers", &self.config.workers)
            .field("closing", &self.closing.load(Ordering::Relaxed))
            .finish()
    }
}

impl Endpoint {
    /// Starts an endpoint: spawns the receiver loop and the worker pool.
    ///
    /// `dispatcher` serves the peer's requests; `clock` accumulates
    /// simulated link time priced by `params`.
    pub fn start(
        transport: Transport,
        params: CommParams,
        clock: Arc<NetClock>,
        dispatcher: Arc<dyn Dispatcher>,
        config: EndpointConfig,
    ) -> Arc<Endpoint> {
        let (shutdown_tx, shutdown_rx) = unbounded::<()>();
        let endpoint = Arc::new(Endpoint {
            transport: transport.clone(),
            params,
            clock,
            pending: Arc::new(Mutex::new(HashMap::new())),
            next_seq: AtomicU64::new(0),
            closing: Arc::new(AtomicBool::new(false)),
            shutdown_tx,
            config,
            threads: Mutex::new(Vec::new()),
            requests_served: Arc::new(AtomicU64::new(0)),
            metrics: RpcMetrics::resolve(),
        });

        let (job_tx, job_rx) = unbounded::<(u64, Request)>();

        // Worker pool.
        let mut handles = Vec::with_capacity(config.workers + 1);
        for i in 0..config.workers {
            let rx: Receiver<(u64, Request)> = job_rx.clone();
            let disp = dispatcher.clone();
            let out = transport.clone();
            let served = endpoint.requests_served.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rpc-worker-{i}"))
                    .spawn(move || {
                        while let Ok((seq, request)) = rx.recv() {
                            let result = disp.dispatch(request);
                            served.fetch_add(1, Ordering::Relaxed);
                            let frame = Message::Reply { seq, result }.encode();
                            if out.send(frame.to_vec()).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn rpc worker"),
            );
        }

        // Receiver loop.
        {
            let transport = transport.clone();
            let pending = endpoint.pending.clone();
            let closing = endpoint.closing.clone();
            let drain_timeout = config.drain_timeout;
            handles.push(
                std::thread::Builder::new()
                    .name("rpc-recv".into())
                    .spawn(move || {
                        receiver_loop(
                            &transport,
                            &pending,
                            &closing,
                            &job_tx,
                            &shutdown_rx,
                            drain_timeout,
                        );
                        // Receiver gone: fail all outstanding calls.
                        pending.lock().clear();
                    })
                    .expect("spawn rpc receiver"),
            );
        }
        *endpoint.threads.lock() = handles;
        endpoint
    }

    /// Number of requests this endpoint has served for its peer.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// The shared simulated-communication clock.
    pub fn clock(&self) -> &Arc<NetClock> {
        &self.clock
    }

    /// Real traffic statistics of this endpoint's transport.
    pub fn traffic(&self) -> &Arc<crate::link::TrafficStats> {
        self.transport.stats()
    }

    /// Sends `request` to the peer and blocks until its reply arrives,
    /// charging simulated link time for the round trip.
    ///
    /// # Errors
    ///
    /// [`RpcError::Remote`] if the peer reported an execution error,
    /// [`RpcError::Disconnected`] / [`RpcError::Timeout`] on link failures.
    pub fn call(&self, request: Request) -> Result<Reply, RpcError> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let msg = Message::Request { seq, body: request };
        let req_bytes = msg.simulated_request_bytes();
        let (reply_bytes, is_migrate) = match &msg {
            Message::Request { body, .. } => (
                Message::simulated_reply_bytes(body),
                matches!(body, Request::Migrate { .. }),
            ),
            Message::Reply { .. } => unreachable!(),
        };

        let (tx, rx) = unbounded();
        self.pending.lock().insert(seq, tx);
        let frame = msg.encode();
        let started = std::time::Instant::now();
        if let Err(e) = self.transport.send(frame.to_vec()) {
            self.pending.lock().remove(&seq);
            self.metrics.errors.inc();
            return Err(e.into());
        }

        let outcome = rx
            .recv_timeout(self.config.call_timeout)
            .map_err(|e| match e {
                crossbeam::channel::RecvTimeoutError::Timeout => RpcError::Timeout,
                crossbeam::channel::RecvTimeoutError::Disconnected => RpcError::Disconnected,
            });
        self.pending.lock().remove(&seq);
        self.metrics.requests.inc();
        self.metrics
            .latency_micros
            .observe(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
        let result = match outcome {
            Ok(r) => r,
            Err(e) => {
                self.metrics.errors.inc();
                return Err(e);
            }
        };
        self.metrics.simulated_bytes.add(req_bytes + reply_bytes);

        // Simulated link time: bulk transfers (offloading) stream at link
        // bandwidth with half-RTT setup; everything else is a synchronous
        // round trip.
        let seconds = if is_migrate {
            self.params.transfer_seconds(req_bytes)
        } else {
            self.params.rtt_seconds
                + ((req_bytes + reply_bytes) as f64 * 8.0) / self.params.bandwidth_bps
        };
        self.clock.add(seconds);
        self.clock.note_round_trip();

        result.map_err(|msg| {
            self.metrics.errors.inc();
            RpcError::Remote(msg)
        })
    }

    /// Sends a null RPC ([`Request::Ping`]) and measures the *real*
    /// round-trip time.
    ///
    /// Unlike [`call`], no simulated link time is charged and no round trip
    /// is recorded on the [`NetClock`]: probes are health measurements
    /// (surrogate discovery, heartbeats), not application communication, so
    /// they must not pollute virtual-time accounting.
    ///
    /// # Errors
    ///
    /// [`RpcError::Timeout`] if no reply arrives within `timeout`,
    /// [`RpcError::Disconnected`] if the link is down.
    ///
    /// [`call`]: Endpoint::call
    pub fn probe(&self, timeout: Duration) -> Result<Duration, RpcError> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = unbounded();
        self.pending.lock().insert(seq, tx);
        let frame = Message::Request {
            seq,
            body: Request::Ping,
        }
        .encode();
        let started = std::time::Instant::now();
        if let Err(e) = self.transport.send(frame.to_vec()) {
            self.pending.lock().remove(&seq);
            return Err(e.into());
        }
        let outcome = rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => RpcError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => RpcError::Disconnected,
        });
        self.pending.lock().remove(&seq);
        outcome?.map_err(RpcError::Remote)?;
        let rtt = started.elapsed();
        self.metrics.requests.inc();
        self.metrics
            .latency_micros
            .observe(u64::try_from(rtt.as_micros()).unwrap_or(u64::MAX));
        Ok(rtt)
    }

    /// Initiates an orderly shutdown: tells the peer (fire-and-forget so a
    /// half-closed peer cannot stall us), then signals the receiver to
    /// begin its bounded drain.
    pub fn shutdown(&self) {
        if self.closing.swap(true, Ordering::SeqCst) {
            return;
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let frame = Message::Request {
            seq,
            body: Request::Shutdown,
        }
        .encode();
        let _ = self.transport.send(frame.to_vec());
        let _ = self.shutdown_tx.send(());
    }

    /// Waits for the endpoint's threads to finish. After [`shutdown`] this
    /// returns within roughly [`EndpointConfig::drain_timeout`] even if the
    /// peer is dead or never acknowledges — the receiver's drain phase has
    /// a deadline, not just an idle condition.
    ///
    /// [`shutdown`]: Endpoint::shutdown
    pub fn join(&self) {
        let handles = std::mem::take(&mut *self.threads.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

fn receiver_loop(
    transport: &Transport,
    pending: &PendingMap,
    closing: &AtomicBool,
    jobs: &Sender<(u64, Request)>,
    shutdown: &Receiver<()>,
    drain_timeout: Duration,
) {
    let incoming = transport.incoming();
    // `None` while running normally; set to a deadline once shutdown begins
    // (locally via the signal channel, or by the peer's Shutdown frame).
    // The deadline bounds the drain of in-flight replies so `join()` cannot
    // hang on a peer that never acknowledges.
    let mut drain_until: Option<std::time::Instant> = None;
    loop {
        let frame = if let Some(deadline) = drain_until {
            if pending.lock().is_empty() {
                return;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return;
            }
            match incoming.recv_timeout((deadline - now).min(Duration::from_millis(20))) {
                Ok(frame) => frame,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            }
        } else {
            // Steady state: block on the transport with no idle wakeups; an
            // explicit shutdown signal interrupts the wait immediately.
            crossbeam::select! {
                recv(incoming) -> msg => match msg {
                    Ok(frame) => frame,
                    Err(_) => return,
                },
                recv(shutdown) -> _ => {
                    closing.store(true, Ordering::SeqCst);
                    drain_until = Some(std::time::Instant::now() + drain_timeout);
                    continue;
                }
            }
        };
        transport.note_received(frame.len());
        match Message::decode(&frame) {
            Ok(Message::Request { seq, body }) => {
                if matches!(body, Request::Shutdown) {
                    // Fire-and-forget: the sender does not wait for a reply.
                    closing.store(true, Ordering::SeqCst);
                    if drain_until.is_none() {
                        drain_until = Some(std::time::Instant::now() + drain_timeout);
                    }
                    continue;
                }
                if jobs.send((seq, body)).is_err() {
                    return;
                }
            }
            Ok(Message::Reply { seq, result }) => {
                let waiter = pending.lock().remove(&seq);
                if let Some(tx) = waiter {
                    let _ = tx.send(result);
                }
            }
            Err(_) => {
                // Malformed frame: drop it; callers will time out.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;
    use aide_vm::{ClassId, ObjectId};

    /// A dispatcher that answers ClassOf with a fixed class and echoes slot
    /// reads, failing on unknown objects.
    struct TestDispatcher {
        known: ObjectId,
    }

    impl Dispatcher for TestDispatcher {
        fn dispatch(&self, request: Request) -> Result<Reply, String> {
            match request {
                Request::ClassOf { target } if target == self.known => Ok(Reply::Class(ClassId(7))),
                Request::ClassOf { target } => Err(format!("dangling {target}")),
                Request::GetSlot { .. } => Ok(Reply::Slot(Some(self.known))),
                Request::FieldAccess { .. } => Ok(Reply::Unit),
                Request::Native { .. } => Ok(Reply::Unit),
                _ => Ok(Reply::Unit),
            }
        }
    }

    fn pair() -> (Arc<Endpoint>, Arc<Endpoint>) {
        let (link, ct, st) = Link::pair(CommParams::WAVELAN);
        let clock = link.clock.clone();
        let d1 = Arc::new(TestDispatcher {
            known: ObjectId::client(1),
        });
        let d2 = Arc::new(TestDispatcher {
            known: ObjectId::surrogate(2),
        });
        let client = Endpoint::start(
            ct,
            link.params,
            clock.clone(),
            d1,
            EndpointConfig::default(),
        );
        let surrogate = Endpoint::start(st, link.params, clock, d2, EndpointConfig::default());
        (client, surrogate)
    }

    #[test]
    fn request_reply_round_trip() {
        let (client, surrogate) = pair();
        let reply = client
            .call(Request::ClassOf {
                target: ObjectId::surrogate(2),
            })
            .unwrap();
        assert_eq!(reply, Reply::Class(ClassId(7)));
        assert_eq!(surrogate.requests_served(), 1);
    }

    #[test]
    fn remote_errors_are_propagated() {
        let (client, _surrogate) = pair();
        let err = client
            .call(Request::ClassOf {
                target: ObjectId::surrogate(99),
            })
            .unwrap_err();
        match err {
            RpcError::Remote(msg) => assert!(msg.contains("dangling")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn concurrent_calls_are_correlated() {
        let (client, _surrogate) = pair();
        let client = Arc::new(client);
        let mut joins = Vec::new();
        for _ in 0..8 {
            let c = client.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let reply = c
                        .call(Request::GetSlot {
                            target: ObjectId::surrogate(2),
                            slot: 0,
                        })
                        .unwrap();
                    assert_eq!(reply, Reply::Slot(Some(ObjectId::surrogate(2))));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn link_time_is_charged_per_round_trip() {
        let (client, _surrogate) = pair();
        let before = client.clock().seconds();
        client
            .call(Request::FieldAccess {
                target: ObjectId::surrogate(2),
                bytes: 0,
                write: false,
            })
            .unwrap();
        let delta = client.clock().seconds() - before;
        // One WaveLAN round trip (2.4 ms) plus two 32-byte headers.
        let expected = 2.4e-3 + (64.0 * 8.0) / 11.0e6;
        assert!((delta - expected).abs() < 1e-9, "delta {delta}");
        assert_eq!(client.clock().round_trips(), 1);
    }

    #[test]
    fn payload_bytes_stretch_link_time() {
        let (client, _surrogate) = pair();
        let before = client.clock().seconds();
        client
            .call(Request::FieldAccess {
                target: ObjectId::surrogate(2),
                bytes: 1_100_000, // ~0.8 s at 11 Mbps
                write: false,
            })
            .unwrap();
        let delta = client.clock().seconds() - before;
        assert!(delta > 0.75, "expected ~0.8 s of link time, got {delta}");
    }

    #[test]
    fn shutdown_stops_both_endpoints() {
        let (client, surrogate) = pair();
        client.shutdown();
        surrogate.shutdown();
        client.join();
        surrogate.join();
    }

    #[test]
    fn calls_after_peer_death_fail_fast() {
        let (link, ct, st) = Link::pair(CommParams::WAVELAN);
        let clock = link.clock.clone();
        let client = Endpoint::start(
            ct,
            link.params,
            clock,
            Arc::new(TestDispatcher {
                known: ObjectId::client(1),
            }),
            EndpointConfig {
                workers: 2,
                call_timeout: Duration::from_millis(200),
                drain_timeout: Duration::from_millis(200),
            },
        );
        drop(st); // peer never existed
        let err = client
            .call(Request::ClassOf {
                target: ObjectId::surrogate(0),
            })
            .unwrap_err();
        assert!(matches!(err, RpcError::Disconnected | RpcError::Timeout));
    }

    #[test]
    fn probe_measures_rtt_without_charging_link_time() {
        let (client, surrogate) = pair();
        let before_seconds = client.clock().seconds();
        let before_trips = client.clock().round_trips();
        client.probe(Duration::from_secs(2)).unwrap();
        assert_eq!(client.clock().seconds(), before_seconds);
        assert_eq!(client.clock().round_trips(), before_trips);
        assert_eq!(surrogate.requests_served(), 1);
    }

    #[test]
    fn probe_times_out_against_a_silent_peer() {
        let (link, ct, _st) = Link::pair(CommParams::WAVELAN);
        let client = Endpoint::start(
            ct,
            link.params,
            link.clock.clone(),
            Arc::new(TestDispatcher {
                known: ObjectId::client(1),
            }),
            EndpointConfig::default(),
        );
        // `_st` is alive but nothing serves it: the probe must not hang.
        let err = client.probe(Duration::from_millis(100)).unwrap_err();
        assert_eq!(err, RpcError::Timeout);
    }

    #[test]
    fn join_is_bounded_when_peer_never_acks_with_calls_in_flight() {
        let (link, ct, _st) = Link::pair(CommParams::WAVELAN);
        let client = Endpoint::start(
            ct,
            link.params,
            link.clock.clone(),
            Arc::new(TestDispatcher {
                known: ObjectId::client(1),
            }),
            EndpointConfig {
                workers: 2,
                call_timeout: Duration::from_secs(30),
                drain_timeout: Duration::from_millis(100),
            },
        );
        // A call that will never be answered: the peer transport is held
        // open (so the link is up) but nothing serves it.
        let caller = {
            let c = client.clone();
            std::thread::spawn(move || {
                c.call(Request::ClassOf {
                    target: ObjectId::surrogate(0),
                })
                .unwrap_err()
            })
        };
        // Let the call get in flight before shutting down.
        std::thread::sleep(Duration::from_millis(50));
        let started = std::time::Instant::now();
        client.shutdown();
        client.join();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "join must be bounded by the drain deadline, took {:?}",
            started.elapsed()
        );
        // The abandoned caller fails fast once the receiver clears pending.
        let err = caller.join().unwrap();
        assert!(matches!(err, RpcError::Disconnected | RpcError::Timeout));
    }

    #[test]
    fn shutdown_with_idle_peer_joins_promptly() {
        let (client, surrogate) = pair();
        let started = std::time::Instant::now();
        client.shutdown();
        client.join();
        surrogate.join();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "both sides wound down, took {:?}",
            started.elapsed()
        );
    }
}
