//! Transparent remote execution between two AIDE virtual machines.
//!
//! The paper modifies two JVMs so that accesses to remote objects become
//! "transparent RPCs between two JVMs", where "either JVM that receives a
//! request uses a pool of threads to perform RPCs on behalf of the other
//! JVM" (§3.2). This crate is that layer:
//!
//! * [`Message`] / [`Request`] / [`Reply`] — the RPC protocol, with a
//!   hand-rolled length-safe binary codec and a reusable [`FramePool`]
//!   behind [`Message::encode_pooled`].
//! * [`Transport`] / [`Acceptor`] / [`Session`] — the unified transport
//!   seam. Three backends implement it: in-memory channels
//!   ([`channel_transport`]), real TCP with many sessions multiplexed over
//!   one socket ([`TcpTransport`] / [`TcpMuxListener`]), and emulated
//!   links charging virtual time per frame ([`virtual_transport`]).
//! * [`Link`] — a duplex in-process frame link standing in for the WaveLAN
//!   socket, with real traffic statistics and a shared [`NetClock`]
//!   accumulating *simulated* link seconds priced by
//!   [`aide_graph::CommParams`].
//! * [`Endpoint`] — request/reply correlation plus the dispatcher worker
//!   pool that re-enters the interpreter to serve the peer.
//! * [`ExportTable`] / [`ImportTable`] — cross-VM reference bookkeeping for
//!   the distributed garbage collection scheme, hardened with lease/epoch
//!   reclamation (TTL deadlines on a manual [`GcClock`], watermarked
//!   idempotent releases, epoch sweeps after failover).
//!
//! # Examples
//!
//! Two endpoints answering each other's class-resolution requests:
//!
//! ```
//! use std::sync::Arc;
//! use aide_graph::CommParams;
//! use aide_rpc::{Dispatcher, Endpoint, EndpointConfig, Link, Reply, Request};
//!
//! struct Fixed;
//! impl Dispatcher for Fixed {
//!     fn dispatch(&self, _request: Request) -> Result<Reply, String> {
//!         Ok(Reply::Class(aide_vm::ClassId(3)))
//!     }
//! }
//!
//! let (link, ct, st) = Link::pair(CommParams::WAVELAN);
//! let clock = link.clock.clone();
//! let client = Endpoint::start(ct, link.params, clock.clone(), Arc::new(Fixed),
//!                              EndpointConfig::default());
//! let surrogate = Endpoint::start(st, link.params, clock, Arc::new(Fixed),
//!                                 EndpointConfig::default());
//! let reply = client.call(Request::ClassOf { target: aide_vm::ObjectId::surrogate(1) })?;
//! assert_eq!(reply, Reply::Class(aide_vm::ClassId(3)));
//! client.shutdown();
//! surrogate.shutdown();
//! # Ok::<(), aide_rpc::RpcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod endpoint;
mod link;
mod mux;
pub mod observe;
mod reftable;
mod tcp;
mod transport;
mod wire;

pub use aide_trace::SpanContext;
pub use chaos::{chaos_pair, chaos_wrap, ChaosPairStats, ChaosSchedule, ChaosStats};
pub use endpoint::{Dispatcher, Endpoint, EndpointConfig, RetryPolicy, RpcError};
pub use link::{Link, LinkError, NetClock, Session, TrafficStats};
pub use mux::{BusEvent, ConnKiller, MuxConn, MuxSender};
pub use observe::{set_rpc_observer, RpcObserver};
pub use reftable::{
    live_remote_refs, ExportTable, GcClock, ImportTable, ReleaseOutcome, DEFAULT_LEASE_TTL_MS,
};
pub use tcp::{nudge, tcp_pair, tcp_transport, TcpMuxListener, TcpTransport};
pub use transport::{
    channel_transport, virtual_transport, Acceptor, BackendKind, ChannelAcceptor, ChannelTransport,
    Transport,
};
pub use wire::{
    crc32, Frame, FramePool, Message, Reply, Request, WireError, LEGACY_PROTOCOL_VERSION,
    PROTOCOL_VERSION, TRACED_PROTOCOL_VERSION,
};
