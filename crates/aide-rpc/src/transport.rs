//! The unified transport seam: one trait pair every backend implements.
//!
//! A [`Transport`] opens logical [`Session`]s toward a peer; an
//! [`Acceptor`] yields the matching peer ends. Three backends implement
//! the pair:
//!
//! - **In-memory** ([`channel_transport`]): crossbeam channel pairs, the
//!   prototype's stand-in for a local socket.
//! - **TCP** (`crate::tcp::TcpTransport` / `crate::tcp::TcpMuxListener`):
//!   many sessions multiplexed over one real socket.
//! - **Emulated** ([`virtual_transport`]): channel pairs that charge
//!   virtual link time per frame at [`CommParams`] rates, for
//!   deterministic emulator runs.
//!
//! Everything above this seam — [`Endpoint`](crate::Endpoint) retry and
//! dedup, [`chaos_wrap`](crate::chaos_wrap), CRC framing, telemetry — is
//! backend-agnostic: it sees only [`Session`]s, so chaos soaks and wire
//! hardening exercise every backend identically.

use std::sync::Arc;

use aide_graph::CommParams;
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::link::{session_pair, LinkError, NetClock, Session};

/// Which carrier a session rides on. Used to label telemetry per backend
/// and to pick charging behavior; the RPC layer is otherwise oblivious.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Crossbeam channel pair inside one process.
    InMemory,
    /// Real TCP socket (possibly multiplexed).
    Tcp,
    /// In-process channel pair charging emulated link time per frame.
    Emulated,
}

impl BackendKind {
    /// Short stable label for telemetry and bench output.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::InMemory => "inmem",
            BackendKind::Tcp => "tcp",
            BackendKind::Emulated => "emu",
        }
    }
}

/// The initiating side of a backend: opens logical sessions toward the
/// peer. Object-safe so platform code can hold a `dyn Transport` chosen
/// from configuration.
pub trait Transport: Send + Sync {
    /// Which backend this transport drives.
    fn backend(&self) -> BackendKind;

    /// Opens a new logical session toward the peer.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::Disconnected`] when the peer (or the carrier
    /// underneath) is gone.
    fn open_session(&self) -> Result<Session, LinkError>;
}

/// The accepting side of a backend: yields the peer end of each session
/// the remote [`Transport`] opens.
pub trait Acceptor: Send + Sync {
    /// Blocks until the peer opens the next session and returns our end.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::Disconnected`] when the carrier is gone and no
    /// further sessions can arrive.
    fn accept(&self) -> Result<Session, LinkError>;
}

/// Charging model for channel-backed transports.
#[derive(Debug, Clone)]
enum Charging {
    /// No virtual-time accounting (plain in-memory backend).
    None,
    /// Charge each sent frame to this clock at these rates.
    Virtual(Arc<NetClock>, CommParams),
}

/// In-process [`Transport`]: each `open_session` builds a fresh crossbeam
/// channel pair and hands the peer end to the matching
/// [`ChannelAcceptor`]. Doubles as the emulated backend when constructed
/// via [`virtual_transport`].
#[derive(Debug)]
pub struct ChannelTransport {
    backend: BackendKind,
    charging: Charging,
    peer_tx: Sender<Session>,
    sessions_opened: Arc<aide_telemetry::Counter>,
}

/// Accepting side of a [`ChannelTransport`].
#[derive(Debug)]
pub struct ChannelAcceptor {
    peer_rx: Receiver<Session>,
}

/// Creates a connected in-memory transport/acceptor pair.
pub fn channel_transport() -> (ChannelTransport, ChannelAcceptor) {
    build_channel_transport(BackendKind::InMemory, Charging::None)
}

/// Creates a connected emulated transport/acceptor pair: sessions charge
/// virtual link time per frame at `params` rates to the returned
/// [`NetClock`].
pub fn virtual_transport(params: CommParams) -> (ChannelTransport, ChannelAcceptor, Arc<NetClock>) {
    let clock = Arc::new(NetClock::new());
    let (t, a) = build_channel_transport(
        BackendKind::Emulated,
        Charging::Virtual(Arc::clone(&clock), params),
    );
    (t, a, clock)
}

fn build_channel_transport(
    backend: BackendKind,
    charging: Charging,
) -> (ChannelTransport, ChannelAcceptor) {
    let (peer_tx, peer_rx) = unbounded();
    (
        ChannelTransport {
            backend,
            charging,
            peer_tx,
            sessions_opened: aide_telemetry::global().counter(aide_telemetry::names::MUX_SESSIONS),
        },
        ChannelAcceptor { peer_rx },
    )
}

impl ChannelTransport {
    /// The clock virtual-time sessions charge into, if this is the
    /// emulated backend.
    pub fn link_clock(&self) -> Option<Arc<NetClock>> {
        match &self.charging {
            Charging::None => None,
            Charging::Virtual(clock, _) => Some(Arc::clone(clock)),
        }
    }
}

impl Transport for ChannelTransport {
    fn backend(&self) -> BackendKind {
        self.backend
    }

    fn open_session(&self) -> Result<Session, LinkError> {
        let (ours, theirs) = session_pair(self.backend);
        let (ours, theirs) = match &self.charging {
            Charging::None => (ours, theirs),
            Charging::Virtual(clock, params) => (
                ours.with_charge(Arc::clone(clock), *params),
                theirs.with_charge(Arc::clone(clock), *params),
            ),
        };
        self.peer_tx
            .send(theirs)
            .map_err(|_| LinkError::Disconnected)?;
        self.sessions_opened.inc();
        Ok(ours)
    }
}

impl Acceptor for ChannelAcceptor {
    fn accept(&self) -> Result<Session, LinkError> {
        self.peer_rx.recv().map_err(|_| LinkError::Disconnected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_transport_round_trips_frames() {
        let (t, a) = channel_transport();
        let client = t.open_session().unwrap();
        let server = a.accept().unwrap();
        assert_eq!(client.backend(), BackendKind::InMemory);
        client.send(vec![1, 2, 3]).unwrap();
        assert_eq!(server.recv().unwrap(), vec![1, 2, 3]);
        server.send(vec![9]).unwrap();
        assert_eq!(client.recv().unwrap(), vec![9]);
    }

    #[test]
    fn each_open_session_is_isolated() {
        let (t, a) = channel_transport();
        let c1 = t.open_session().unwrap();
        let c2 = t.open_session().unwrap();
        let s1 = a.accept().unwrap();
        let s2 = a.accept().unwrap();
        c1.send(vec![1]).unwrap();
        c2.send(vec![2]).unwrap();
        assert_eq!(s1.recv().unwrap(), vec![1]);
        assert_eq!(s2.recv().unwrap(), vec![2]);
    }

    #[test]
    fn acceptor_disconnects_when_transport_drops() {
        let (t, a) = channel_transport();
        drop(t);
        assert_eq!(a.accept().unwrap_err(), LinkError::Disconnected);
    }

    #[test]
    fn virtual_sessions_charge_link_time_per_frame() {
        let params = CommParams::WAVELAN;
        let (t, a, clock) = virtual_transport(params);
        let client = t.open_session().unwrap();
        let server = a.accept().unwrap();
        assert_eq!(client.backend(), BackendKind::Emulated);
        assert_eq!(clock.seconds(), 0.0);
        client.send(vec![0u8; 1100]).unwrap();
        server.recv().unwrap();
        let expected = 1100.0 * 8.0 / params.bandwidth_bps + params.rtt_seconds / 2.0;
        assert!((clock.seconds() - expected).abs() < 1e-12);
        server.send(vec![0u8; 1100]).unwrap();
        client.recv().unwrap();
        assert!((clock.seconds() - 2.0 * expected).abs() < 1e-12);
    }
}
