//! Wire format for the inter-VM RPC protocol.
//!
//! Messages are encoded into length-delimited binary frames with a
//! hand-rolled codec (no reflection, no self-describing format): a one-byte
//! tag, fixed-width little-endian integers, and explicit collections. The
//! codec is exercised by round-trip property tests.
//!
//! Payload *sizes* (method parameters, field data) are declared, not
//! materialized: a `FieldAccess { bytes: 4096 }` frame does not carry 4 KiB
//! of zeros. Link timing is computed from the declared sizes (see
//! [`Message::simulated_request_bytes`]), which is exactly how the paper's
//! emulator stretched simulated execution time for remote interactions.
//!
//! Every frame is integrity-protected: the encoded message payload is
//! prefixed with a one-byte protocol version and a CRC32 (IEEE) of the
//! payload. A frame corrupted in flight decodes to
//! [`WireError::BadChecksum`] — never to a panic or a wrong message — so
//! the retry layer above can treat corruption exactly like loss.
//!
//! Since protocol version 3 the checksummed payload opens with a *trace
//! context* prefix — a presence flag plus, when the encoding thread has
//! an active span, its `(trace_id, span_id)` — so every RPC carries its
//! causal parent across the wire and the serving side can parent its
//! service span under the caller's span. Version-2 frames (no prefix)
//! still decode, mapping to "no context".
//!
//! Since protocol version 4 the trace context is followed by a *lease
//! stamp* — a presence flag plus, when the sender participates in
//! distributed GC, its current lease epoch — so every ordinary frame
//! doubles as a lease renewal for the receiver's export table. Version-3
//! and version-2 frames still decode, mapping to "no lease advertised".

use std::io::{Read, Write};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;

use aide_trace::SpanContext;
use aide_vm::{ClassId, MethodId, NativeKind, ObjectId, ObjectRecord};

/// Current protocol version, carried as the first byte of every frame.
/// Version 3 added the trace-context prefix to the checksummed payload;
/// version 4 added the lease stamp that follows it (a presence flag plus
/// the sender's GC lease epoch), which is how lease renewals piggyback on
/// ordinary RPC traffic.
pub const PROTOCOL_VERSION: u8 = 4;

/// Protocol version 3: trace-context prefix but no lease stamp. Still
/// accepted by [`Message::decode`], mapping to "no lease advertised".
pub const TRACED_PROTOCOL_VERSION: u8 = 3;

/// Protocol version 2 (no trace-context prefix, no lease stamp). Still
/// accepted by [`Message::decode`] so pre-tracing peers and recorded
/// frames keep working.
pub const LEGACY_PROTOCOL_VERSION: u8 = 2;

/// Bytes of framing overhead preceding the message payload: the version
/// byte plus the little-endian CRC32.
const FRAME_HEADER: usize = 5;

/// Protocol-level errors (malformed frames, truncated buffers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before the message was complete.
    Truncated,
    /// An unknown message or enum tag was encountered.
    BadTag(u8),
    /// Trailing bytes followed a complete message.
    TrailingBytes(usize),
    /// The frame announced an unsupported protocol version.
    BadVersion(u8),
    /// The frame's CRC32 did not match its payload (in-flight corruption).
    BadChecksum,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => f.write_str("frame truncated"),
            WireError::BadTag(t) => write!(f, "unknown wire tag {t}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadChecksum => f.write_str("frame checksum mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

/// CRC32 (IEEE 802.3) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// A request the peer should execute.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Invoke `method` of `class` on `target`, which lives on the peer.
    Invoke {
        /// Receiver object (lives on the serving VM).
        target: ObjectId,
        /// Class the call site is compiled against.
        class: ClassId,
        /// Method index within `class`.
        method: MethodId,
        /// Declared parameter payload in bytes.
        arg_bytes: u32,
        /// Declared return payload in bytes.
        ret_bytes: u32,
        /// Reference arguments (global object ids).
        args: Vec<ObjectId>,
    },
    /// Read or write `bytes` of scalar data on `target`.
    FieldAccess {
        /// Target object.
        target: ObjectId,
        /// Declared payload in bytes.
        bytes: u32,
        /// `true` for a write.
        write: bool,
    },
    /// Read reference slot `slot` of `target`.
    GetSlot {
        /// Target object.
        target: ObjectId,
        /// Slot index.
        slot: u16,
    },
    /// Write reference slot `slot` of `target`.
    PutSlot {
        /// Target object.
        target: ObjectId,
        /// Slot index.
        slot: u16,
        /// New slot value.
        value: Option<ObjectId>,
    },
    /// Execute a client-bound native on the serving VM.
    Native {
        /// Class whose code invoked the native.
        caller: ClassId,
        /// Kind of native.
        kind: NativeKind,
        /// CPU the native burns, in client-speed microseconds.
        work_micros: u32,
        /// Declared parameter payload in bytes.
        arg_bytes: u32,
        /// Declared result payload in bytes.
        ret_bytes: u32,
    },
    /// Access static data of `class` on the serving VM (the client).
    StaticAccess {
        /// Class whose code performed the access.
        accessor: ClassId,
        /// Class owning the static data.
        class: ClassId,
        /// Declared payload in bytes.
        bytes: u32,
        /// `true` for a write.
        write: bool,
    },
    /// Resolve the class of `target` on the serving VM.
    ClassOf {
        /// Target object.
        target: ObjectId,
    },
    /// Transfer whole objects to the serving VM (offloading).
    Migrate {
        /// `(id, record)` pairs to install in the serving VM's heap.
        objects: Vec<(ObjectId, ObjectRecord)>,
    },
    /// Distributed GC: the sender no longer references these objects of the
    /// serving VM; their external-root pins can be released.
    GcRelease {
        /// Objects to unpin.
        objects: Vec<ObjectId>,
    },
    /// Phase one of a transactional migration: stage these objects under
    /// transaction `txn` without installing them. The serving VM checks
    /// capacity for everything staged so far and holds the objects in a
    /// side buffer until [`Request::MigrateCommit`] or
    /// [`Request::MigrateAbort`].
    MigratePrepare {
        /// Migration transaction id, unique per client.
        txn: u64,
        /// `(id, record)` pairs to stage.
        objects: Vec<(ObjectId, ObjectRecord)>,
    },
    /// Phase two of a transactional migration: atomically install every
    /// object staged under `txn` into the serving VM's heap.
    MigrateCommit {
        /// Migration transaction id.
        txn: u64,
    },
    /// Abort a transactional migration: discard everything staged under
    /// `txn`. Idempotent; aborting an unknown transaction is a no-op.
    MigrateAbort {
        /// Migration transaction id.
        txn: u64,
    },
    /// Orderly connection teardown.
    Shutdown,
    /// Null RPC: the serving VM replies immediately with no work. Used by
    /// surrogate discovery and liveness probes to measure the real
    /// round-trip time (the paper's 2.4 ms null-RPC figure, §5) — probes
    /// deliberately bypass simulated link-time accounting.
    Ping,
    /// Telemetry scrape: the serving VM replies with a Prometheus-style
    /// text exposition of its metrics registry ([`Reply::Text`]). Like
    /// [`Request::Ping`], this is an operational request, not application
    /// communication.
    Stats,
    /// Explicit lease renewal for a quiet session: the sender still holds
    /// references to the serving VM's exports and advertises its current
    /// lease epoch. Steady-state traffic renews implicitly via the frame
    /// lease stamp; this exists so silence alone never expires a live
    /// reference. Idempotent and safe to retry.
    GcRenew {
        /// The sender's current lease epoch.
        epoch: u64,
    },
    /// Watermarked distributed-GC release: the sender's collector proved
    /// it holds no references to these objects of the serving VM. Carries
    /// the sender's lease epoch (so post-failover zombies are detectable)
    /// and a monotonically increasing per-session sequence number (so
    /// retries and chaos duplicates are dropped at the watermark instead
    /// of double-unpinning). Supersedes [`Request::GcRelease`], which is
    /// kept for wire compatibility.
    GcReleaseSeq {
        /// The sender's current lease epoch.
        epoch: u64,
        /// Release-batch sequence number, monotonic per session.
        release_seq: u64,
        /// Objects the sender no longer references at all.
        objects: Vec<ObjectId>,
    },
    /// Store-and-forward delivery of a migration that was queued while the
    /// serving VM was unreachable. Semantically a [`Request::Migrate`], but
    /// keyed by the relay transaction id so redelivery attempts (the relay
    /// retries until acknowledged) install the objects at most once.
    RelayDeliver {
        /// Relay transaction id, unique per queued migration.
        txn: u64,
        /// How long the migration sat in the relay queue, in milliseconds
        /// of relay-clock time (observability; not used for expiry, which
        /// happens at the relay).
        queued_for_ms: u64,
        /// `(id, record)` pairs to install in the serving VM's heap.
        objects: Vec<(ObjectId, ObjectRecord)>,
    },
}

impl Request {
    /// The static name of this request variant, used to label serve
    /// spans and the critical-path attribution.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Invoke { .. } => "Invoke",
            Request::FieldAccess { .. } => "FieldAccess",
            Request::GetSlot { .. } => "GetSlot",
            Request::PutSlot { .. } => "PutSlot",
            Request::Native { .. } => "Native",
            Request::StaticAccess { .. } => "StaticAccess",
            Request::ClassOf { .. } => "ClassOf",
            Request::Migrate { .. } => "Migrate",
            Request::GcRelease { .. } => "GcRelease",
            Request::MigratePrepare { .. } => "MigratePrepare",
            Request::MigrateCommit { .. } => "MigrateCommit",
            Request::MigrateAbort { .. } => "MigrateAbort",
            Request::Shutdown => "Shutdown",
            Request::Ping => "Ping",
            Request::Stats => "Stats",
            Request::GcRenew { .. } => "GcRenew",
            Request::GcReleaseSeq { .. } => "GcReleaseSeq",
            Request::RelayDeliver { .. } => "RelayDeliver",
        }
    }
}

/// A successful reply payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Operation completed with no result value.
    Unit,
    /// A slot read result.
    Slot(Option<ObjectId>),
    /// A class resolution result.
    Class(ClassId),
    /// A textual payload (the [`Request::Stats`] exposition).
    Text(String),
    /// Admission-control backpressure: the serving side is at its session
    /// or queue limit and refused the request. The caller should back off
    /// for at least `retry_after_ms` or place the work elsewhere. Carried
    /// as a reply (not an error string) so it is machine-distinguishable
    /// from execution failures and never burns retry budget.
    Busy {
        /// Server's backoff hint, in milliseconds.
        retry_after_ms: u32,
    },
}

/// A framed protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A request awaiting a matching reply.
    Request {
        /// Correlation number, unique per sender. Retries of the same
        /// logical request reuse the same `seq`, which is what lets the
        /// serving side deduplicate them.
        seq: u64,
        /// Process-unique id of the calling endpoint. Together with `seq`
        /// it forms the at-most-once dedup key on the serving side.
        client: u64,
        /// The operation to perform.
        body: Request,
    },
    /// The reply to the request with the same `seq`.
    Reply {
        /// Correlation number of the request this answers.
        seq: u64,
        /// The outcome: a [`Reply`] or a stringified remote error.
        result: Result<Reply, String>,
    },
}

impl Message {
    /// Simulated size of the request direction of this message, in bytes:
    /// a fixed header plus declared payloads and 8 bytes per object
    /// reference. Used for link-time accounting.
    pub fn simulated_request_bytes(&self) -> u64 {
        const HEADER: u64 = 32;
        match self {
            Message::Request { body, .. } => {
                HEADER
                    + match body {
                        Request::Invoke {
                            arg_bytes, args, ..
                        } => *arg_bytes as u64 + 8 * args.len() as u64,
                        Request::FieldAccess { bytes, write, .. } => {
                            if *write {
                                *bytes as u64
                            } else {
                                0
                            }
                        }
                        Request::GetSlot { .. } => 0,
                        Request::PutSlot { .. } => 8,
                        Request::Native { arg_bytes, .. } => *arg_bytes as u64,
                        Request::StaticAccess { bytes, write, .. } => {
                            if *write {
                                *bytes as u64
                            } else {
                                0
                            }
                        }
                        Request::ClassOf { .. } => 0,
                        Request::Migrate { objects }
                        | Request::MigratePrepare { objects, .. }
                        | Request::RelayDeliver { objects, .. } => objects
                            .iter()
                            .map(|(_, rec)| rec.footprint() + 16)
                            .sum::<u64>(),
                        Request::GcRelease { objects } => 8 * objects.len() as u64,
                        Request::GcRenew { .. } => 8,
                        Request::GcReleaseSeq { objects, .. } => 16 + 8 * objects.len() as u64,
                        Request::MigrateCommit { .. }
                        | Request::MigrateAbort { .. }
                        | Request::Shutdown
                        | Request::Ping
                        | Request::Stats => 0,
                    }
            }
            Message::Reply { .. } => HEADER,
        }
    }

    /// Simulated size of the reply direction for a given request: header
    /// plus declared return payload.
    pub fn simulated_reply_bytes(request: &Request) -> u64 {
        const HEADER: u64 = 32;
        HEADER
            + match request {
                Request::Invoke { ret_bytes, .. } => *ret_bytes as u64,
                Request::FieldAccess { bytes, write, .. } => {
                    if *write {
                        0
                    } else {
                        *bytes as u64
                    }
                }
                Request::GetSlot { .. } => 8,
                Request::Native { ret_bytes, .. } => *ret_bytes as u64,
                Request::StaticAccess { bytes, write, .. } => {
                    if *write {
                        0
                    } else {
                        *bytes as u64
                    }
                }
                _ => 0,
            }
    }

    /// Encodes the message into a frame: `[version][crc32 LE][payload]`.
    pub fn encode(&self) -> Bytes {
        let payload = self.encode_payload();
        seal_frame(&payload).freeze()
    }

    /// Encodes the message into a frame whose backing buffer is leased
    /// from the process-wide [`FramePool`]. Byte-identical to
    /// [`Message::encode`], but steady-state encoding performs no heap
    /// allocation: the buffer returns to the pool when the frame drops.
    pub fn encode_pooled(&self) -> Frame {
        self.encode_pooled_stamped(None)
    }

    /// Like [`Message::encode_pooled`], but stamps the frame with the
    /// sender's GC lease epoch so the receiving side renews its export
    /// leases as a side effect of ordinary traffic.
    pub fn encode_pooled_stamped(&self, lease_epoch: Option<u64>) -> Frame {
        let mut frame = FramePool::global().acquire();
        self.encode_into_stamped(frame.vec_mut(), lease_epoch);
        frame
    }

    /// Encodes the message frame (`[version][crc32 LE][payload]`) in place
    /// into `buf`, replacing its contents and reusing its capacity.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        self.encode_into_stamped(buf, None);
    }

    /// Encodes the message frame in place, carrying `lease_epoch` in the
    /// version-4 lease stamp when present.
    pub fn encode_into_stamped(&self, buf: &mut Vec<u8>, lease_epoch: Option<u64>) {
        buf.clear();
        buf.reserve(FRAME_HEADER + 64);
        buf.put_u8(PROTOCOL_VERSION);
        buf.put_u32_le(0); // checksum placeholder, patched below
        encode_trace_context(buf);
        encode_lease_stamp(buf, lease_epoch);
        self.encode_body(buf);
        let crc = crc32(&buf[FRAME_HEADER..]);
        buf[1..FRAME_HEADER].copy_from_slice(&crc.to_le_bytes());
    }

    /// Encodes just the message payload (no version byte, no checksum).
    fn encode_payload(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(64);
        encode_trace_context(&mut buf);
        encode_lease_stamp(&mut buf, None);
        self.encode_body(&mut buf);
        buf
    }

    /// Writes the tagged payload bytes of this message into `buf`.
    fn encode_body<B: BufMut>(&self, buf: &mut B) {
        match self {
            Message::Request { seq, client, body } => {
                buf.put_u8(0);
                buf.put_u64_le(*seq);
                buf.put_u64_le(*client);
                encode_request(buf, body);
            }
            Message::Reply { seq, result } => {
                buf.put_u8(1);
                buf.put_u64_le(*seq);
                match result {
                    Ok(reply) => {
                        buf.put_u8(0);
                        encode_reply(buf, reply);
                    }
                    Err(msg) => {
                        buf.put_u8(1);
                        put_str(buf, msg);
                    }
                }
            }
        }
    }

    /// Decodes a message from a frame.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the frame announces an unknown protocol
    /// version, fails its checksum, is truncated, carries an unknown tag,
    /// or has trailing bytes.
    pub fn decode(frame: &[u8]) -> Result<Message, WireError> {
        Self::decode_traced(frame).map(|(message, _)| message)
    }

    /// Decodes a message from a frame together with the sender's trace
    /// context, when the frame carries one. Legacy (version-2) frames
    /// decode with `None`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Message::decode`].
    pub fn decode_traced(frame: &[u8]) -> Result<(Message, Option<SpanContext>), WireError> {
        Self::decode_stamped(frame).map(|(message, context, _)| (message, context))
    }

    /// Decodes a message from a frame together with the sender's trace
    /// context and GC lease stamp, when the frame carries them. Version-3
    /// frames decode with no lease; version-2 frames with neither.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Message::decode`].
    pub fn decode_stamped(
        frame: &[u8],
    ) -> Result<(Message, Option<SpanContext>, Option<u64>), WireError> {
        if frame.len() < FRAME_HEADER {
            return Err(WireError::Truncated);
        }
        let version = frame[0];
        if version != PROTOCOL_VERSION
            && version != TRACED_PROTOCOL_VERSION
            && version != LEGACY_PROTOCOL_VERSION
        {
            return Err(WireError::BadVersion(version));
        }
        let declared = u32::from_le_bytes([frame[1], frame[2], frame[3], frame[4]]);
        let mut payload = &frame[FRAME_HEADER..];
        if crc32(payload) != declared {
            return Err(WireError::BadChecksum);
        }
        let context = if version >= TRACED_PROTOCOL_VERSION {
            decode_trace_context(&mut payload)?
        } else {
            None
        };
        let lease = if version >= PROTOCOL_VERSION {
            decode_lease_stamp(&mut payload)?
        } else {
            None
        };
        Ok((Self::decode_payload(payload)?, context, lease))
    }

    /// Decodes a checksum-verified message payload.
    fn decode_payload(mut payload: &[u8]) -> Result<Message, WireError> {
        let buf = &mut payload;
        let msg = match get_u8(buf)? {
            0 => {
                let seq = get_u64(buf)?;
                let client = get_u64(buf)?;
                let body = decode_request(buf)?;
                Message::Request { seq, client, body }
            }
            1 => {
                let seq = get_u64(buf)?;
                let result = match get_u8(buf)? {
                    0 => Ok(decode_reply(buf)?),
                    1 => Err(get_str(buf)?),
                    t => return Err(WireError::BadTag(t)),
                };
                Message::Reply { seq, result }
            }
            t => return Err(WireError::BadTag(t)),
        };
        if !buf.is_empty() {
            return Err(WireError::TrailingBytes(buf.len()));
        }
        Ok(msg)
    }
}

/// Writes the trace-context prefix that opens every version-3 payload:
/// a presence flag, then the encoding thread's active `(trace_id,
/// span_id)` when it has one. The prefix is covered by the frame CRC.
fn encode_trace_context<B: BufMut>(buf: &mut B) {
    match aide_trace::current_context() {
        Some(ctx) => {
            buf.put_u8(1);
            buf.put_u64_le(ctx.trace_id);
            buf.put_u64_le(ctx.span_id);
        }
        None => buf.put_u8(0),
    }
}

/// Reads the version-3 trace-context prefix, advancing `buf` past it.
fn decode_trace_context(buf: &mut &[u8]) -> Result<Option<SpanContext>, WireError> {
    match get_u8(buf)? {
        0 => Ok(None),
        1 => {
            let trace_id = get_u64(buf)?;
            let span_id = get_u64(buf)?;
            Ok(Some(SpanContext { trace_id, span_id }))
        }
        t => Err(WireError::BadTag(t)),
    }
}

/// Writes the version-4 lease stamp that follows the trace context: a
/// presence flag plus, when present, the sender's GC lease epoch. Covered
/// by the frame CRC like everything else in the payload.
fn encode_lease_stamp<B: BufMut>(buf: &mut B, lease_epoch: Option<u64>) {
    match lease_epoch {
        Some(epoch) => {
            buf.put_u8(1);
            buf.put_u64_le(epoch);
        }
        None => buf.put_u8(0),
    }
}

/// Reads the version-4 lease stamp, advancing `buf` past it.
fn decode_lease_stamp(buf: &mut &[u8]) -> Result<Option<u64>, WireError> {
    match get_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(get_u64(buf)?)),
        t => Err(WireError::BadTag(t)),
    }
}

/// Prefixes a payload with the protocol version and its CRC32.
fn seal_frame(payload: &[u8]) -> BytesMut {
    let mut framed = BytesMut::with_capacity(FRAME_HEADER + payload.len());
    framed.put_u8(PROTOCOL_VERSION);
    framed.put_u32_le(crc32(payload));
    framed.put_slice(payload);
    framed
}

/// Hard cap on a single frame read from a byte-stream carrier. A peer
/// announcing a larger frame is treated as corrupt and disconnected.
pub(crate) const MAX_FRAME: u32 = 64 << 20;

/// Where a [`Frame`]'s backing buffer came from, which determines both
/// where it goes on drop and which pool statistic its capacity feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameOrigin {
    /// A plain `Vec<u8>` handed in by the caller; dropped normally.
    Raw,
    /// Leased from the pool shelf (a reuse); returns to the shelf.
    PoolHit,
    /// Freshly allocated because the shelf was empty or pooling is off;
    /// still returns to the shelf so it can be a hit next time.
    PoolMiss,
}

/// An owned encoded frame whose backing buffer may be leased from the
/// process-wide [`FramePool`].
///
/// `Frame` dereferences to `[u8]`, so everything that consumed `Vec<u8>`
/// frames (decoders, chaos mutation, byte accounting) works unchanged.
/// Dropping a pool-originated frame returns its buffer to the pool instead
/// of freeing it, which is what removes per-frame allocations from the
/// encode/decode hot path.
pub struct Frame {
    buf: Vec<u8>,
    origin: FrameOrigin,
}

impl Frame {
    /// An empty frame that is not associated with the pool.
    pub fn empty() -> Frame {
        Frame {
            buf: Vec::new(),
            origin: FrameOrigin::Raw,
        }
    }

    /// Shortens the frame to `len` bytes (used by chaos truncation).
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Mutable access to the backing buffer, for encode-in-place and
    /// carrier reads. Crate-internal: callers outside the transport layer
    /// only ever see frames as immutable byte slices.
    pub(crate) fn vec_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Deref for Frame {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for Frame {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl Drop for Frame {
    fn drop(&mut self) {
        if self.origin != FrameOrigin::Raw {
            FramePool::global().release(std::mem::take(&mut self.buf), self.origin);
        }
    }
}

impl Clone for Frame {
    fn clone(&self) -> Frame {
        if self.origin == FrameOrigin::Raw {
            Frame {
                buf: self.buf.clone(),
                origin: FrameOrigin::Raw,
            }
        } else {
            let mut copy = FramePool::global().acquire();
            copy.buf.extend_from_slice(&self.buf);
            copy
        }
    }
}

impl std::fmt::Debug for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Frame({:?})", self.buf)
    }
}

impl PartialEq for Frame {
    fn eq(&self, other: &Frame) -> bool {
        self.buf == other.buf
    }
}

impl Eq for Frame {}

impl PartialEq<Vec<u8>> for Frame {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.buf == *other
    }
}

impl PartialEq<Frame> for Vec<u8> {
    fn eq(&self, other: &Frame) -> bool {
        *self == other.buf
    }
}

impl PartialEq<&[u8]> for Frame {
    fn eq(&self, other: &&[u8]) -> bool {
        self.buf == *other
    }
}

impl From<Vec<u8>> for Frame {
    fn from(buf: Vec<u8>) -> Frame {
        Frame {
            buf,
            origin: FrameOrigin::Raw,
        }
    }
}

impl From<&[u8]> for Frame {
    fn from(bytes: &[u8]) -> Frame {
        Frame {
            buf: bytes.to_vec(),
            origin: FrameOrigin::Raw,
        }
    }
}

/// Most buffers the shelf will retain at once.
const POOL_SHELF_CAPACITY: usize = 256;

/// Largest buffer capacity the shelf retains; bigger one-off buffers
/// (bulk migrations) are freed rather than kept hot forever.
const POOL_MAX_RETAIN: usize = 1 << 20;

/// Process-wide shelf of reusable frame buffers.
///
/// [`Message::encode_pooled`] and the byte-stream carriers lease buffers
/// from here; dropping the resulting [`Frame`] returns the buffer. The
/// pool keeps logical allocation accounting (independent of wall clock, so
/// it is stable in CI): every buffer capacity released by a miss-origin
/// frame counts as freshly allocated bytes, every capacity released by a
/// hit-origin frame counts as recycled bytes. `set_pooling(false)` turns
/// the shelf off (every acquire becomes a miss) for A/B measurement.
pub struct FramePool {
    shelf: Mutex<Vec<Vec<u8>>>,
    enabled: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    allocated_bytes: AtomicU64,
    recycled_bytes: AtomicU64,
    tele_hits: Arc<aide_telemetry::Counter>,
    tele_misses: Arc<aide_telemetry::Counter>,
    tele_allocated: Arc<aide_telemetry::Counter>,
    tele_recycled: Arc<aide_telemetry::Counter>,
    tele_buffers: Arc<aide_telemetry::Gauge>,
}

impl FramePool {
    fn new() -> FramePool {
        let t = aide_telemetry::global();
        FramePool {
            shelf: Mutex::new(Vec::new()),
            enabled: AtomicBool::new(true),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            allocated_bytes: AtomicU64::new(0),
            recycled_bytes: AtomicU64::new(0),
            tele_hits: t.counter(aide_telemetry::names::RPC_POOL_HITS),
            tele_misses: t.counter(aide_telemetry::names::RPC_POOL_MISSES),
            tele_allocated: t.counter(aide_telemetry::names::RPC_POOL_ALLOCATED_BYTES),
            tele_recycled: t.counter(aide_telemetry::names::RPC_POOL_RECYCLED_BYTES),
            tele_buffers: t.gauge(aide_telemetry::names::RPC_POOL_BUFFERS),
        }
    }

    /// The process-wide pool instance.
    pub fn global() -> &'static FramePool {
        static POOL: OnceLock<FramePool> = OnceLock::new();
        POOL.get_or_init(FramePool::new)
    }

    /// Enables or disables buffer reuse. While disabled every acquire is a
    /// miss and released buffers are freed — the unpooled baseline for the
    /// `exp_rpc_throughput` comparison.
    pub fn set_pooling(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
        if !enabled {
            let mut shelf = self.shelf.lock();
            let n = shelf.len();
            shelf.clear();
            self.tele_buffers.add(-(n as i64));
        }
    }

    /// Whether buffer reuse is currently enabled.
    pub fn pooling(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Leases an empty buffer, reusing a shelved one when possible.
    pub fn acquire(&self) -> Frame {
        if self.enabled.load(Ordering::Relaxed) {
            if let Some(mut buf) = self.shelf.lock().pop() {
                buf.clear();
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.tele_hits.inc();
                self.tele_buffers.add(-1);
                return Frame {
                    buf,
                    origin: FrameOrigin::PoolHit,
                };
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.tele_misses.inc();
        Frame {
            buf: Vec::new(),
            origin: FrameOrigin::PoolMiss,
        }
    }

    /// Accepts a buffer back from a dropped pool-originated [`Frame`].
    fn release(&self, buf: Vec<u8>, origin: FrameOrigin) {
        let cap = buf.capacity() as u64;
        match origin {
            FrameOrigin::PoolHit => {
                self.recycled_bytes.fetch_add(cap, Ordering::Relaxed);
                self.tele_recycled.add(cap);
            }
            FrameOrigin::PoolMiss => {
                self.allocated_bytes.fetch_add(cap, Ordering::Relaxed);
                self.tele_allocated.add(cap);
            }
            FrameOrigin::Raw => return,
        }
        if !self.enabled.load(Ordering::Relaxed) || cap == 0 || cap as usize > POOL_MAX_RETAIN {
            return;
        }
        let mut shelf = self.shelf.lock();
        if shelf.len() < POOL_SHELF_CAPACITY {
            shelf.push(buf);
            self.tele_buffers.add(1);
        }
    }

    /// Number of acquires served from the shelf.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of acquires that had to start from an empty buffer.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total capacity (bytes) of freshly allocated frame buffers released
    /// so far — the numerator of bytes-allocated-per-call.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes.load(Ordering::Relaxed)
    }

    /// Total capacity (bytes) of reused frame buffers released so far.
    pub fn recycled_bytes(&self) -> u64 {
        self.recycled_bytes.load(Ordering::Relaxed)
    }
}

/// Writes one `[len u32 LE][bytes]` frame to a byte-stream carrier.
/// Shared by the single-session TCP carrier and the mux writer so framing
/// exists in exactly one place.
pub(crate) fn write_frame(w: &mut impl Write, frame: &[u8]) -> std::io::Result<()> {
    let len = frame.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(frame)
}

/// Reads exactly `len` bytes from a carrier into a pooled frame buffer.
pub(crate) fn read_exact_pooled(r: &mut impl Read, len: usize) -> std::io::Result<Frame> {
    let mut frame = FramePool::global().acquire();
    frame.vec_mut().resize(len, 0);
    r.read_exact(frame.vec_mut())?;
    Ok(frame)
}

/// Reads one `[len u32 LE][bytes]` frame from a byte-stream carrier into
/// a pooled buffer, enforcing [`MAX_FRAME`].
pub(crate) fn read_frame(r: &mut impl Read) -> std::io::Result<Frame> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    read_exact_pooled(r, len as usize)
}

fn encode_request<B: BufMut>(buf: &mut B, body: &Request) {
    match body {
        Request::Invoke {
            target,
            class,
            method,
            arg_bytes,
            ret_bytes,
            args,
        } => {
            buf.put_u8(0);
            buf.put_u64_le(target.0);
            buf.put_u32_le(class.0);
            buf.put_u16_le(method.0);
            buf.put_u32_le(*arg_bytes);
            buf.put_u32_le(*ret_bytes);
            buf.put_u16_le(args.len() as u16);
            for a in args {
                buf.put_u64_le(a.0);
            }
        }
        Request::FieldAccess {
            target,
            bytes,
            write,
        } => {
            buf.put_u8(1);
            buf.put_u64_le(target.0);
            buf.put_u32_le(*bytes);
            buf.put_u8(u8::from(*write));
        }
        Request::GetSlot { target, slot } => {
            buf.put_u8(2);
            buf.put_u64_le(target.0);
            buf.put_u16_le(*slot);
        }
        Request::PutSlot {
            target,
            slot,
            value,
        } => {
            buf.put_u8(3);
            buf.put_u64_le(target.0);
            buf.put_u16_le(*slot);
            put_opt_oid(buf, *value);
        }
        Request::Native {
            caller,
            kind,
            work_micros,
            arg_bytes,
            ret_bytes,
        } => {
            buf.put_u8(4);
            buf.put_u32_le(caller.0);
            buf.put_u8(native_tag(*kind));
            buf.put_u32_le(*work_micros);
            buf.put_u32_le(*arg_bytes);
            buf.put_u32_le(*ret_bytes);
        }
        Request::StaticAccess {
            accessor,
            class,
            bytes,
            write,
        } => {
            buf.put_u8(5);
            buf.put_u32_le(accessor.0);
            buf.put_u32_le(class.0);
            buf.put_u32_le(*bytes);
            buf.put_u8(u8::from(*write));
        }
        Request::ClassOf { target } => {
            buf.put_u8(6);
            buf.put_u64_le(target.0);
        }
        Request::Migrate { objects } => {
            buf.put_u8(7);
            put_object_records(buf, objects);
        }
        Request::GcRelease { objects } => {
            buf.put_u8(8);
            buf.put_u32_le(objects.len() as u32);
            for id in objects {
                buf.put_u64_le(id.0);
            }
        }
        Request::Shutdown => buf.put_u8(9),
        Request::Ping => buf.put_u8(10),
        Request::Stats => buf.put_u8(11),
        Request::MigratePrepare { txn, objects } => {
            buf.put_u8(12);
            buf.put_u64_le(*txn);
            put_object_records(buf, objects);
        }
        Request::MigrateCommit { txn } => {
            buf.put_u8(13);
            buf.put_u64_le(*txn);
        }
        Request::MigrateAbort { txn } => {
            buf.put_u8(14);
            buf.put_u64_le(*txn);
        }
        Request::GcRenew { epoch } => {
            buf.put_u8(15);
            buf.put_u64_le(*epoch);
        }
        Request::GcReleaseSeq {
            epoch,
            release_seq,
            objects,
        } => {
            buf.put_u8(16);
            buf.put_u64_le(*epoch);
            buf.put_u64_le(*release_seq);
            buf.put_u32_le(objects.len() as u32);
            for id in objects {
                buf.put_u64_le(id.0);
            }
        }
        Request::RelayDeliver {
            txn,
            queued_for_ms,
            objects,
        } => {
            buf.put_u8(17);
            buf.put_u64_le(*txn);
            buf.put_u64_le(*queued_for_ms);
            put_object_records(buf, objects);
        }
    }
}

fn put_object_records<B: BufMut>(buf: &mut B, objects: &[(ObjectId, ObjectRecord)]) {
    buf.put_u32_le(objects.len() as u32);
    for (id, rec) in objects {
        buf.put_u64_le(id.0);
        buf.put_u32_le(rec.class.0);
        buf.put_u32_le(rec.scalar_bytes);
        buf.put_u16_le(rec.slots.len() as u16);
        for slot in &rec.slots {
            put_opt_oid(buf, *slot);
        }
    }
}

fn get_object_records(buf: &mut &[u8]) -> Result<Vec<(ObjectId, ObjectRecord)>, WireError> {
    let n = get_u32(buf)? as usize;
    let mut objects = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let id = ObjectId(get_u64(buf)?);
        let class = ClassId(get_u32(buf)?);
        let scalar_bytes = get_u32(buf)?;
        let slots_n = get_u16(buf)? as usize;
        let mut rec = ObjectRecord::new(class, scalar_bytes, slots_n as u16);
        for i in 0..slots_n {
            rec.slots[i] = get_opt_oid(buf)?;
        }
        objects.push((id, rec));
    }
    Ok(objects)
}

fn decode_request(buf: &mut &[u8]) -> Result<Request, WireError> {
    Ok(match get_u8(buf)? {
        0 => {
            let target = ObjectId(get_u64(buf)?);
            let class = ClassId(get_u32(buf)?);
            let method = MethodId(get_u16(buf)?);
            let arg_bytes = get_u32(buf)?;
            let ret_bytes = get_u32(buf)?;
            let n = get_u16(buf)? as usize;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(ObjectId(get_u64(buf)?));
            }
            Request::Invoke {
                target,
                class,
                method,
                arg_bytes,
                ret_bytes,
                args,
            }
        }
        1 => Request::FieldAccess {
            target: ObjectId(get_u64(buf)?),
            bytes: get_u32(buf)?,
            write: get_u8(buf)? != 0,
        },
        2 => Request::GetSlot {
            target: ObjectId(get_u64(buf)?),
            slot: get_u16(buf)?,
        },
        3 => Request::PutSlot {
            target: ObjectId(get_u64(buf)?),
            slot: get_u16(buf)?,
            value: get_opt_oid(buf)?,
        },
        4 => Request::Native {
            caller: ClassId(get_u32(buf)?),
            kind: native_from_tag(get_u8(buf)?)?,
            work_micros: get_u32(buf)?,
            arg_bytes: get_u32(buf)?,
            ret_bytes: get_u32(buf)?,
        },
        5 => Request::StaticAccess {
            accessor: ClassId(get_u32(buf)?),
            class: ClassId(get_u32(buf)?),
            bytes: get_u32(buf)?,
            write: get_u8(buf)? != 0,
        },
        6 => Request::ClassOf {
            target: ObjectId(get_u64(buf)?),
        },
        7 => Request::Migrate {
            objects: get_object_records(buf)?,
        },
        8 => {
            let n = get_u32(buf)? as usize;
            let mut objects = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                objects.push(ObjectId(get_u64(buf)?));
            }
            Request::GcRelease { objects }
        }
        9 => Request::Shutdown,
        10 => Request::Ping,
        11 => Request::Stats,
        12 => Request::MigratePrepare {
            txn: get_u64(buf)?,
            objects: get_object_records(buf)?,
        },
        13 => Request::MigrateCommit { txn: get_u64(buf)? },
        14 => Request::MigrateAbort { txn: get_u64(buf)? },
        15 => Request::GcRenew {
            epoch: get_u64(buf)?,
        },
        16 => {
            let epoch = get_u64(buf)?;
            let release_seq = get_u64(buf)?;
            let n = get_u32(buf)? as usize;
            let mut objects = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                objects.push(ObjectId(get_u64(buf)?));
            }
            Request::GcReleaseSeq {
                epoch,
                release_seq,
                objects,
            }
        }
        17 => Request::RelayDeliver {
            txn: get_u64(buf)?,
            queued_for_ms: get_u64(buf)?,
            objects: get_object_records(buf)?,
        },
        t => return Err(WireError::BadTag(t)),
    })
}

fn encode_reply<B: BufMut>(buf: &mut B, reply: &Reply) {
    match reply {
        Reply::Unit => buf.put_u8(0),
        Reply::Slot(v) => {
            buf.put_u8(1);
            put_opt_oid(buf, *v);
        }
        Reply::Class(c) => {
            buf.put_u8(2);
            buf.put_u32_le(c.0);
        }
        Reply::Text(s) => {
            buf.put_u8(3);
            put_str(buf, s);
        }
        Reply::Busy { retry_after_ms } => {
            buf.put_u8(4);
            buf.put_u32_le(*retry_after_ms);
        }
    }
}

fn decode_reply(buf: &mut &[u8]) -> Result<Reply, WireError> {
    Ok(match get_u8(buf)? {
        0 => Reply::Unit,
        1 => Reply::Slot(get_opt_oid(buf)?),
        2 => Reply::Class(ClassId(get_u32(buf)?)),
        3 => Reply::Text(get_str(buf)?),
        4 => Reply::Busy {
            retry_after_ms: get_u32(buf)?,
        },
        t => return Err(WireError::BadTag(t)),
    })
}

fn native_tag(kind: NativeKind) -> u8 {
    match kind {
        NativeKind::Math => 0,
        NativeKind::StringOp => 1,
        NativeKind::Framebuffer => 2,
        NativeKind::UiToolkit => 3,
        NativeKind::FileIo => 4,
        NativeKind::SystemInfo => 5,
        _ => u8::MAX,
    }
}

fn native_from_tag(tag: u8) -> Result<NativeKind, WireError> {
    Ok(match tag {
        0 => NativeKind::Math,
        1 => NativeKind::StringOp,
        2 => NativeKind::Framebuffer,
        3 => NativeKind::UiToolkit,
        4 => NativeKind::FileIo,
        5 => NativeKind::SystemInfo,
        t => return Err(WireError::BadTag(t)),
    })
}

fn put_opt_oid<B: BufMut>(buf: &mut B, v: Option<ObjectId>) {
    match v {
        Some(id) => {
            buf.put_u8(1);
            buf.put_u64_le(id.0);
        }
        None => buf.put_u8(0),
    }
}

fn get_opt_oid(buf: &mut &[u8]) -> Result<Option<ObjectId>, WireError> {
    match get_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(ObjectId(get_u64(buf)?))),
        t => Err(WireError::BadTag(t)),
    }
}

fn put_str<B: BufMut>(buf: &mut B, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, WireError> {
    let n = get_u32(buf)? as usize;
    if buf.remaining() < n {
        return Err(WireError::Truncated);
    }
    let s = String::from_utf8_lossy(&buf[..n]).into_owned();
    buf.advance(n);
    Ok(s)
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut &[u8]) -> Result<u16, WireError> {
    if buf.remaining() < 2 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u16_le())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, WireError> {
    if buf.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u64_le())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let frame = msg.encode();
        let back = Message::decode(&frame).expect("decode");
        assert_eq!(msg, back);
    }

    #[test]
    fn invoke_round_trip() {
        round_trip(Message::Request {
            seq: 42,
            client: 7,
            body: Request::Invoke {
                target: ObjectId::surrogate(7),
                class: ClassId(3),
                method: MethodId(2),
                arg_bytes: 100,
                ret_bytes: 8,
                args: vec![ObjectId::client(1), ObjectId::client(2)],
            },
        });
    }

    #[test]
    fn all_request_variants_round_trip() {
        let mut rec = ObjectRecord::new(ClassId(5), 1000, 3);
        rec.slots[1] = Some(ObjectId::client(9));
        let requests = vec![
            Request::FieldAccess {
                target: ObjectId::client(1),
                bytes: 4096,
                write: true,
            },
            Request::GetSlot {
                target: ObjectId::surrogate(2),
                slot: 7,
            },
            Request::PutSlot {
                target: ObjectId::client(3),
                slot: 0,
                value: None,
            },
            Request::PutSlot {
                target: ObjectId::client(3),
                slot: 1,
                value: Some(ObjectId::surrogate(8)),
            },
            Request::Native {
                caller: ClassId(1),
                kind: NativeKind::Framebuffer,
                work_micros: 50,
                arg_bytes: 128,
                ret_bytes: 0,
            },
            Request::StaticAccess {
                accessor: ClassId(2),
                class: ClassId(0),
                bytes: 64,
                write: false,
            },
            Request::ClassOf {
                target: ObjectId::surrogate(11),
            },
            Request::Migrate {
                objects: vec![(ObjectId::client(4), rec)],
            },
            Request::GcRelease {
                objects: vec![ObjectId::client(5), ObjectId::client(6)],
            },
            Request::Shutdown,
            Request::Ping,
            Request::Stats,
            Request::MigratePrepare {
                txn: 77,
                objects: vec![(ObjectId::client(12), ObjectRecord::new(ClassId(2), 256, 0))],
            },
            Request::MigrateCommit { txn: 77 },
            Request::MigrateAbort { txn: 78 },
            Request::GcRenew { epoch: 3 },
            Request::GcReleaseSeq {
                epoch: 3,
                release_seq: 41,
                objects: vec![ObjectId::surrogate(5), ObjectId::surrogate(6)],
            },
            Request::RelayDeliver {
                txn: 91,
                queued_for_ms: 1500,
                objects: vec![(ObjectId::client(13), ObjectRecord::new(ClassId(4), 128, 2))],
            },
        ];
        for (i, body) in requests.into_iter().enumerate() {
            round_trip(Message::Request {
                seq: i as u64,
                client: 3,
                body,
            });
        }
    }

    #[test]
    fn replies_round_trip() {
        round_trip(Message::Reply {
            seq: 1,
            result: Ok(Reply::Unit),
        });
        round_trip(Message::Reply {
            seq: 2,
            result: Ok(Reply::Slot(Some(ObjectId::surrogate(3)))),
        });
        round_trip(Message::Reply {
            seq: 3,
            result: Ok(Reply::Class(ClassId(12))),
        });
        round_trip(Message::Reply {
            seq: 4,
            result: Err("dangling object reference obj@c9".into()),
        });
        round_trip(Message::Reply {
            seq: 5,
            result: Ok(Reply::Text("aide_rpc_requests_total 3\n".into())),
        });
        round_trip(Message::Reply {
            seq: 6,
            result: Ok(Reply::Busy { retry_after_ms: 25 }),
        });
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let msg = Message::Request {
            seq: 9,
            client: 1,
            body: Request::ClassOf {
                target: ObjectId::client(1),
            },
        };
        let frame = msg.encode();
        for cut in 0..frame.len() {
            let err = Message::decode(&frame[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    WireError::Truncated | WireError::BadChecksum | WireError::BadTag(_)
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        // A correctly checksummed payload with extra bytes after the
        // message (a peer bug, not corruption) still reports trailing.
        let msg = Message::Reply {
            seq: 1,
            result: Ok(Reply::Unit),
        };
        let mut payload = msg.encode_payload();
        payload.put_u8(0xFF);
        let frame = seal_frame(&payload);
        assert_eq!(
            Message::decode(&frame).unwrap_err(),
            WireError::TrailingBytes(1)
        );
    }

    #[test]
    fn bad_tags_are_rejected() {
        // A valid envelope around an unknown message tag.
        let frame = seal_frame(&[7]);
        assert_eq!(Message::decode(&frame).unwrap_err(), WireError::BadTag(7));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let msg = Message::Reply {
            seq: 1,
            result: Ok(Reply::Unit),
        };
        let mut frame = msg.encode().to_vec();
        frame[0] = PROTOCOL_VERSION.wrapping_add(1);
        assert_eq!(
            Message::decode(&frame).unwrap_err(),
            WireError::BadVersion(PROTOCOL_VERSION.wrapping_add(1))
        );
    }

    #[test]
    fn legacy_v2_frames_still_decode() {
        // A pre-tracing peer frames the bare message body under version 2;
        // it must decode unchanged, with no trace context.
        let msg = Message::Request {
            seq: 5,
            client: 2,
            body: Request::Ping,
        };
        let mut payload = BytesMut::new();
        msg.encode_body(&mut payload);
        let mut frame = BytesMut::with_capacity(FRAME_HEADER + payload.len());
        frame.put_u8(LEGACY_PROTOCOL_VERSION);
        frame.put_u32_le(crc32(&payload));
        frame.put_slice(&payload);
        let (decoded, ctx) = Message::decode_traced(&frame).expect("legacy decode");
        assert_eq!(decoded, msg);
        assert_eq!(ctx, None);
        assert_eq!(Message::decode(&frame).expect("legacy decode"), msg);
    }

    #[test]
    fn v3_frames_without_a_lease_stamp_still_decode() {
        // A pre-lease peer frames [trace ctx][body] under version 3; it
        // must decode unchanged, with no lease advertised.
        let msg = Message::Request {
            seq: 6,
            client: 2,
            body: Request::ClassOf {
                target: ObjectId::surrogate(4),
            },
        };
        let mut payload = BytesMut::new();
        payload.put_u8(0); // no trace context
        msg.encode_body(&mut payload);
        let mut frame = BytesMut::with_capacity(FRAME_HEADER + payload.len());
        frame.put_u8(TRACED_PROTOCOL_VERSION);
        frame.put_u32_le(crc32(&payload));
        frame.put_slice(&payload);
        let (decoded, ctx, lease) = Message::decode_stamped(&frame).expect("v3 decode");
        assert_eq!(decoded, msg);
        assert_eq!(ctx, None);
        assert_eq!(lease, None);
        assert_eq!(Message::decode(&frame).expect("v3 decode"), msg);
    }

    #[test]
    fn lease_stamp_rides_the_frame() {
        let msg = Message::Request {
            seq: 12,
            client: 5,
            body: Request::Ping,
        };
        let stamped = msg.encode_pooled_stamped(Some(7));
        let (decoded, _, lease) = Message::decode_stamped(&stamped).expect("decode stamped");
        assert_eq!(decoded, msg);
        assert_eq!(lease, Some(7));
        // Unstamped frames decode with no lease, and the stamp costs
        // exactly the epoch bytes.
        let bare = msg.encode_pooled();
        let (_, _, none) = Message::decode_stamped(&bare).expect("decode bare");
        assert_eq!(none, None);
        assert_eq!(stamped.len(), bare.len() + 8);
    }

    #[test]
    fn gc_request_sizes_are_compact() {
        let renew = Message::Request {
            seq: 0,
            client: 0,
            body: Request::GcRenew { epoch: 1 },
        };
        assert_eq!(renew.simulated_request_bytes(), 32 + 8);
        let release = Message::Request {
            seq: 0,
            client: 0,
            body: Request::GcReleaseSeq {
                epoch: 1,
                release_seq: 2,
                objects: vec![ObjectId::surrogate(1); 3],
            },
        };
        assert_eq!(release.simulated_request_bytes(), 32 + 16 + 24);
    }

    #[test]
    fn trace_context_rides_the_frame_and_is_crc_protected() {
        let msg = Message::Request {
            seq: 8,
            client: 4,
            body: Request::MigrateCommit { txn: 9 },
        };
        let guard = aide_trace::span("wire.test", "test");
        let parent = guard.context();
        let frame = msg.encode();
        drop(guard); // the context is captured at encode time
        let (decoded, ctx) = Message::decode_traced(&frame).expect("decode");
        assert_eq!(decoded, msg);
        assert_eq!(ctx, Some(parent));
        // A flipped context byte is corruption like any other payload byte.
        let mut bad = frame.to_vec();
        bad[FRAME_HEADER] ^= 0x01;
        assert_eq!(Message::decode(&bad).unwrap_err(), WireError::BadChecksum);
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let msg = Message::Request {
            seq: 3,
            client: 9,
            body: Request::Ping,
        };
        let frame = msg.encode();
        // Flip every payload byte in turn: all must be caught.
        for pos in FRAME_HEADER..frame.len() {
            let mut bad = frame.to_vec();
            bad[pos] ^= 0x40;
            assert_eq!(
                Message::decode(&bad).unwrap_err(),
                WireError::BadChecksum,
                "flip at {pos}"
            );
        }
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn simulated_sizes_reflect_declared_payloads() {
        let invoke = Message::Request {
            seq: 0,
            client: 0,
            body: Request::Invoke {
                target: ObjectId::client(0),
                class: ClassId(0),
                method: MethodId(0),
                arg_bytes: 1_000,
                ret_bytes: 500,
                args: vec![ObjectId::client(1)],
            },
        };
        assert_eq!(invoke.simulated_request_bytes(), 32 + 1_000 + 8);
        if let Message::Request { body, .. } = &invoke {
            assert_eq!(Message::simulated_reply_bytes(body), 32 + 500);
        }

        let read = Request::FieldAccess {
            target: ObjectId::client(0),
            bytes: 4_096,
            write: false,
        };
        let msg = Message::Request {
            seq: 0,
            client: 0,
            body: read.clone(),
        };
        // A read sends no payload out; the data comes back in the reply.
        assert_eq!(msg.simulated_request_bytes(), 32);
        assert_eq!(Message::simulated_reply_bytes(&read), 32 + 4_096);
    }

    #[test]
    fn migrate_size_counts_object_footprints() {
        let rec = ObjectRecord::new(ClassId(0), 984, 0); // footprint 1000
        let msg = Message::Request {
            seq: 0,
            client: 0,
            body: Request::Migrate {
                objects: vec![(ObjectId::client(0), rec)],
            },
        };
        assert_eq!(msg.simulated_request_bytes(), 32 + 1_000 + 16);
    }

    #[test]
    fn two_phase_migration_sizes_match_the_single_shot_path() {
        // PREPARE carries the objects (priced like Migrate); COMMIT and
        // ABORT are control messages priced as bare headers, so switching
        // to the transactional path does not change per-object link cost.
        let rec = ObjectRecord::new(ClassId(0), 984, 0); // footprint 1000
        let prepare = Message::Request {
            seq: 0,
            client: 0,
            body: Request::MigratePrepare {
                txn: 1,
                objects: vec![(ObjectId::client(0), rec)],
            },
        };
        assert_eq!(prepare.simulated_request_bytes(), 32 + 1_000 + 16);
        let commit = Message::Request {
            seq: 1,
            client: 0,
            body: Request::MigrateCommit { txn: 1 },
        };
        assert_eq!(commit.simulated_request_bytes(), 32);
        assert_eq!(
            Message::simulated_reply_bytes(&Request::MigrateCommit { txn: 1 }),
            32
        );
    }

    #[test]
    fn pooled_encode_is_byte_identical_to_plain_encode() {
        let msg = Message::Request {
            seq: 9,
            client: 3,
            body: Request::FieldAccess {
                target: ObjectId::surrogate(4),
                bytes: 128,
                write: false,
            },
        };
        let plain = msg.encode();
        let pooled = msg.encode_pooled();
        assert_eq!(&plain[..], &pooled[..]);
        assert_eq!(Message::decode(&pooled).expect("decode pooled"), msg);
    }

    #[test]
    fn encode_into_reuses_capacity_and_matches_encode() {
        let small = Message::Reply {
            seq: 1,
            result: Ok(Reply::Unit),
        };
        let big = Message::Request {
            seq: 2,
            client: 0,
            body: Request::Invoke {
                target: ObjectId::surrogate(1),
                class: ClassId(1),
                method: MethodId(1),
                arg_bytes: 4_096,
                ret_bytes: 64,
                args: vec![ObjectId::client(5); 32],
            },
        };
        let mut buf = Vec::new();
        big.encode_into(&mut buf);
        assert_eq!(buf, big.encode().to_vec());
        let cap = buf.capacity();
        small.encode_into(&mut buf);
        assert_eq!(buf, small.encode().to_vec());
        assert_eq!(buf.capacity(), cap, "re-encode must not reallocate");
    }

    #[test]
    fn dropped_pool_frames_are_accounted_by_origin() {
        // Counters are global and monotonic, so assert deltas with >=:
        // concurrent tests may add their own traffic in between.
        let pool = FramePool::global();
        let msg = Message::Reply {
            seq: 7,
            result: Ok(Reply::Unit),
        };
        let frame = msg.encode_pooled();
        // Capacity is at least the frame length, so the length is a safe
        // lower bound on the accounted bytes.
        let len = frame.len() as u64;
        let before = pool.allocated_bytes() + pool.recycled_bytes();
        drop(frame);
        let after = pool.allocated_bytes() + pool.recycled_bytes();
        assert!(
            after >= before + len,
            "dropping a pooled frame must account its capacity"
        );
    }

    #[test]
    fn cloned_frames_compare_equal_and_pool_independently() {
        let msg = Message::Reply {
            seq: 11,
            result: Err("nope".into()),
        };
        let pooled = msg.encode_pooled();
        let copy = pooled.clone();
        assert_eq!(pooled, copy);
        let raw: Frame = pooled.to_vec().into();
        assert_eq!(raw, copy);
        drop(pooled);
        // The clone's buffer is its own: still valid after the original
        // returned to the pool.
        assert_eq!(Message::decode(&copy).expect("decode clone"), msg);
    }
}
