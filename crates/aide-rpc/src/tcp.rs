//! A TCP carrier for the RPC link: the same [`Transport`] interface, backed
//! by a real localhost socket with length-prefixed frames.
//!
//! The in-process [`Link::pair`][crate::Link::pair] is the default carrier
//! (deterministic, no I/O); this module exists to demonstrate that the
//! prototype's RPC layer genuinely works over sockets — each end runs a
//! reader and a writer thread bridging the socket to the transport's
//! channels. Simulated link *timing* is unchanged (the WaveLAN model is
//! applied by the endpoint, not the carrier).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use aide_graph::CommParams;
use crossbeam::channel::unbounded;

use crate::link::{Link, TrafficStats, Transport};

/// Maximum accepted frame size (a defence against corrupted length
/// prefixes; generous for `Migrate` batches).
const MAX_FRAME: u32 = 64 << 20;

/// Creates a connected pair of TCP-backed transports over a fresh
/// localhost socket.
///
/// Returns `(link, client_transport, surrogate_transport)` exactly like
/// [`Link::pair`][crate::Link::pair].
///
/// # Errors
///
/// Returns any I/O error from binding, connecting, or accepting.
pub fn tcp_pair(params: CommParams) -> std::io::Result<(Link, Transport, Transport)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let client_stream = TcpStream::connect(addr)?;
    let (surrogate_stream, _) = listener.accept()?;
    client_stream.set_nodelay(true)?;
    surrogate_stream.set_nodelay(true)?;

    let client = tcp_transport(client_stream)?;
    let surrogate = tcp_transport(surrogate_stream)?;
    Ok((
        Link {
            params,
            clock: Arc::new(crate::link::NetClock::new()),
        },
        client,
        surrogate,
    ))
}

/// Wraps one already-connected socket in a [`Transport`], spawning reader
/// and writer threads that bridge it to the transport's channels.
///
/// This is the building block for standalone daemons (e.g. the
/// `aide-surrogate` daemon accepts client sessions and wraps each accepted
/// socket); [`tcp_pair`] uses it for both ends of a loopback pair. Frames
/// are length-prefixed with a little-endian `u32`; a prefix larger than the
/// 64 MiB `MAX_FRAME` cap or a mid-frame EOF tears the connection down,
/// which callers observe as a disconnected transport.
///
/// # Errors
///
/// Returns any I/O error from cloning the stream for the writer half.
pub fn tcp_transport(stream: TcpStream) -> std::io::Result<Transport> {
    let (out_tx, out_rx) = unbounded::<Vec<u8>>();
    let (in_tx, in_rx) = unbounded::<Vec<u8>>();
    let stats = Arc::new(TrafficStats::default());

    // Writer: drain outgoing frames onto the socket, length-prefixed.
    let mut write_half = stream.try_clone()?;
    let telemetry = aide_telemetry::global();
    let frames_sent = telemetry.counter(aide_telemetry::names::TCP_FRAMES_SENT);
    let bytes_sent = telemetry.counter(aide_telemetry::names::TCP_BYTES_SENT);
    std::thread::Builder::new()
        .name("rpc-tcp-writer".into())
        .spawn(move || {
            while let Ok(frame) = out_rx.recv() {
                let len = frame.len() as u32;
                if write_half.write_all(&len.to_le_bytes()).is_err()
                    || write_half.write_all(&frame).is_err()
                {
                    break;
                }
                frames_sent.inc();
                bytes_sent.add(4 + u64::from(len));
            }
            let _ = write_half.shutdown(std::net::Shutdown::Write);
        })
        .expect("spawn tcp writer");

    // Reader: reassemble frames and feed the incoming channel.
    let mut read_half = stream;
    let frames_received = telemetry.counter(aide_telemetry::names::TCP_FRAMES_RECEIVED);
    let bytes_received = telemetry.counter(aide_telemetry::names::TCP_BYTES_RECEIVED);
    std::thread::Builder::new()
        .name("rpc-tcp-reader".into())
        .spawn(move || {
            let mut len_buf = [0u8; 4];
            loop {
                if read_half.read_exact(&mut len_buf).is_err() {
                    break; // EOF or error: drop in_tx, disconnecting the rx
                }
                let len = u32::from_le_bytes(len_buf);
                if len > MAX_FRAME {
                    break;
                }
                let mut frame = vec![0u8; len as usize];
                if read_half.read_exact(&mut frame).is_err() {
                    break;
                }
                frames_received.inc();
                bytes_received.add(4 + u64::from(len));
                if in_tx.send(frame).is_err() {
                    break;
                }
            }
        })
        .expect("spawn tcp reader");

    Ok(Transport::from_parts(out_tx, in_rx, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{Dispatcher, Endpoint, EndpointConfig};
    use crate::wire::{Reply, Request};
    use aide_vm::{ClassId, ObjectId};

    #[test]
    fn frames_cross_a_real_socket() {
        let (_, client, surrogate) = tcp_pair(CommParams::WAVELAN).unwrap();
        client.send(vec![1, 2, 3, 4]).unwrap();
        assert_eq!(surrogate.recv().unwrap(), vec![1, 2, 3, 4]);
        surrogate.send(vec![9; 100_000]).unwrap(); // larger than one MTU
        assert_eq!(client.recv().unwrap(), vec![9; 100_000]);
    }

    #[test]
    fn dropping_one_end_disconnects_the_other() {
        let (_, client, surrogate) = tcp_pair(CommParams::WAVELAN).unwrap();
        drop(client);
        // The peer sees EOF once the queue drains.
        assert!(surrogate.recv().is_err());
    }

    struct Fixed;
    impl Dispatcher for Fixed {
        fn dispatch(&self, _request: Request) -> Result<Reply, String> {
            Ok(Reply::Class(ClassId(9)))
        }
    }

    #[test]
    fn endpoints_run_rpc_over_tcp() {
        let (link, ct, st) = tcp_pair(CommParams::WAVELAN).unwrap();
        let clock = link.clock.clone();
        let client = Endpoint::start(
            ct,
            link.params,
            clock.clone(),
            std::sync::Arc::new(Fixed),
            EndpointConfig::default(),
        );
        let surrogate = Endpoint::start(
            st,
            link.params,
            clock,
            std::sync::Arc::new(Fixed),
            EndpointConfig::default(),
        );
        for _ in 0..50 {
            let reply = client
                .call(Request::ClassOf {
                    target: ObjectId::surrogate(1),
                })
                .unwrap();
            assert_eq!(reply, Reply::Class(ClassId(9)));
        }
        assert_eq!(surrogate.requests_served(), 50);
        // Simulated WaveLAN time accrues regardless of the carrier.
        assert!(client.clock().seconds() >= 50.0 * 2.4e-3);
        client.shutdown();
        surrogate.shutdown();
    }

    /// An accepted socket paired with a raw peer we can feed bytes through.
    fn raw_pair() -> (TcpStream, Transport) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nodelay(true).unwrap();
        raw.set_nodelay(true).unwrap();
        (raw, tcp_transport(accepted).unwrap())
    }

    #[test]
    fn tcp_transport_carries_well_formed_frames() {
        let (mut raw, transport) = raw_pair();
        raw.write_all(&3u32.to_le_bytes()).unwrap();
        raw.write_all(&[1, 2, 3]).unwrap();
        assert_eq!(transport.recv().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn oversized_length_prefix_disconnects_without_allocating() {
        let (mut raw, transport) = raw_pair();
        // A corrupted prefix claiming a frame beyond MAX_FRAME must tear
        // the connection down, not attempt a 4 GiB allocation.
        raw.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
        raw.write_all(&[0u8; 16]).unwrap();
        assert!(transport.recv().is_err());
    }

    #[test]
    fn mid_frame_eof_disconnects_cleanly() {
        let (mut raw, transport) = raw_pair();
        // Announce 100 bytes, deliver 10, then hang up.
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(&[7u8; 10]).unwrap();
        drop(raw);
        assert!(transport.recv().is_err());
    }

    #[test]
    fn dead_socket_surfaces_disconnected_on_the_next_call() {
        let (link, ct, st) = tcp_pair(CommParams::WAVELAN).unwrap();
        let client = Endpoint::start(
            ct,
            link.params,
            link.clock.clone(),
            std::sync::Arc::new(Fixed),
            EndpointConfig {
                workers: 2,
                call_timeout: std::time::Duration::from_secs(5),
                drain_timeout: std::time::Duration::from_millis(200),
                ..EndpointConfig::default()
            },
        );
        // The peer dies without any endpoint ever serving it.
        drop(st);
        let err = client
            .call(Request::ClassOf {
                target: ObjectId::surrogate(1),
            })
            .unwrap_err();
        assert!(
            matches!(
                err,
                crate::endpoint::RpcError::Disconnected | crate::endpoint::RpcError::Timeout
            ),
            "expected a disconnect, got {err:?}"
        );
    }
}
