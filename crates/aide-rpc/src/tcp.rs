//! The TCP carrier: real localhost sockets behind the unified transport
//! seam.
//!
//! Two shapes are provided, both built on the shared length-prefixed
//! framing in [`crate::wire`]:
//!
//! - [`tcp_pair`] / [`tcp_transport`]: one socket carrying exactly one
//!   [`Session`] (the historical carrier, still used by loopback
//!   experiments and benches as the connection-per-session baseline).
//! - [`TcpTransport`] / [`TcpMuxListener`]: one socket carrying many
//!   multiplexed sessions (see [`crate::mux`]), which is what the
//!   surrogate daemon and registry use — probes, leases, and stats
//!   scrapes to one surrogate share a single pooled connection.
//!
//! This module is the **only** place in the workspace allowed to touch
//! `TcpStream` (CI greps for leaks). Simulated link *timing* is unchanged
//! by the carrier choice — the WaveLAN model is applied by the endpoint.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use aide_graph::CommParams;
use crossbeam::channel::unbounded;

use crate::link::{Link, Session, TrafficStats};
use crate::mux::{spawn_mux, ConnKiller, MuxConn};
use crate::transport::{BackendKind, Transport};
use crate::wire::{read_frame, write_frame, Frame};

pub(crate) use crate::wire::MAX_FRAME;

/// Creates a connected pair of TCP-backed sessions over a fresh localhost
/// socket.
///
/// Returns `(link, client_session, surrogate_session)` exactly like
/// [`Link::pair`][crate::Link::pair].
///
/// # Errors
///
/// Returns any I/O error from binding, connecting, or accepting.
pub fn tcp_pair(params: CommParams) -> std::io::Result<(Link, Session, Session)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let client_stream = TcpStream::connect(addr)?;
    let (surrogate_stream, _) = listener.accept()?;
    client_stream.set_nodelay(true)?;
    surrogate_stream.set_nodelay(true)?;

    let client = tcp_transport(client_stream)?;
    let surrogate = tcp_transport(surrogate_stream)?;
    Ok((
        Link {
            params,
            clock: Arc::new(crate::link::NetClock::new()),
        },
        client,
        surrogate,
    ))
}

/// Wraps one already-connected socket in a single [`Session`], spawning
/// reader and writer threads that bridge it to the session's channels.
///
/// Frames are length-prefixed with a little-endian `u32` (the shared
/// framing in `wire.rs`); a prefix larger than the 64 MiB `MAX_FRAME` cap
/// or a mid-frame EOF tears the connection down, which callers observe as
/// a disconnected session. Inbound frames land in pooled buffers.
///
/// # Errors
///
/// Returns any I/O error from cloning the stream for the writer half.
pub fn tcp_transport(stream: TcpStream) -> std::io::Result<Session> {
    let (out_tx, out_rx) = unbounded::<Frame>();
    let (in_tx, in_rx) = unbounded::<Frame>();
    let stats = Arc::new(TrafficStats::default());

    // Writer: drain outgoing frames onto the socket, length-prefixed.
    let mut write_half = stream.try_clone()?;
    let telemetry = aide_telemetry::global();
    let frames_sent = telemetry.counter(aide_telemetry::names::TCP_FRAMES_SENT);
    let bytes_sent = telemetry.counter(aide_telemetry::names::TCP_BYTES_SENT);
    std::thread::Builder::new()
        .name("rpc-tcp-writer".into())
        .spawn(move || {
            while let Ok(frame) = out_rx.recv() {
                if write_frame(&mut write_half, &frame).is_err() {
                    break;
                }
                frames_sent.inc();
                bytes_sent.add(4 + frame.len() as u64);
            }
            let _ = write_half.shutdown(std::net::Shutdown::Write);
        })
        .expect("spawn tcp writer");

    // Reader: reassemble frames and feed the incoming channel.
    let mut read_half = stream;
    let frames_received = telemetry.counter(aide_telemetry::names::TCP_FRAMES_RECEIVED);
    let bytes_received = telemetry.counter(aide_telemetry::names::TCP_BYTES_RECEIVED);
    std::thread::Builder::new()
        .name("rpc-tcp-reader".into())
        .spawn(move || {
            loop {
                let frame = match read_frame(&mut read_half) {
                    Ok(frame) => frame,
                    Err(_) => break, // EOF, oversize, or error: drop in_tx
                };
                frames_received.inc();
                bytes_received.add(4 + frame.len() as u64);
                if in_tx.send(frame).is_err() {
                    break;
                }
            }
        })
        .expect("spawn tcp reader");

    Ok(Session::from_parts(out_tx, in_rx, stats, BackendKind::Tcp))
}

/// Wires an already-connected socket into a multiplexed connection.
fn mux_over(stream: TcpStream, initiator: bool) -> std::io::Result<MuxConn> {
    stream.set_nodelay(true)?;
    let read_half = stream.try_clone()?;
    let write_half = stream.try_clone()?;
    let killer = ConnKiller::new(move || {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    });
    let shutdown_half = write_half.try_clone()?;
    Ok(spawn_mux(
        read_half,
        write_half,
        initiator,
        killer,
        BackendKind::Tcp,
        move || {
            let _ = shutdown_half.shutdown(std::net::Shutdown::Write);
        },
    ))
}

/// The initiating side of a multiplexed TCP connection: one socket, many
/// logical sessions. This is the client-side [`Transport`] impl for the
/// TCP backend.
#[derive(Debug)]
pub struct TcpTransport {
    conn: MuxConn,
    peer: SocketAddr,
}

impl TcpTransport {
    /// Connects to `addr` and starts the mux reader/writer threads.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from connecting or configuring the socket.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<TcpTransport> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        Ok(TcpTransport {
            conn: mux_over(stream, true)?,
            peer: addr,
        })
    }

    /// The address this transport is connected to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// A handle that severs the whole connection (every session on it).
    pub fn killer(&self) -> ConnKiller {
        self.conn.killer()
    }
}

impl Transport for TcpTransport {
    fn backend(&self) -> BackendKind {
        BackendKind::Tcp
    }

    fn open_session(&self) -> Result<Session, crate::link::LinkError> {
        self.conn.open_session()
    }
}

/// Listener side of the multiplexed TCP backend: each accepted socket
/// becomes a [`MuxConn`] that yields (and can open) many sessions.
#[derive(Debug)]
pub struct TcpMuxListener {
    listener: TcpListener,
    addr: SocketAddr,
}

impl TcpMuxListener {
    /// Binds a listener on `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding.
    pub fn bind(addr: SocketAddr) -> std::io::Result<TcpMuxListener> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(TcpMuxListener { listener, addr })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the next client connects, returning the multiplexed
    /// connection (its [`Acceptor`] impl yields the client's sessions).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from accepting or configuring the socket.
    pub fn accept(&self) -> std::io::Result<MuxConn> {
        let (stream, _) = self.listener.accept()?;
        mux_over(stream, false)
    }
}

/// Pokes `addr` with a throwaway connection so a thread blocked in
/// [`TcpMuxListener::accept`] wakes up and can observe a stop flag (used
/// by the surrogate daemon's shutdown path).
pub fn nudge(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{Dispatcher, Endpoint, EndpointConfig};
    use crate::transport::Acceptor;
    use crate::wire::{Reply, Request};
    use aide_vm::{ClassId, ObjectId};

    #[test]
    fn frames_cross_a_real_socket() {
        let (_, client, surrogate) = tcp_pair(CommParams::WAVELAN).unwrap();
        client.send(vec![1, 2, 3, 4]).unwrap();
        assert_eq!(surrogate.recv().unwrap(), vec![1, 2, 3, 4]);
        surrogate.send(vec![9; 100_000]).unwrap(); // larger than one MTU
        assert_eq!(client.recv().unwrap(), vec![9; 100_000]);
    }

    #[test]
    fn dropping_one_end_disconnects_the_other() {
        let (_, client, surrogate) = tcp_pair(CommParams::WAVELAN).unwrap();
        drop(client);
        // The peer sees EOF once the queue drains.
        assert!(surrogate.recv().is_err());
    }

    struct Fixed;
    impl Dispatcher for Fixed {
        fn dispatch(&self, _request: Request) -> Result<Reply, String> {
            Ok(Reply::Class(ClassId(9)))
        }
    }

    #[test]
    fn endpoints_run_rpc_over_tcp() {
        let (link, ct, st) = tcp_pair(CommParams::WAVELAN).unwrap();
        let clock = link.clock.clone();
        let client = Endpoint::start(
            ct,
            link.params,
            clock.clone(),
            std::sync::Arc::new(Fixed),
            EndpointConfig::default(),
        );
        let surrogate = Endpoint::start(
            st,
            link.params,
            clock,
            std::sync::Arc::new(Fixed),
            EndpointConfig::default(),
        );
        for _ in 0..50 {
            let reply = client
                .call(Request::ClassOf {
                    target: ObjectId::surrogate(1),
                })
                .unwrap();
            assert_eq!(reply, Reply::Class(ClassId(9)));
        }
        assert_eq!(surrogate.requests_served(), 50);
        // Simulated WaveLAN time accrues regardless of the carrier.
        assert!(client.clock().seconds() >= 50.0 * 2.4e-3);
        client.shutdown();
        surrogate.shutdown();
    }

    /// An accepted socket paired with a raw peer we can feed bytes through.
    fn raw_pair() -> (TcpStream, Session) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nodelay(true).unwrap();
        raw.set_nodelay(true).unwrap();
        (raw, tcp_transport(accepted).unwrap())
    }

    #[test]
    fn tcp_transport_carries_well_formed_frames() {
        use std::io::Write;
        let (mut raw, transport) = raw_pair();
        raw.write_all(&3u32.to_le_bytes()).unwrap();
        raw.write_all(&[1, 2, 3]).unwrap();
        assert_eq!(transport.recv().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn oversized_length_prefix_disconnects_without_allocating() {
        use std::io::Write;
        let (mut raw, transport) = raw_pair();
        // A corrupted prefix claiming a frame beyond MAX_FRAME must tear
        // the connection down, not attempt a 4 GiB allocation.
        raw.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
        raw.write_all(&[0u8; 16]).unwrap();
        assert!(transport.recv().is_err());
    }

    #[test]
    fn mid_frame_eof_disconnects_cleanly() {
        use std::io::Write;
        let (mut raw, transport) = raw_pair();
        // Announce 100 bytes, deliver 10, then hang up.
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(&[7u8; 10]).unwrap();
        drop(raw);
        assert!(transport.recv().is_err());
    }

    #[test]
    fn dead_socket_surfaces_disconnected_on_the_next_call() {
        let (link, ct, st) = tcp_pair(CommParams::WAVELAN).unwrap();
        let client = Endpoint::start(
            ct,
            link.params,
            link.clock.clone(),
            std::sync::Arc::new(Fixed),
            EndpointConfig {
                workers: 2,
                call_timeout: std::time::Duration::from_secs(5),
                drain_timeout: std::time::Duration::from_millis(200),
                ..EndpointConfig::default()
            },
        );
        // The peer dies without any endpoint ever serving it.
        drop(st);
        let err = client
            .call(Request::ClassOf {
                target: ObjectId::surrogate(1),
            })
            .unwrap_err();
        assert!(
            matches!(
                err,
                crate::endpoint::RpcError::Disconnected | crate::endpoint::RpcError::Timeout
            ),
            "expected a disconnect, got {err:?}"
        );
    }

    #[test]
    fn many_sessions_share_one_socket() {
        let listener = TcpMuxListener::bind(([127, 0, 0, 1], 0).into()).unwrap();
        let transport =
            TcpTransport::connect(listener.local_addr(), Duration::from_secs(1)).unwrap();
        let conn = listener.accept().unwrap();
        assert_eq!(transport.backend(), BackendKind::Tcp);

        let mut pairs = Vec::new();
        for _ in 0..4 {
            let client = transport.open_session().unwrap();
            let server = conn.accept().unwrap();
            pairs.push((client, server));
        }
        for (i, (client, server)) in pairs.iter().enumerate() {
            client.send(vec![i as u8; 8]).unwrap();
            assert_eq!(server.recv().unwrap(), vec![i as u8; 8]);
            server.send(vec![i as u8]).unwrap();
            assert_eq!(client.recv().unwrap(), vec![i as u8]);
        }
    }

    #[test]
    fn killing_the_connection_severs_every_session() {
        let listener = TcpMuxListener::bind(([127, 0, 0, 1], 0).into()).unwrap();
        let transport =
            TcpTransport::connect(listener.local_addr(), Duration::from_secs(1)).unwrap();
        let conn = listener.accept().unwrap();
        let c1 = transport.open_session().unwrap();
        let c2 = transport.open_session().unwrap();
        let s1 = conn.accept().unwrap();
        let s2 = conn.accept().unwrap();
        c1.send(vec![1]).unwrap();
        assert_eq!(s1.recv().unwrap(), vec![1]);
        conn.killer().kill();
        assert!(s2.recv().is_err());
        assert!(c2.recv().is_err());
        let _ = c1; // still held; its recv would fail the same way
    }
}
