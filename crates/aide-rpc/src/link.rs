//! Duplex message links and simulated link-time accounting.
//!
//! A [`Link`] is a pair of connected transports carrying encoded frames
//! between two VMs over crossbeam channels (the prototype's stand-in for the
//! WaveLAN socket). The link keeps per-direction traffic statistics and a
//! shared [`NetClock`] that accumulates *simulated* communication seconds
//! according to [`CommParams`] — the paper's 11 Mbps / 2.4 ms RTT WaveLAN
//! model.

use std::sync::Arc;

use aide_graph::CommParams;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

/// Accumulates simulated communication time for one client/surrogate pair.
///
/// Execution is serial across the distributed platform (the paper's
/// emulator assumption), so communication seconds add directly to the
/// application's completion time.
#[derive(Debug, Default)]
pub struct NetClock {
    seconds: Mutex<f64>,
    round_trips: Mutex<u64>,
}

impl NetClock {
    /// Creates a zeroed clock.
    pub fn new() -> Self {
        NetClock::default()
    }

    /// Adds `seconds` of simulated link time.
    pub fn add(&self, seconds: f64) {
        *self.seconds.lock() += seconds;
    }

    /// Notes one completed round trip.
    pub fn note_round_trip(&self) {
        *self.round_trips.lock() += 1;
    }

    /// Total simulated communication seconds so far.
    pub fn seconds(&self) -> f64 {
        *self.seconds.lock()
    }

    /// Total round trips so far.
    pub fn round_trips(&self) -> u64 {
        *self.round_trips.lock()
    }
}

/// Per-endpoint traffic counters (real frames, real bytes).
#[derive(Debug, Default)]
pub struct TrafficStats {
    frames_sent: Mutex<u64>,
    bytes_sent: Mutex<u64>,
    frames_received: Mutex<u64>,
    bytes_received: Mutex<u64>,
}

impl TrafficStats {
    /// Frames sent by this endpoint.
    pub fn frames_sent(&self) -> u64 {
        *self.frames_sent.lock()
    }

    /// Encoded bytes sent by this endpoint.
    pub fn bytes_sent(&self) -> u64 {
        *self.bytes_sent.lock()
    }

    /// Frames received by this endpoint.
    pub fn frames_received(&self) -> u64 {
        *self.frames_received.lock()
    }

    /// Encoded bytes received by this endpoint.
    pub fn bytes_received(&self) -> u64 {
        *self.bytes_received.lock()
    }

    fn note_sent(&self, bytes: usize) {
        *self.frames_sent.lock() += 1;
        *self.bytes_sent.lock() += bytes as u64;
    }

    fn note_received(&self, bytes: usize) {
        *self.frames_received.lock() += 1;
        *self.bytes_received.lock() += bytes as u64;
    }
}

/// Errors surfaced by a transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The peer hung up.
    Disconnected,
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::Disconnected => f.write_str("link disconnected"),
        }
    }
}

impl std::error::Error for LinkError {}

/// One end of a duplex frame link.
#[derive(Debug, Clone)]
pub struct Transport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    stats: Arc<TrafficStats>,
}

impl Transport {
    /// Assembles a transport from raw channel halves (used by alternative
    /// carriers such as the TCP bridge).
    pub(crate) fn from_parts(
        tx: Sender<Vec<u8>>,
        rx: Receiver<Vec<u8>>,
        stats: Arc<TrafficStats>,
    ) -> Self {
        Transport { tx, rx, stats }
    }

    /// Sends one encoded frame to the peer.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::Disconnected`] if the peer's receiver is gone.
    pub fn send(&self, frame: Vec<u8>) -> Result<(), LinkError> {
        self.stats.note_sent(frame.len());
        self.tx.send(frame).map_err(|_| LinkError::Disconnected)
    }

    /// Receives the next frame, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::Disconnected`] when the peer hung up and the
    /// queue is drained.
    pub fn recv(&self) -> Result<Vec<u8>, LinkError> {
        let frame = self.rx.recv().map_err(|_| LinkError::Disconnected)?;
        self.stats.note_received(frame.len());
        Ok(frame)
    }

    /// Receives the next frame, or `Ok(None)` after `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::Disconnected`] when the peer hung up.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<Option<Vec<u8>>, LinkError> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => {
                self.stats.note_received(frame.len());
                Ok(Some(frame))
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(LinkError::Disconnected),
        }
    }

    /// This endpoint's traffic statistics.
    pub fn stats(&self) -> &Arc<TrafficStats> {
        &self.stats
    }

    /// Raw access to the incoming-frame channel, for select-based receive
    /// loops. Callers pulling frames off this channel directly must pair
    /// each one with [`Transport::note_received`] so traffic statistics
    /// stay exact.
    pub(crate) fn incoming(&self) -> &Receiver<Vec<u8>> {
        &self.rx
    }

    /// Records one received frame in the traffic statistics (companion to
    /// [`Transport::incoming`]).
    pub(crate) fn note_received(&self, bytes: usize) {
        self.stats.note_received(bytes);
    }
}

/// A connected pair of transports plus the shared link model.
#[derive(Debug)]
pub struct Link {
    /// Link parameters used for simulated timing.
    pub params: CommParams,
    /// Shared simulated communication clock.
    pub clock: Arc<NetClock>,
}

impl Link {
    /// Creates a connected transport pair with the given link parameters.
    ///
    /// Returns `(link, client_transport, surrogate_transport)`.
    pub fn pair(params: CommParams) -> (Link, Transport, Transport) {
        let (a_tx, b_rx) = unbounded();
        let (b_tx, a_rx) = unbounded();
        let a = Transport {
            tx: a_tx,
            rx: a_rx,
            stats: Arc::new(TrafficStats::default()),
        };
        let b = Transport {
            tx: b_tx,
            rx: b_rx,
            stats: Arc::new(TrafficStats::default()),
        };
        (
            Link {
                params,
                clock: Arc::new(NetClock::new()),
            },
            a,
            b,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn frames_cross_the_link_in_both_directions() {
        let (_, client, surrogate) = Link::pair(CommParams::WAVELAN);
        client.send(vec![1, 2, 3]).unwrap();
        assert_eq!(surrogate.recv().unwrap(), vec![1, 2, 3]);
        surrogate.send(vec![9]).unwrap();
        assert_eq!(client.recv().unwrap(), vec![9]);
    }

    #[test]
    fn stats_count_frames_and_bytes() {
        let (_, client, surrogate) = Link::pair(CommParams::WAVELAN);
        client.send(vec![0; 10]).unwrap();
        client.send(vec![0; 5]).unwrap();
        surrogate.recv().unwrap();
        surrogate.recv().unwrap();
        assert_eq!(client.stats().frames_sent(), 2);
        assert_eq!(client.stats().bytes_sent(), 15);
        assert_eq!(surrogate.stats().frames_received(), 2);
        assert_eq!(surrogate.stats().bytes_received(), 15);
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let (_, client, _surrogate) = Link::pair(CommParams::WAVELAN);
        let got = client.recv_timeout(Duration::from_millis(10)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn disconnection_is_reported() {
        let (_, client, surrogate) = Link::pair(CommParams::WAVELAN);
        drop(surrogate);
        assert_eq!(client.send(vec![1]), Err(LinkError::Disconnected));
        assert_eq!(client.recv(), Err(LinkError::Disconnected));
    }

    #[test]
    fn queued_frames_survive_peer_sender_drop() {
        let (_, client, surrogate) = Link::pair(CommParams::WAVELAN);
        client.send(vec![7]).unwrap();
        drop(client);
        // The queued frame is still deliverable.
        assert_eq!(surrogate.recv().unwrap(), vec![7]);
        assert_eq!(surrogate.recv(), Err(LinkError::Disconnected));
    }

    #[test]
    fn net_clock_accumulates() {
        let clock = NetClock::new();
        clock.add(0.5);
        clock.add(0.25);
        clock.note_round_trip();
        assert!((clock.seconds() - 0.75).abs() < 1e-12);
        assert_eq!(clock.round_trips(), 1);
    }
}
