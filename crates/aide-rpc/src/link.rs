//! Duplex RPC sessions and simulated link-time accounting.
//!
//! A [`Session`] is one end of a logical duplex frame channel between two
//! VMs. Sessions are produced by every backend behind the unified
//! [`Transport`](crate::transport::Transport) seam: in-memory channel pairs
//! ([`Link::pair`]), multiplexed TCP connections (`crate::tcp`), and the
//! emulated virtual-time link ([`Link::virtual_pair`]). The [`Link`] keeps
//! the shared [`NetClock`] that accumulates *simulated* communication
//! seconds according to [`CommParams`] — the paper's 11 Mbps / 2.4 ms RTT
//! WaveLAN model.

use std::sync::Arc;

use aide_graph::CommParams;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::mux::{MuxOut, KIND_CLOSE, KIND_DATA};
use crate::transport::BackendKind;
use crate::wire::Frame;

/// Accumulates simulated communication time for one client/surrogate pair.
///
/// Execution is serial across the distributed platform (the paper's
/// emulator assumption), so communication seconds add directly to the
/// application's completion time.
#[derive(Debug, Default)]
pub struct NetClock {
    seconds: Mutex<f64>,
    round_trips: Mutex<u64>,
}

impl NetClock {
    /// Creates a zeroed clock.
    pub fn new() -> Self {
        NetClock::default()
    }

    /// Adds `seconds` of simulated link time.
    pub fn add(&self, seconds: f64) {
        *self.seconds.lock() += seconds;
    }

    /// Notes one completed round trip.
    pub fn note_round_trip(&self) {
        *self.round_trips.lock() += 1;
    }

    /// Total simulated communication seconds so far.
    pub fn seconds(&self) -> f64 {
        *self.seconds.lock()
    }

    /// Total round trips so far.
    pub fn round_trips(&self) -> u64 {
        *self.round_trips.lock()
    }
}

/// Per-endpoint traffic counters (real frames, real bytes).
#[derive(Debug, Default)]
pub struct TrafficStats {
    frames_sent: Mutex<u64>,
    bytes_sent: Mutex<u64>,
    frames_received: Mutex<u64>,
    bytes_received: Mutex<u64>,
}

impl TrafficStats {
    /// Frames sent by this endpoint.
    pub fn frames_sent(&self) -> u64 {
        *self.frames_sent.lock()
    }

    /// Encoded bytes sent by this endpoint.
    pub fn bytes_sent(&self) -> u64 {
        *self.bytes_sent.lock()
    }

    /// Frames received by this endpoint.
    pub fn frames_received(&self) -> u64 {
        *self.frames_received.lock()
    }

    /// Encoded bytes received by this endpoint.
    pub fn bytes_received(&self) -> u64 {
        *self.bytes_received.lock()
    }

    fn note_sent(&self, bytes: usize) {
        *self.frames_sent.lock() += 1;
        *self.bytes_sent.lock() += bytes as u64;
    }

    fn note_received(&self, bytes: usize) {
        *self.frames_received.lock() += 1;
        *self.bytes_received.lock() += bytes as u64;
    }
}

/// Errors surfaced by a transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The peer hung up.
    Disconnected,
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::Disconnected => f.write_str("link disconnected"),
        }
    }
}

impl std::error::Error for LinkError {}

/// Virtual-time accounting attached to a session by the emulated backend:
/// every frame sent charges transmission time plus half the null RTT to a
/// link-level [`NetClock`], independently of the endpoint's per-call
/// simulated accounting.
#[derive(Debug)]
pub(crate) struct LinkCharge {
    clock: Arc<NetClock>,
    params: CommParams,
}

impl LinkCharge {
    pub(crate) fn new(clock: Arc<NetClock>, params: CommParams) -> Self {
        LinkCharge { clock, params }
    }

    fn charge(&self, bytes: usize) {
        let transmit = (bytes as f64) * 8.0 / self.params.bandwidth_bps;
        self.clock.add(transmit + self.params.rtt_seconds / 2.0);
    }
}

/// The outbound half of a session: either a dedicated channel (in-memory
/// and single-session carriers) or a share of a multiplexed connection's
/// writer, tagged with this session's id.
#[derive(Debug, Clone)]
enum SessionSender {
    Direct(Sender<Frame>),
    Mux { id: u32, tx: Sender<MuxOut> },
}

/// One end of a duplex logical frame channel — the single session
/// abstraction every transport backend produces.
#[derive(Debug, Clone)]
pub struct Session {
    tx: SessionSender,
    rx: Receiver<Frame>,
    stats: Arc<TrafficStats>,
    backend: BackendKind,
    charge: Option<Arc<LinkCharge>>,
}

impl Session {
    /// Assembles a session from raw channel halves (used by alternative
    /// carriers such as the TCP bridge and chaos wrappers).
    pub(crate) fn from_parts(
        tx: Sender<Frame>,
        rx: Receiver<Frame>,
        stats: Arc<TrafficStats>,
        backend: BackendKind,
    ) -> Self {
        Session {
            tx: SessionSender::Direct(tx),
            rx,
            stats,
            backend,
            charge: None,
        }
    }

    /// Assembles a session riding a multiplexed connection: outbound frames
    /// are tagged with `id` and funneled through the shared writer.
    pub(crate) fn mux_parts(
        id: u32,
        tx: Sender<MuxOut>,
        rx: Receiver<Frame>,
        backend: BackendKind,
    ) -> Self {
        Session {
            tx: SessionSender::Mux { id, tx },
            rx,
            stats: Arc::new(TrafficStats::default()),
            backend,
            charge: None,
        }
    }

    /// Attaches virtual-time charging: every sent frame adds transmission
    /// time at `params` rates plus half an RTT to `clock`.
    pub(crate) fn with_charge(mut self, clock: Arc<NetClock>, params: CommParams) -> Self {
        self.charge = Some(Arc::new(LinkCharge::new(clock, params)));
        self
    }

    /// The backend this session rides on.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Sends one encoded frame to the peer. Accepts anything convertible
    /// into a [`Frame`] (plain `Vec<u8>` or a pooled frame).
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::Disconnected`] if the peer's receiver is gone.
    pub fn send(&self, frame: impl Into<Frame>) -> Result<(), LinkError> {
        let frame = frame.into();
        self.stats.note_sent(frame.len());
        if let Some(charge) = &self.charge {
            charge.charge(frame.len());
        }
        match &self.tx {
            SessionSender::Direct(tx) => tx.send(frame).map_err(|_| LinkError::Disconnected),
            SessionSender::Mux { id, tx } => tx
                .send((*id, KIND_DATA, frame))
                .map_err(|_| LinkError::Disconnected),
        }
    }

    /// Tells the peer this logical session is finished. A no-op for
    /// dedicated channels (dropping the session is enough); on a
    /// multiplexed connection this releases the peer's per-session route
    /// without touching its sibling sessions.
    pub fn close(&self) {
        if let SessionSender::Mux { id, tx } = &self.tx {
            let _ = tx.send((*id, KIND_CLOSE, Frame::empty()));
        }
    }

    /// Receives the next frame, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::Disconnected`] when the peer hung up and the
    /// queue is drained.
    pub fn recv(&self) -> Result<Frame, LinkError> {
        let frame = self.rx.recv().map_err(|_| LinkError::Disconnected)?;
        self.stats.note_received(frame.len());
        Ok(frame)
    }

    /// Receives the next frame, or `Ok(None)` after `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::Disconnected`] when the peer hung up.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<Option<Frame>, LinkError> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => {
                self.stats.note_received(frame.len());
                Ok(Some(frame))
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(LinkError::Disconnected),
        }
    }

    /// This endpoint's traffic statistics.
    pub fn stats(&self) -> &Arc<TrafficStats> {
        &self.stats
    }

    /// Raw access to the incoming-frame channel, for select-based receive
    /// loops. Callers pulling frames off this channel directly must pair
    /// each one with [`Session::note_received`] so traffic statistics
    /// stay exact.
    pub(crate) fn incoming(&self) -> &Receiver<Frame> {
        &self.rx
    }

    /// Records one received frame in the traffic statistics (companion to
    /// [`Session::incoming`]).
    pub(crate) fn note_received(&self, bytes: usize) {
        self.stats.note_received(bytes);
    }
}

/// Builds a connected pair of direct (channel-backed) sessions.
pub(crate) fn session_pair(backend: BackendKind) -> (Session, Session) {
    let (a_tx, b_rx) = unbounded();
    let (b_tx, a_rx) = unbounded();
    let a = Session::from_parts(a_tx, a_rx, Arc::new(TrafficStats::default()), backend);
    let b = Session::from_parts(b_tx, b_rx, Arc::new(TrafficStats::default()), backend);
    (a, b)
}

/// A connected pair of sessions plus the shared link model.
#[derive(Debug)]
pub struct Link {
    /// Link parameters used for simulated timing.
    pub params: CommParams,
    /// Shared simulated communication clock.
    pub clock: Arc<NetClock>,
}

impl Link {
    /// Creates a connected in-memory session pair with the given link
    /// parameters.
    ///
    /// Returns `(link, client_session, surrogate_session)`.
    pub fn pair(params: CommParams) -> (Link, Session, Session) {
        let (a, b) = session_pair(BackendKind::InMemory);
        (
            Link {
                params,
                clock: Arc::new(NetClock::new()),
            },
            a,
            b,
        )
    }

    /// Creates a connected emulated session pair: same in-process channel
    /// carrier, but every frame sent charges transmission time at `params`
    /// rates (plus half an RTT) to a dedicated link-level [`NetClock`],
    /// reachable via [`Link::clock`] on the returned link.
    ///
    /// Returns `(link, client_session, surrogate_session)`.
    pub fn virtual_pair(params: CommParams) -> (Link, Session, Session) {
        let clock = Arc::new(NetClock::new());
        let (a, b) = session_pair(BackendKind::Emulated);
        let a = a.with_charge(Arc::clone(&clock), params);
        let b = b.with_charge(Arc::clone(&clock), params);
        (Link { params, clock }, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn frames_cross_the_link_in_both_directions() {
        let (_, client, surrogate) = Link::pair(CommParams::WAVELAN);
        client.send(vec![1, 2, 3]).unwrap();
        assert_eq!(surrogate.recv().unwrap(), vec![1, 2, 3]);
        surrogate.send(vec![9]).unwrap();
        assert_eq!(client.recv().unwrap(), vec![9]);
    }

    #[test]
    fn stats_count_frames_and_bytes() {
        let (_, client, surrogate) = Link::pair(CommParams::WAVELAN);
        client.send(vec![0; 10]).unwrap();
        client.send(vec![0; 5]).unwrap();
        surrogate.recv().unwrap();
        surrogate.recv().unwrap();
        assert_eq!(client.stats().frames_sent(), 2);
        assert_eq!(client.stats().bytes_sent(), 15);
        assert_eq!(surrogate.stats().frames_received(), 2);
        assert_eq!(surrogate.stats().bytes_received(), 15);
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let (_, client, _surrogate) = Link::pair(CommParams::WAVELAN);
        let got = client.recv_timeout(Duration::from_millis(10)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn disconnection_is_reported() {
        let (_, client, surrogate) = Link::pair(CommParams::WAVELAN);
        drop(surrogate);
        assert_eq!(client.send(vec![1]), Err(LinkError::Disconnected));
        assert_eq!(client.recv(), Err(LinkError::Disconnected));
    }

    #[test]
    fn queued_frames_survive_peer_sender_drop() {
        let (_, client, surrogate) = Link::pair(CommParams::WAVELAN);
        client.send(vec![7]).unwrap();
        drop(client);
        // The queued frame is still deliverable.
        assert_eq!(surrogate.recv().unwrap(), vec![7]);
        assert_eq!(surrogate.recv(), Err(LinkError::Disconnected));
    }

    #[test]
    fn net_clock_accumulates() {
        let clock = NetClock::new();
        clock.add(0.5);
        clock.add(0.25);
        clock.note_round_trip();
        assert!((clock.seconds() - 0.75).abs() < 1e-12);
        assert_eq!(clock.round_trips(), 1);
    }
}
