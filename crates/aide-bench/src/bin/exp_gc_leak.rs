//! GC leak experiment: what pin-forever bookkeeping strands when release
//! messages die with their sender, and what the lease/epoch machinery
//! pays to guarantee it strands nothing.
//!
//! For each release-loss rate the same export workload runs twice over
//! the export-table machinery:
//!
//! * **pin-forever** — the pre-lease discipline: an export stays pinned
//!   until an explicit release arrives. Lost releases leak permanently.
//! * **lease** — every export carries a TTL'd lease; whatever the lost
//!   releases strand is reclaimed by the expiry sweep after one TTL of
//!   silence.
//!
//! The third axis is the renewal tax: the lease stamp every ordinary
//! frame carries, measured as real encoded bytes per frame. Results land
//! in `BENCH_gc.json` (JSON lines) for CI to archive and gate on — the
//! `lease_leaked_total` field must be zero.

use std::sync::Arc;
use std::time::Instant;

use aide_bench::{header, row};
use aide_rpc::{ExportTable, GcClock, Message, Request};
use aide_vm::ObjectId;

/// Exports per sweep point.
const OBJECTS: u64 = 500;

/// Lease TTL for the lease-mode runs, in clock milliseconds.
const TTL_MS: u64 = 30_000;

struct Point {
    label: String,
    loss: f64,
    pin_forever_leaked: usize,
    lease_leaked: usize,
    reclaim_latency_ms: u64,
    sweep_wall_micros: u64,
}

/// Exports `OBJECTS` ids, loses `loss` of the releases, and counts what
/// each discipline strands. Lost releases are chosen deterministically
/// (every k-th) so the sweep is reproducible.
fn run_point(loss: f64) -> Point {
    let lost = |i: u64| (i as f64 * loss).fract() + loss >= 1.0 || loss >= 1.0;

    // Pin-forever: no clock, no sweep — lost releases strand pins.
    let forever = ExportTable::new();
    for i in 0..OBJECTS {
        forever.export(ObjectId::client(i));
    }
    let mut seq = 0;
    for i in 0..OBJECTS {
        if !lost(i) {
            seq += 1;
            forever.release_batch(0, seq, &[ObjectId::client(i)]);
        }
    }
    let pin_forever_leaked = forever.len();

    // Lease: identical traffic, then one TTL of silence and a sweep.
    let clock = Arc::new(GcClock::new());
    let lease = ExportTable::with_clock(clock.clone());
    lease.set_ttl_ms(TTL_MS);
    for i in 0..OBJECTS {
        lease.export(ObjectId::client(i));
    }
    let mut seq = 0;
    for i in 0..OBJECTS {
        if !lost(i) {
            seq += 1;
            lease.release_batch(0, seq, &[ObjectId::client(i)]);
        }
    }
    let stranded = lease.len();
    clock.advance_ms(TTL_MS + 1);
    let sweep_started = Instant::now();
    let reclaimed = lease.sweep_expired();
    let sweep_wall_micros = u64::try_from(sweep_started.elapsed().as_micros()).unwrap_or(u64::MAX);
    assert_eq!(
        reclaimed.len(),
        stranded,
        "the sweep reclaims exactly what the lost releases stranded"
    );

    Point {
        label: format!("loss {:.0}%", loss * 100.0),
        loss,
        pin_forever_leaked,
        lease_leaked: lease.len(),
        reclaim_latency_ms: TTL_MS + 1,
        sweep_wall_micros,
    }
}

/// Real wire bytes the lease stamp adds to an ordinary request frame.
fn renewal_overhead_bytes() -> usize {
    let msg = Message::Request {
        seq: 1,
        client: 7,
        body: Request::Ping,
    };
    let bare = msg.encode_pooled_stamped(None);
    let stamped = msg.encode_pooled_stamped(Some(42));
    stamped.len() - bare.len()
}

fn main() {
    header(
        "gc leak: stranded exports, pin-forever vs lease/epoch",
        "distributed GC hardening; not a paper figure — the paper pinned forever",
    );

    let mut points = Vec::new();
    for loss in [0.0, 0.1, 0.25, 0.5, 1.0] {
        points.push(run_point(loss));
    }
    let overhead = renewal_overhead_bytes();

    for p in &points {
        row(
            &p.label,
            format!(
                "pin-forever leaks {} / {OBJECTS}, lease leaks {} \
                 (reclaimed in {} ms of lease time, sweep {} us)",
                p.pin_forever_leaked, p.lease_leaked, p.reclaim_latency_ms, p.sweep_wall_micros,
            ),
        );
    }
    row(
        "renewal overhead",
        format!("{overhead} bytes per stamped frame"),
    );

    let lease_leaked_total: usize = points.iter().map(|p| p.lease_leaked).sum();
    let pin_forever_leaked_total: usize = points.iter().map(|p| p.pin_forever_leaked).sum();
    row(
        "verdict",
        format!(
            "pin-forever strands {} objects across the sweep, lease strands {} \
             ({})",
            pin_forever_leaked_total,
            lease_leaked_total,
            if lease_leaked_total == 0 {
                "zero-leak"
            } else {
                "LEAK"
            },
        ),
    );

    let mut artifact = serde_json::json!({
        "kind": "summary",
        "experiment": "gc_leak",
        "objects_per_point": OBJECTS,
        "lease_ttl_ms": TTL_MS,
        "renewal_overhead_bytes_per_frame": overhead,
        "pin_forever_leaked_total": pin_forever_leaked_total,
        "lease_leaked_total": lease_leaked_total,
    })
    .to_string();
    artifact.push('\n');
    for p in &points {
        artifact.push_str(
            &serde_json::json!({
                "kind": "point",
                "label": p.label,
                "release_loss": p.loss,
                "pin_forever_leaked": p.pin_forever_leaked,
                "lease_leaked": p.lease_leaked,
                "reclaim_latency_ms": p.reclaim_latency_ms,
                "sweep_wall_micros": p.sweep_wall_micros,
            })
            .to_string(),
        );
        artifact.push('\n');
    }
    let path = "BENCH_gc.json";
    match std::fs::write(path, artifact) {
        Ok(()) => row("artifact", path),
        Err(e) => row("artifact", format!("write failed: {e}")),
    }

    assert_eq!(lease_leaked_total, 0, "lease mode must never leak");
}
