//! Table 2: execution metrics for JavaNote, gathered by the monitoring
//! module while the application runs to completion on the (prototype)
//! distributed platform with an unconstrained heap.

use aide_apps::javanote;
use aide_bench::{experiment_scale, header, row};
use aide_core::{Platform, PlatformConfig};

fn main() {
    header(
        "Table 2: execution metrics for JavaNote",
        "Table 2; paper: classes 134/138/138, objects 1230/2810/6808, \
         interactions 1126/1190/1,186,532",
    );
    let app = javanote(experiment_scale());
    let mut cfg = PlatformConfig::prototype(64 << 20); // unconstrained
    cfg.max_offloads = 0;
    let report = Platform::new(app.program, cfg).run();
    report.outcome.as_ref().expect("JavaNote completes");

    let m = report.metrics;
    println!(
        "{:<16} {:>10} {:>10} {:>14}",
        "", "average", "maximum", "total events"
    );
    println!(
        "{:<16} {:>10.0} {:>10} {:>14}",
        "classes", m.classes_avg, m.classes_max, m.classes_total
    );
    println!(
        "{:<16} {:>10.0} {:>10} {:>14}",
        "objects", m.objects_avg, m.objects_max, m.objects_total
    );
    println!(
        "{:<16} {:>10.0} {:>10} {:>14}",
        "interactions", m.links_avg, m.links_max, m.interaction_events
    );
    println!();
    row("invocation events", m.invocation_events);
    row("field-access events", m.field_access_events);
    row(
        "invocation/access split",
        format!(
            "{:.0}% / {:.0}%",
            100.0 * m.invocation_events as f64 / m.interaction_events as f64,
            100.0 * m.field_access_events as f64 / m.interaction_events as f64
        ),
    );
    row(
        "execution-graph storage",
        format!("{} KB", m.graph_storage_bytes / 1024),
    );
    row("GC cycles sampled", m.samples);
    println!("\npaper: the 1.2M interaction events are almost evenly divided between");
    println!("invocations and accesses, and the graph occupies little storage.");
}
