//! Fleet-scale serving experiment: one process, one sharded daemon,
//! thousands of concurrent multiplexed sessions — plus the fleet-level
//! qualities the soak gates on, measured as numbers.
//!
//! Three phases, all over real TCP:
//!
//! 1. **Session scale** — a small client-thread pool drives raw mux
//!    sessions (encoded frames, no per-session endpoint machinery)
//!    against one sharded daemon, holding every session open at once.
//!    The thread-per-carrier daemon of earlier revisions died here; the
//!    sharded pool must hold ≥ 5 000 live sessions and keep serving.
//! 2. **Migration latency** — platform clients offload against a
//!    three-daemon fleet; every migration's wall-clock duration feeds a
//!    p99.
//! 3. **Placement fairness + relay drain** — load-aware placement picks
//!    a daemon per arriving session from scraped `STATS` load, and a
//!    relay queue flushes a parked backlog into the fleet. Jain fairness
//!    of the resulting spread and the relay's expiry counter are the CI
//!    gates (fairness ≥ 0.8, `relay_expired_total == 0`).
//!
//! Results land in `BENCH_fleet.json` (JSON lines) for CI to archive.

use std::sync::Arc;
use std::time::{Duration, Instant};

use aide_bench::{header, row};
use aide_core::{
    BackoffConfig, FailoverConfig, Platform, PlatformConfig, RelayShipment, RelaySink,
};
use aide_graph::CommParams;
use aide_rpc::{
    Dispatcher, Endpoint, EndpointConfig, Message, NetClock, Reply, Request, TcpTransport,
    Transport,
};
use aide_surrogate::{
    DaemonConfig, RegistryConfig, RelayConfig, RelayQueue, ShardConfig, SurrogateDaemon,
    SurrogateRegistry,
};
use aide_vm::{
    ClassId, GcConfig, MethodDef, MethodId, ObjectId, ObjectRecord, Op, Program, ProgramBuilder,
    Reg,
};

/// Concurrent mux sessions the scale phase must sustain on one daemon.
const SESSIONS: usize = 5_000;
/// Client threads (and TCP carriers) driving them.
const THREADS: usize = 8;
/// Ping rounds per session in the scale phase.
const ROUNDS: u64 = 2;
/// Platform clients in the migration-latency phase.
const CLIENTS: usize = 4;
/// Sessions placed in the fairness phase.
const PLACEMENTS: usize = 24;
/// Shipments pushed through the relay drain.
const RELAY_SHIPMENTS: usize = 100;

const DOC_BYTES: u32 = 4_000;
const HEAP: u64 = 256 * 1024;

fn tiny_program() -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    b.add_method(main, MethodDef::new("main", vec![Op::Work { micros: 10 }]));
    Arc::new(b.build(main, MethodId(0), 64, 4).unwrap())
}

/// The failover suite's document-store pressure workload, compacted.
fn doc_store_program() -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let main = b.add_native_class("Main");
    let doc = b.add_class("Doc");
    let mut ops = Vec::new();
    for i in 0..100u16 {
        ops.push(Op::New {
            class: doc,
            scalar_bytes: DOC_BYTES,
            ref_slots: 0,
            dst: Reg(1),
        });
        ops.push(Op::PutSlot {
            slot: i,
            src: Reg(1),
        });
        ops.push(Op::Work { micros: 20 });
        if i % 8 == 0 {
            ops.push(Op::GetSlot {
                slot: i,
                dst: Reg(2),
            });
            ops.push(Op::Read {
                obj: Reg(2),
                bytes: 64,
            });
        }
    }
    b.add_method(main, MethodDef::new("main", ops));
    Arc::new(b.build(main, MethodId(0), 64, 100).unwrap())
}

struct NullDispatcher;

impl Dispatcher for NullDispatcher {
    fn dispatch(&self, _request: Request) -> Result<Reply, String> {
        Ok(Reply::Unit)
    }
}

/// Phase 1: raw mux sessions at scale. Returns (sessions held live at
/// once on the daemon, ping throughput over all sessions).
fn session_scale() -> (usize, f64) {
    let daemon = SurrogateDaemon::start(DaemonConfig::new("scale", tiny_program()).sharded(
        ShardConfig {
            shards: 8,
            max_sessions: 16_384,
            busy_retry_ms: 25,
            dedup_capacity: 8,
        },
    ))
    .expect("start scale daemon");
    let addr = daemon.local_addr();
    let per_thread = SESSIONS / THREADS;

    let started = Instant::now();
    let drivers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                // One carrier per thread; sessions are logical channels on
                // it. No Endpoint machinery: a session here is two buffers
                // and a mux id, which is what makes 5k of them cheap.
                let transport =
                    TcpTransport::connect(addr, Duration::from_secs(5)).expect("connect carrier");
                let sessions: Vec<_> = (0..per_thread)
                    .map(|_| transport.open_session().expect("open mux session"))
                    .collect();
                for round in 1..=ROUNDS {
                    // Fan every request out before reading any reply: the
                    // whole cohort is in flight at once.
                    for (i, session) in sessions.iter().enumerate() {
                        let frame = Message::Request {
                            seq: round,
                            client: (t * per_thread + i) as u64,
                            body: Request::Ping,
                        }
                        .encode_pooled();
                        session.send(frame.to_vec()).expect("send ping");
                    }
                    for session in &sessions {
                        let frame = session.recv().expect("recv reply");
                        match Message::decode(&frame).expect("decode reply") {
                            Message::Reply {
                                result: Ok(Reply::Unit),
                                ..
                            } => {}
                            other => panic!("unexpected reply: {other:?}"),
                        }
                    }
                }
                (transport, sessions)
            })
        })
        .collect();

    let carriers: Vec<_> = drivers
        .into_iter()
        .map(|d| d.join().expect("driver thread"))
        .collect();
    let elapsed = started.elapsed();
    // Every session has been served at least once and none has closed:
    // the pool is holding the whole cohort live right now.
    let live_peak = daemon.live_sessions();
    let throughput = (SESSIONS as u64 * ROUNDS) as f64 / elapsed.as_secs_f64();

    for (transport, sessions) in carriers {
        for session in &sessions {
            session.close();
        }
        drop(sessions);
        transport.killer().kill();
    }
    daemon.shutdown();
    (live_peak, throughput)
}

/// Phase 2: platform clients offloading against a three-daemon fleet;
/// returns every migration's wall-clock duration in microseconds.
fn migration_latencies() -> Vec<u64> {
    let program = doc_store_program();
    let daemons: Vec<_> = ["m0", "m1", "m2"]
        .iter()
        .map(|name| {
            SurrogateDaemon::start(
                DaemonConfig::new(name, program.clone()).sharded(ShardConfig::default()),
            )
            .expect("start fleet daemon")
        })
        .collect();
    let addrs: Vec<_> = daemons.iter().map(|d| d.local_addr()).collect();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let program = program.clone();
            let addrs = addrs.clone();
            std::thread::spawn(move || {
                let registry = Arc::new(SurrogateRegistry::new(RegistryConfig::default()));
                for (i, addr) in addrs.iter().enumerate() {
                    registry.add_static(&format!("m{i}"), *addr, 64 << 20);
                }
                registry.probe_all();
                registry.refresh_load();
                let mut cfg = PlatformConfig::prototype(HEAP);
                cfg.gc = GcConfig {
                    trigger_alloc_count: 8,
                    trigger_alloc_bytes: 64 * 1024,
                    cost_micros_per_object: 0.05,
                };
                Platform::with_surrogates(program, cfg, registry)
                    .with_failover_config(FailoverConfig {
                        heartbeat_interval: Duration::from_millis(50),
                        probe_timeout: Duration::from_millis(250),
                        backoff: BackoffConfig {
                            base: Duration::ZERO,
                            factor: 2.0,
                            max: Duration::ZERO,
                            jitter: 0.0,
                            seed: 1,
                        },
                    })
                    .run()
            })
        })
        .collect();

    let mut latencies = Vec::new();
    for handle in handles {
        let report = handle.join().expect("client thread");
        assert!(
            report.outcome.is_ok(),
            "fleet client failed: {:?}",
            report.outcome
        );
        latencies.extend(report.offloads.iter().map(|o| o.outcome.duration_micros));
    }
    for daemon in daemons {
        daemon.shutdown();
    }
    latencies
}

/// Phase 3a: place `PLACEMENTS` arriving sessions by scraped load;
/// returns per-daemon session counts.
fn placement_spread() -> Vec<u64> {
    let names = ["f0", "f1", "f2"];
    let daemons: Vec<_> = names
        .iter()
        .map(|name| {
            SurrogateDaemon::start(
                DaemonConfig::new(name, tiny_program()).sharded(ShardConfig {
                    shards: 2,
                    max_sessions: 64,
                    busy_retry_ms: 25,
                    dedup_capacity: 8,
                }),
            )
            .expect("start fairness daemon")
        })
        .collect();

    let registry = SurrogateRegistry::new(RegistryConfig::default());
    for (name, daemon) in names.iter().zip(&daemons) {
        registry.add_static(name, daemon.local_addr(), 64 << 20);
    }

    let mut counts = vec![0u64; daemons.len()];
    let mut held = Vec::new();
    for _ in 0..PLACEMENTS {
        // Scrape fresh load, pick the best-placed daemon, and park one
        // session on it — the reply round trip guarantees the daemon has
        // admitted the session before the next scrape.
        registry.refresh_load();
        let pick = registry.placement().first().expect("live daemon").clone();
        let index = names
            .iter()
            .position(|name| *name == pick.name)
            .expect("picked a known daemon");
        let transport = TcpTransport::connect(pick.addr, Duration::from_secs(5)).expect("connect");
        let session = transport.open_session().expect("open session");
        session
            .send(
                Message::Request {
                    seq: 1,
                    client: counts[index],
                    body: Request::Ping,
                }
                .encode_pooled()
                .to_vec(),
            )
            .expect("send ping");
        let frame = session.recv().expect("recv reply");
        Message::decode(&frame).expect("decode reply");
        counts[index] += 1;
        held.push((transport, session));
    }

    for (transport, session) in held {
        session.close();
        transport.killer().kill();
    }
    for daemon in daemons {
        daemon.shutdown();
    }
    counts
}

/// Phase 3b: flush a parked relay backlog into a daemon; returns the
/// queue's (relayed, expired) lifetime counters.
fn relay_drain() -> (u64, u64) {
    let daemon = SurrogateDaemon::start(
        DaemonConfig::new("relay-target", tiny_program()).sharded(ShardConfig::default()),
    )
    .expect("start relay target");
    let queue = RelayQueue::new(RelayConfig {
        ttl_ms: 60 * 60 * 1000,
        max_depth: RELAY_SHIPMENTS + 1,
    });
    for i in 0..RELAY_SHIPMENTS as u64 {
        queue
            .queue(RelayShipment {
                txn: 0,
                objects: vec![(ObjectId::client(i), ObjectRecord::new(ClassId(1), 256, 0))],
                pins: Vec::new(),
                bytes: 256,
                queued_for_ms: 0,
            })
            .expect("queue under max_depth");
    }

    let transport =
        TcpTransport::connect(daemon.local_addr(), Duration::from_secs(5)).expect("connect");
    let session = transport.open_session().expect("open session");
    let endpoint = Endpoint::start(
        session,
        CommParams::WAVELAN,
        Arc::new(NetClock::new()),
        Arc::new(NullDispatcher),
        EndpointConfig {
            workers: 2,
            ..EndpointConfig::default()
        },
    );
    let delivered = queue.flush(&endpoint);
    assert_eq!(delivered.len(), RELAY_SHIPMENTS, "the backlog fully drains");
    endpoint.shutdown();
    endpoint.join();
    transport.killer().kill();
    daemon.shutdown();

    let stats = queue.stats();
    (stats.relayed_total, stats.expired_total)
}

/// Jain's fairness index: (Σx)² / (n·Σx²); 1.0 is a perfect spread.
fn jain(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().map(|&x| x as f64).sum();
    let sq: f64 = xs.iter().map(|&x| (x as f64) * (x as f64)).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq)
}

fn p99(latencies: &mut [u64]) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    latencies.sort_unstable();
    let rank = ((latencies.len() as f64) * 0.99).ceil() as usize;
    latencies[rank.saturating_sub(1).min(latencies.len() - 1)]
}

fn main() {
    header(
        "fleet-scale serving: mux sessions, migration p99, placement fairness",
        "fleet hardening; not a paper figure — the paper ran one client against one surrogate",
    );

    let (live_peak, sessions_per_sec) = session_scale();
    row(
        "session scale",
        format!("{live_peak} sessions live at once on one sharded daemon, {sessions_per_sec:.0} pings/s"),
    );
    assert!(
        live_peak >= SESSIONS,
        "the pool must hold the whole cohort: {live_peak} < {SESSIONS}"
    );

    let mut latencies = migration_latencies();
    let p99_migration = p99(&mut latencies);
    row(
        "migration latency",
        format!("{} migrations, p99 {} us", latencies.len(), p99_migration),
    );
    assert!(!latencies.is_empty(), "the fleet clients must offload");

    let spread = placement_spread();
    let fairness = jain(&spread);
    row(
        "placement fairness",
        format!("{spread:?} sessions per daemon, Jain {fairness:.3}"),
    );

    let (relay_relayed, relay_expired) = relay_drain();
    row(
        "relay drain",
        format!("{relay_relayed} shipments delivered, {relay_expired} expired"),
    );

    let artifact = format!(
        "{}\n",
        serde_json::json!({
            "kind": "summary",
            "experiment": "fleet_soak",
            "concurrent_sessions": live_peak,
            "sessions_per_sec": sessions_per_sec,
            "migrations_measured": latencies.len(),
            "p99_migration_latency_micros": p99_migration,
            "placement_spread": spread,
            "jain_fairness": fairness,
            "relay_relayed_total": relay_relayed,
            "relay_expired_total": relay_expired,
        })
    );
    let path = "BENCH_fleet.json";
    match std::fs::write(path, artifact) {
        Ok(()) => row("artifact", path),
        Err(e) => row("artifact", format!("write failed: {e}")),
    }

    assert!(
        fairness >= 0.8,
        "load-aware placement must spread the fleet: Jain {fairness:.3} < 0.8"
    );
    assert_eq!(relay_expired, 0, "nothing may expire in the drain");
}
