//! Tracing tax and critical-path attribution.
//!
//! Two questions, one binary:
//!
//! 1. **What does causal tracing cost?** A chaos-soaked JavaNote rescue
//!    over the real TCP multiplexer is run twice — `aide_trace` globally
//!    off, then on — and the wall-clock difference is compared against a
//!    budget (`AIDE_TRACE_BUDGET_PCT`, default generous; negative
//!    disables). The assert exists to catch structural regressions (a
//!    lock or allocation sneaking onto the span hot path), not scheduler
//!    noise.
//!
//! 2. **Where does migration latency go?** The traced run's span forest
//!    is fed to the critical-path analyzer; every migration is decomposed
//!    into serialize / wire / retry / remote instantiate / commit and
//!    emitted as JSON lines in `BENCH_trace.json`. The raw span forest is
//!    also exported as Chrome trace-event JSON under `target/trace/` so a
//!    failing CI run leaves a Perfetto-loadable artifact behind.

use std::time::{Duration, Instant};

use aide_apps::javanote;
use aide_bench::{experiment_scale, header, pct, row};
use aide_core::{Platform, PlatformConfig, PlatformReport, TransportKind};
use aide_rpc::ChaosSchedule;
use aide_trace::{breakdown_json, chrome_trace, critical_path};

/// Default ceiling on the wall-clock overhead tracing may add, percent.
const DEFAULT_TRACE_BUDGET_PCT: f64 = 50.0;

/// The measured scenario: a memory-pressure rescue over real TCP with a
/// mildly hostile link, so the span forest contains retries, backoff and
/// dedup hits — everything the attribution pass must classify.
fn traced_config() -> PlatformConfig {
    let mut cfg = PlatformConfig::prototype(320 << 10);
    cfg.transport = TransportKind::Tcp;
    let mut chaos = ChaosSchedule::seeded(42);
    chaos.drop = 0.05;
    chaos.delay = 0.10;
    chaos.max_delay = Duration::from_millis(3);
    chaos.duplicate = 0.05;
    cfg.chaos = Some(chaos);
    cfg
}

fn timed_run(scale: aide_apps::Scale) -> (PlatformReport, f64) {
    let started = Instant::now();
    let report = Platform::new(javanote(scale).program, traced_config()).run();
    let wall = started.elapsed().as_secs_f64();
    report.outcome.as_ref().expect("the rescue completes");
    (report, wall)
}

fn main() {
    header(
        "tracing tax (chaos TCP rescue, aide-trace off vs on)",
        "this repo's causal-tracing layer; wall-clock, not virtual, time",
    );
    let scale = experiment_scale();

    // Warm-up so neither measured run pays first-touch costs.
    let _ = timed_run(scale);
    aide_trace::drain();

    aide_trace::set_enabled(false);
    let (_, wall_disabled) = timed_run(scale);

    aide_trace::set_enabled(true);
    aide_trace::drain();
    let (report, wall_enabled) = timed_run(scale);
    let spans = aide_trace::drain();

    assert!(report.offloaded(), "the scenario must migrate");
    let overhead = wall_enabled / wall_disabled - 1.0;

    row(
        "wall clock, tracing disabled",
        format!("{wall_disabled:.3}s"),
    );
    row("wall clock, tracing enabled", format!("{wall_enabled:.3}s"));
    row("tracing overhead", pct(overhead));
    row("spans recorded", spans.len());
    row("spans dropped (overflow)", aide_trace::dropped_total());

    println!();
    header(
        "critical-path attribution (per committed migration)",
        "serialize / wire / retry / instantiate / commit, microseconds",
    );
    let breakdowns = critical_path(&spans);
    assert!(
        !breakdowns.is_empty(),
        "a migrating run must yield at least one migration breakdown"
    );
    for b in &breakdowns {
        row(
            &format!("migration {:#x}", b.trace_id),
            format!(
                "total={} serialize={} wire={} retry={} instantiate={} \
                 commit={} unattributed={}",
                b.total_micros,
                b.serialize_micros,
                b.wire_micros,
                b.retry_micros,
                b.instantiate_micros,
                b.commit_micros,
                b.unattributed_micros,
            ),
        );
    }

    let mut artifact = serde_json::json!({
        "kind": "summary",
        "experiment": "trace_overhead",
        "wall_disabled_seconds": wall_disabled,
        "wall_enabled_seconds": wall_enabled,
        "tracing_overhead": overhead,
        "spans_recorded": spans.len(),
        "spans_dropped": aide_trace::dropped_total(),
        "migrations": breakdowns.len(),
    })
    .to_string();
    artifact.push('\n');
    artifact.push_str(&breakdown_json(&breakdowns));
    let path = "BENCH_trace.json";
    match std::fs::write(path, artifact) {
        Ok(()) => row("artifact", path),
        Err(e) => row("artifact", format!("write failed: {e}")),
    }

    // The raw forest, loadable in Perfetto / chrome://tracing.
    let sample = "target/trace/exp_trace_overhead.trace.json";
    let written = std::fs::create_dir_all("target/trace")
        .and_then(|()| std::fs::write(sample, chrome_trace(&spans)));
    match written {
        Ok(()) => row("perfetto sample", sample),
        Err(e) => row("perfetto sample", format!("write failed: {e}")),
    }

    let budget_pct = std::env::var("AIDE_TRACE_BUDGET_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_TRACE_BUDGET_PCT);
    if budget_pct >= 0.0 {
        row("budget", format!("{budget_pct:.1}%"));
        assert!(
            overhead * 100.0 <= budget_pct,
            "tracing overhead {} exceeds budget {budget_pct:.1}% \
             (set AIDE_TRACE_BUDGET_PCT to adjust)",
            pct(overhead),
        );
    } else {
        row("budget", "disabled");
    }
}
