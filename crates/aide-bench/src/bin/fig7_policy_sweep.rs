//! Figure 7: effect of the triggering and partitioning policies on the
//! remote-execution overhead. Sweeps the paper's grid — trigger threshold
//! 2%..50% free, tolerance 1..3 reports, minimum memory freed 10%..80% —
//! and compares the best policy against the initial one.

use aide_apps::memory_apps;
use aide_bench::{experiment_scale, header, pct, record_app, replay_memory_initial, PAPER_HEAP};
use aide_emu::{best_point, sweep_memory_policies, EmulatorConfig, PolicyGrid};

fn main() {
    header(
        "Figure 7: policy sweep (trigger 2-50% free, tolerance 1-3, min-free 10-80%)",
        "Figure 7; paper: Dia/Biomer improve 30-43% with the best policy, JavaNote stays",
    );
    let grid = PolicyGrid::default();
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}  {:<24}",
        "App", "Initial", "Best", "Worst", "Reduction", "Best policy"
    );
    for app in memory_apps(experiment_scale()) {
        let trace = record_app(&app);
        let initial = replay_memory_initial(&trace);
        let points = sweep_memory_policies(&trace, EmulatorConfig::paper_memory(PAPER_HEAP), &grid);
        let best = best_point(&points).expect("at least one policy completes");
        let worst = points
            .iter()
            .filter(|p| p.report.completed && p.report.offloaded())
            .map(|p| p.report.overhead_fraction())
            .fold(f64::MIN, f64::max);
        let init_oh = initial.overhead_fraction();
        let best_oh = best.report.overhead_fraction();
        let reduction = if init_oh > 0.0 {
            1.0 - best_oh / init_oh
        } else {
            0.0
        };
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>10}  {:<24}",
            app.name,
            pct(init_oh),
            pct(best_oh),
            pct(worst),
            pct(reduction),
            best.params.to_string(),
        );
    }
    println!("\npaper lesson: the system must select among policies dynamically —");
    println!("the best parameters differ per application.");
}
