//! §5.1 "Avoiding Memory Constraints": JavaNote on the *prototype*
//! (two real VMs over the RPC link) with a 6 MB client heap.
//!
//! Without the platform, the application dies with an out-of-memory
//! error; with it, the low-memory trigger fires, the modified-MINCUT
//! partitioning offloads the text model to the surrogate (~90% of the
//! heap, paper Figure 5b), and execution continues. Also regenerates the
//! Figure 5 execution graphs as DOT files.

use aide_apps::javanote;
use aide_bench::{experiment_scale, header, pct, row};
use aide_core::{Platform, PlatformConfig};
use aide_graph::to_dot;
use aide_vm::VmError;

fn main() {
    header(
        "§5.1 avoiding memory constraints (prototype, 6 MB heap)",
        "§5.1 + Figure 5; paper: unmodified VM fails OOM; platform offloads ~90% \
         of the heap in ~0.1s and continues; predicted cut bandwidth ~100 KB/s",
    );
    let scale = experiment_scale();

    // (a) Unmodified VM: monitoring and offloading disabled.
    let mut plain = PlatformConfig::prototype(6 << 20);
    plain.monitoring = false;
    let report = Platform::new(javanote(scale).program, plain).run();
    match &report.outcome {
        Err(VmError::OutOfMemory {
            requested, free, ..
        }) => row(
            "unmodified VM",
            format!("OUT OF MEMORY (requested {requested} B, {free} B free)"),
        ),
        other => panic!("expected OOM without the platform, got {other:?}"),
    }

    // (b) The distributed platform.
    let cfg = PlatformConfig::prototype(6 << 20);
    let report = Platform::new(javanote(scale).program, cfg).run();
    report.outcome.as_ref().expect("platform rescues JavaNote");
    assert!(report.offloaded());
    let event = &report.offloads[0];

    row("platform", "application COMPLETED after offloading");
    row("trigger", "3 successive GC cycles under 5% free");
    row("offload at client GC cycle", event.at_gc_cycle);
    row(
        "graph nodes / candidates",
        format!(
            "{} / {}",
            event.graph.node_count(),
            event.candidates_evaluated
        ),
    );
    row(
        "partitioning computation",
        format!("{:?}", event.partition_elapsed),
    );
    row("objects moved", event.outcome.objects_moved);
    row(
        "heap offloaded",
        format!(
            "{} ({} of graph-tracked memory)",
            event.outcome.bytes_moved,
            pct(event.offloaded_memory_fraction)
        ),
    );
    let bandwidth = event.cut_bytes as f64 / report.total_seconds();
    row(
        "historical cut traffic",
        format!(
            "{} B over the run ({:.2} KB/s; paper predicted ~100 KB/s              for its shorter, hotter session)",
            event.cut_bytes,
            bandwidth / 1e3
        ),
    );
    row(
        "remote interactions after offload",
        report.remote_stats.remote_interactions,
    );
    row(
        "surrogate RPC requests served",
        report.surrogate_requests_served,
    );

    // Figure 5: DOT exports.
    let dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(dir).expect("create target/experiments");
    let fig5a = to_dot(&event.graph, None);
    let fig5b = to_dot(&event.graph, Some(&event.partitioning));
    std::fs::write(dir.join("fig5a.dot"), fig5a).expect("write fig5a");
    std::fs::write(dir.join("fig5b.dot"), fig5b).expect("write fig5b");
    row("Figure 5 graphs", "target/experiments/fig5a.dot, fig5b.dot");
}
