//! Figure 8: comparison of remote native-method invocations to total
//! remote invocations, for the memory-experiment traces.

use aide_apps::memory_apps;
use aide_bench::{experiment_scale, header, pct, record_app, replay_memory_initial};

fn main() {
    header(
        "Figure 8: remote native calls vs total remote invocations",
        "Figure 8; paper: large native share for JavaNote/Dia, small for Biomer's model chatter",
    );
    println!(
        "{:<10} {:>16} {:>20} {:>10}",
        "App", "Total remote", "Leading to natives", "Share"
    );
    for app in memory_apps(experiment_scale()) {
        let trace = record_app(&app);
        let report = replay_memory_initial(&trace);
        let total = report.remote.remote_invocations;
        let native = report.remote.remote_native_calls;
        println!(
            "{:<10} {:>16} {:>20} {:>10}",
            app.name,
            total,
            native,
            pct(if total == 0 {
                0.0
            } else {
                native as f64 / total as f64
            })
        );
    }
    println!(
        "\nnote: many of these natives are stateless (string copies, math) and\n\
         could run where invoked — the observation behind the paper's Native\n\
         enhancement (see fig10_cpu_offload)."
    );
}
