//! RPC transport throughput: what the unified transport layer's two
//! optimisations buy. The same workload — several concurrent sessions,
//! each completing a fixed count of RPC round trips over real localhost
//! TCP — runs four ways: frame-buffer pooling on or off, crossed with
//! session multiplexing (all sessions share one connection) versus a
//! connection per session.
//!
//! The quantity of record is *allocated bytes per operation*, read from
//! the [`FramePool`]'s release-time accounting (logical, not wall-clock,
//! so it is stable in CI). The binary asserts the headline claim —
//! pooled+multiplexed allocates fewer bytes per op than the
//! unpooled connection-per-session baseline — and writes every point to
//! `BENCH_rpc.json` (JSON lines) for CI to archive.

use std::sync::Arc;
use std::time::{Duration, Instant};

use aide_bench::{header, row, s};
use aide_graph::CommParams;
use aide_rpc::{
    Acceptor, Dispatcher, Endpoint, EndpointConfig, FramePool, NetClock, Reply, Request,
    TcpMuxListener, TcpTransport, Transport,
};
use aide_vm::ObjectId;

/// Concurrent sessions per point.
const SESSIONS: usize = 4;

/// Measured calls per session.
const CALLS: u64 = 150;

/// Unmeasured calls per session that warm the frame-buffer shelf.
const WARMUP: u64 = 25;

struct Sink;
impl Dispatcher for Sink {
    fn dispatch(&self, _request: Request) -> Result<Reply, String> {
        Ok(Reply::Unit)
    }
}

/// One real TCP connection: the dialing transport and the accepted
/// multiplexed carrier.
struct Carrier {
    client: Box<dyn Transport>,
    server: Box<dyn Acceptor>,
}

fn tcp_carrier() -> Carrier {
    let listener = TcpMuxListener::bind(std::net::SocketAddr::from(([127, 0, 0, 1], 0)))
        .expect("binding a localhost listener");
    let addr = listener.local_addr();
    let accepted = std::thread::spawn(move || listener.accept());
    let client =
        TcpTransport::connect(addr, Duration::from_secs(2)).expect("connecting the client");
    let server = accepted
        .join()
        .expect("accept thread panicked")
        .expect("accepting the connection");
    Carrier {
        client: Box::new(client),
        server: Box::new(server),
    }
}

struct Point {
    label: String,
    pooled: bool,
    mux: bool,
    ops: u64,
    wall_seconds: f64,
    ops_per_sec: f64,
    allocated_bytes: u64,
    recycled_bytes: u64,
    bytes_per_op: f64,
}

fn workload() -> Request {
    Request::FieldAccess {
        target: ObjectId::surrogate(1),
        bytes: 64,
        write: false,
    }
}

/// Runs `SESSIONS` concurrent sessions of `CALLS` round trips each over
/// real TCP and returns the cost axes for one (pooled, mux) cell.
fn run_point(label: &str, pooled: bool, mux: bool) -> Point {
    let pool = FramePool::global();
    pool.set_pooling(pooled);

    let carriers: Vec<Carrier> = if mux {
        vec![tcp_carrier()]
    } else {
        (0..SESSIONS).map(|_| tcp_carrier()).collect()
    };
    let mut endpoints = Vec::new();
    let clock = Arc::new(NetClock::new());
    let config = EndpointConfig {
        workers: 2,
        call_timeout: Duration::from_secs(10),
        drain_timeout: Duration::from_millis(100),
        ..EndpointConfig::default()
    };
    for i in 0..SESSIONS {
        let carrier = if mux { &carriers[0] } else { &carriers[i] };
        let cs = carrier.client.open_session().expect("opening a session");
        let ss = carrier.server.accept().expect("accepting a session");
        let client = Endpoint::start(
            cs,
            CommParams::WAVELAN,
            clock.clone(),
            Arc::new(Sink),
            config,
        );
        let server = Endpoint::start(
            ss,
            CommParams::WAVELAN,
            clock.clone(),
            Arc::new(Sink),
            config,
        );
        endpoints.push((client, server));
    }

    // Warm the shelf (and the sockets) outside the measured window.
    for (client, _) in &endpoints {
        for i in 0..WARMUP {
            client
                .call(workload())
                .unwrap_or_else(|e| panic!("{label}: warmup call {i} failed: {e:?}"));
        }
    }

    let alloc_before = pool.allocated_bytes();
    let recycled_before = pool.recycled_bytes();
    let started = Instant::now();
    let threads: Vec<_> = endpoints
        .iter()
        .map(|(client, _)| {
            let client = client.clone();
            let label = label.to_string();
            std::thread::spawn(move || {
                for i in 0..CALLS {
                    client
                        .call(workload())
                        .unwrap_or_else(|e| panic!("{label}: call {i} failed: {e:?}"));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("session thread panicked");
    }
    let wall = started.elapsed().as_secs_f64();
    let allocated = pool.allocated_bytes() - alloc_before;
    let recycled = pool.recycled_bytes() - recycled_before;

    for (client, server) in &endpoints {
        client.shutdown();
        server.shutdown();
    }
    for (client, server) in endpoints {
        client.join();
        server.join();
    }

    let ops = CALLS * SESSIONS as u64;
    Point {
        label: label.to_string(),
        pooled,
        mux,
        ops,
        wall_seconds: wall,
        ops_per_sec: ops as f64 / wall,
        allocated_bytes: allocated,
        recycled_bytes: recycled,
        bytes_per_op: allocated as f64 / ops as f64,
    }
}

fn main() {
    header(
        "rpc transport throughput: frame pooling x session multiplexing",
        "unified transport layer; not a paper figure — infrastructure cost accounting",
    );

    let points = vec![
        run_point("pooled + mux", true, true),
        run_point("pooled + conn-per-session", true, false),
        run_point("unpooled + mux", false, true),
        run_point("unpooled + conn-per-session", false, false),
    ];
    // Leave the process-wide pool the way everyone else expects it.
    FramePool::global().set_pooling(true);

    for p in &points {
        row(
            &p.label,
            format!(
                "{} ops/s, {} B allocated/op ({} allocated, {} recycled over {} ops)",
                s(p.ops_per_sec),
                s(p.bytes_per_op),
                p.allocated_bytes,
                p.recycled_bytes,
                p.ops,
            ),
        );
    }

    let best = &points[0]; // pooled + mux
    let baseline = &points[3]; // unpooled + conn-per-session
    row(
        "headline",
        format!(
            "pooled+mux {} B/op vs unpooled conn-per-session {} B/op",
            s(best.bytes_per_op),
            s(baseline.bytes_per_op),
        ),
    );

    let mut artifact = serde_json::json!({
        "kind": "summary",
        "experiment": "rpc_throughput",
        "sessions": SESSIONS,
        "calls_per_session": CALLS,
        "warmup_per_session": WARMUP,
        "pooled_mux_bytes_per_op": best.bytes_per_op,
        "unpooled_conn_bytes_per_op": baseline.bytes_per_op,
    })
    .to_string();
    artifact.push('\n');
    for p in &points {
        artifact.push_str(
            &serde_json::json!({
                "kind": "point",
                "label": p.label,
                "pooled": p.pooled,
                "mux": p.mux,
                "ops": p.ops,
                "wall_seconds": p.wall_seconds,
                "ops_per_sec": p.ops_per_sec,
                "allocated_bytes": p.allocated_bytes,
                "recycled_bytes": p.recycled_bytes,
                "bytes_per_op": p.bytes_per_op,
            })
            .to_string(),
        );
        artifact.push('\n');
    }
    let path = "BENCH_rpc.json";
    match std::fs::write(path, artifact) {
        Ok(()) => row("artifact", path),
        Err(e) => row("artifact", format!("write failed: {e}")),
    }

    // The acceptance gate: pooling plus multiplexing must beat the naive
    // baseline on allocation volume. CI runs this binary and relies on a
    // non-zero exit to catch a regression.
    assert!(
        best.bytes_per_op < baseline.bytes_per_op,
        "pooled+mux allocated {} B/op, expected less than unpooled \
         conn-per-session at {} B/op",
        best.bytes_per_op,
        baseline.bytes_per_op,
    );
    row("gate", "pooled+mux allocates fewer bytes/op: ok");
}
