//! Ablation (DESIGN.md §5.2): the exact Stoer-Wagner minimum cut versus
//! the paper's modified-MINCUT candidate sweep, under the memory policy's
//! "free at least 20% of the heap" constraint.
//!
//! The paper's motivating observation: the pure minimum cut "may simply
//! remove a single component, which may not free enough memory to satisfy
//! the partitioning policy".

use std::collections::HashSet;

use aide_apps::{javanote, memory_apps};
use aide_bench::{experiment_scale, header, pct, record_app, row, PAPER_HEAP};
use aide_core::{HeuristicKind, Monitor, NodeKey, TriggerConfig};
use aide_emu::TraceEvent;
use aide_emu::{Emulator, EmulatorConfig};
use aide_graph::{
    candidate_partitionings, density_candidates, stoer_wagner, MemoryPolicy, PartitionPolicy,
    ResourceSnapshot,
};
use aide_vm::{Interaction, InteractionKind, RuntimeHooks};

fn main() {
    header(
        "Ablation: exact Stoer-Wagner vs modified-MINCUT candidate sweep",
        "§3.3 motivation",
    );
    // Build JavaNote's execution graph by replaying its trace into the
    // monitoring module (no placement).
    let app = javanote(experiment_scale());
    let trace = record_app(&app);
    let program = std::sync::Arc::new(trace.skeleton_program().unwrap());
    let monitor = Monitor::new(program, TriggerConfig::default(), Default::default());
    for event in &trace.events {
        match event {
            TraceEvent::Interaction {
                caller,
                callee,
                target,
                invocation,
                bytes,
            } => monitor.on_interaction(Interaction {
                caller: *caller,
                callee: *callee,
                target: *target,
                kind: if *invocation {
                    InteractionKind::Invocation
                } else {
                    InteractionKind::FieldAccess
                },
                bytes: *bytes,
                remote: false,
            }),
            TraceEvent::Alloc {
                class,
                object,
                bytes,
            } => monitor.on_alloc(*class, *object, *bytes),
            TraceEvent::Free {
                class,
                objects,
                bytes,
            } => monitor.on_free(*class, *objects, *bytes),
            TraceEvent::Work { class, micros } => monitor.on_work(*class, *micros),
            _ => {}
        }
    }
    let (graph, _keys): (_, Vec<NodeKey>) = monitor.snapshot();
    row(
        "graph nodes / edges",
        format!("{} / {}", graph.node_count(), graph.edge_count()),
    );

    // Exact global minimum cut.
    let exact = stoer_wagner(&graph).expect("graph has >= 2 nodes");
    let side: HashSet<_> = exact.partition.iter().copied().collect();
    let freed: u64 = exact
        .partition
        .iter()
        .map(|&n| graph.node(n).memory_bytes)
        .sum();
    row("exact mincut weight", exact.weight);
    row(
        "exact mincut frees",
        format!("{freed} B ({})", pct(freed as f64 / PAPER_HEAP as f64)),
    );
    let _ = side;

    // Candidate-sweep heuristics + the paper's memory policy.
    let policy = MemoryPolicy::new(0.20);
    let snapshot = ResourceSnapshot::new(PAPER_HEAP, PAPER_HEAP - PAPER_HEAP / 50);
    for (label, candidates) in [
        ("modified-MINCUT (paper)", candidate_partitionings(&graph)),
        (
            "memory-density (ours, paper §8)",
            density_candidates(&graph),
        ),
    ] {
        match policy.select(&graph, snapshot, &candidates) {
            Some(sel) => {
                println!();
                row(format!("{label}: candidates").as_str(), candidates.len());
                row(
                    "  selected partitioning frees",
                    format!(
                        "{} B ({})",
                        sel.stats.offloaded_memory_bytes,
                        pct(sel.stats.offloaded_memory_bytes as f64 / PAPER_HEAP as f64)
                    ),
                );
                row("  selected cut bytes", sel.stats.cut.bytes);
                row("  selected cut interactions", sel.stats.cut.interactions);
            }
            None => row(label, "no feasible candidate (unexpected)"),
        }
    }
    // End-to-end: replay the three memory apps under each heuristic.
    println!("\nend-to-end replays at 6 MB (overhead under each heuristic):");
    println!(
        "{:<12} {:>16} {:>16}",
        "app", "modified-MINCUT", "memory-density"
    );
    for app2 in memory_apps(experiment_scale()) {
        let trace2 = record_app(&app2);
        let mut results = Vec::new();
        for heuristic in [HeuristicKind::ModifiedMincut, HeuristicKind::MemoryDensity] {
            let mut cfg = EmulatorConfig::paper_memory(PAPER_HEAP);
            cfg.heuristic = heuristic;
            let rep = Emulator::new(cfg).replay(&trace2);
            results.push(if rep.completed {
                pct(rep.overhead_fraction())
            } else {
                "OOM".into()
            });
        }
        println!("{:<12} {:>16} {:>16}", app2.name, results[0], results[1]);
    }

    let required = PAPER_HEAP / 5;
    if freed < required {
        println!(
            "\nthe exact minimum cut frees {} B < the required {} B (20% of heap):\n\
             the paper's modification — evaluating every intermediate partitioning\n\
             against the policy — is what makes the decision useful. the density\n\
             heuristic reaches memory-feasible candidates too; the policy picks\n\
             whichever sweep exposes the colder feasible cut.",
            freed, required
        );
    }
}
