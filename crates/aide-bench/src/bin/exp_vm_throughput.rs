//! Interpreter throughput: the flat-IR register VM versus the legacy
//! tree-walker, measured over the five Table 1 application shapes.
//!
//! Each app runs to completion on a fresh, unconstrained client VM under
//! both interpreters. The quantity of record is *logical ops per wall
//! second* (`RunSummary::ops_executed` is identical across modes by the
//! differential tests, so the ratio is a pure interpreter-speed ratio).
//! The flat interpreter additionally runs each app twice to prove its
//! inline caches behave deterministically: the miss count must be
//! bit-identical across runs.
//!
//! Gates (CI runs this binary and relies on a non-zero exit):
//! * geometric-mean speedup >= `AIDE_VM_MIN_SPEEDUP` (default 3.0;
//!   a value <= 0 disables the gate for exploratory runs), and
//! * `vm_ic_miss_total` stable across two identical flat runs.
//!
//! Writes every point to `BENCH_vm.json` (JSON lines) for CI to archive.

use std::sync::Arc;
use std::time::Instant;

use aide_apps::{all_apps, Scale};
use aide_bench::{experiment_scale, header, row};
use aide_vm::{ExecMode, Machine, NullHooks, Program, RunSummary, VmConfig};

/// Unconstrained recording-style heap: no GC pressure, no offloading.
const HEAP: u64 = 64 << 20;

struct ModeRun {
    summary: RunSummary,
    wall_seconds: f64,
    ops_per_sec: f64,
    ic_hits: u64,
    ic_misses: u64,
}

fn run_once(program: &Arc<Program>, mode: ExecMode) -> ModeRun {
    let mut machine =
        Machine::with_hooks(program.clone(), VmConfig::client(HEAP), Arc::new(NullHooks));
    machine.set_exec_mode(mode);
    let started = Instant::now();
    let summary = machine
        .run_entry()
        .unwrap_or_else(|e| panic!("{mode:?} run failed: {e}"));
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let (ic_hits, ic_misses) = machine.vm().lock().ic_stats();
    ModeRun {
        summary,
        wall_seconds: wall,
        ops_per_sec: summary.ops_executed as f64 / wall,
        ic_hits,
        ic_misses,
    }
}

struct Point {
    app: &'static str,
    legacy: ModeRun,
    flat: ModeRun,
    speedup: f64,
    ic_miss_stable: bool,
}

fn min_speedup() -> f64 {
    std::env::var("AIDE_VM_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0)
}

fn main() {
    let scale = experiment_scale();
    header(
        "vm throughput: flat register IR + inline caches vs tree-walker",
        "interpreter overhaul; not a paper figure — runtime substrate cost",
    );
    row("scale", format!("{:.3}", scale.0));

    let mut points = Vec::new();
    for app in all_apps(Scale(scale.0)) {
        let legacy = run_once(&app.program, ExecMode::Legacy);
        let flat = run_once(&app.program, ExecMode::Flat);
        let flat_again = run_once(&app.program, ExecMode::Flat);

        assert_eq!(
            flat.summary, flat_again.summary,
            "{}: flat runs must be deterministic",
            app.name
        );
        let ic_miss_stable = flat.ic_misses == flat_again.ic_misses;
        assert_eq!(
            legacy.summary.ops_executed, flat.summary.ops_executed,
            "{}: logical op counts must agree across interpreters",
            app.name
        );

        let speedup = flat.ops_per_sec / legacy.ops_per_sec;
        row(
            app.name,
            format!(
                "flat {:.2} Mops/s vs legacy {:.2} Mops/s ({speedup:.2}x), \
                 ic {} hits / {} misses{}",
                flat.ops_per_sec / 1e6,
                legacy.ops_per_sec / 1e6,
                flat.ic_hits,
                flat.ic_misses,
                if ic_miss_stable { "" } else { " UNSTABLE" },
            ),
        );
        points.push(Point {
            app: app.name,
            legacy,
            flat,
            speedup,
            ic_miss_stable,
        });
    }

    let geomean = (points.iter().map(|p| p.speedup.ln()).sum::<f64>() / points.len() as f64).exp();
    let floor = min_speedup();
    row("geomean speedup", format!("{geomean:.2}x (gate: {floor}x)"));

    let mut artifact = serde_json::json!({
        "kind": "summary",
        "experiment": "vm_throughput",
        "scale": scale.0,
        "geomean_speedup": geomean,
        "min_speedup_gate": floor,
        "apps": points.len(),
    })
    .to_string();
    artifact.push('\n');
    for p in &points {
        artifact.push_str(
            &serde_json::json!({
                "kind": "point",
                "app": p.app,
                "ops": p.flat.summary.ops_executed,
                "legacy_wall_seconds": p.legacy.wall_seconds,
                "flat_wall_seconds": p.flat.wall_seconds,
                "legacy_ops_per_sec": p.legacy.ops_per_sec,
                "flat_ops_per_sec": p.flat.ops_per_sec,
                "speedup": p.speedup,
                "vm_ic_hits_total": p.flat.ic_hits,
                "vm_ic_miss_total": p.flat.ic_misses,
                "ic_miss_stable": p.ic_miss_stable,
                "mutator_seconds": p.flat.summary.mutator_seconds,
                "hook_seconds": p.flat.summary.hook_seconds,
            })
            .to_string(),
        );
        artifact.push('\n');
    }
    let path = "BENCH_vm.json";
    match std::fs::write(path, artifact) {
        Ok(()) => row("artifact", path),
        Err(e) => row("artifact", format!("write failed: {e}")),
    }

    for p in &points {
        assert!(
            p.ic_miss_stable,
            "{}: vm_ic_miss_total drifted across identical runs ({} then a different count)",
            p.app, p.flat.ic_misses,
        );
    }
    row("gate", "vm_ic_miss_total stable across two runs: ok");

    if floor > 0.0 {
        assert!(
            geomean >= floor,
            "geomean speedup {geomean:.2}x below the {floor}x gate",
        );
        row("gate", format!("geomean speedup >= {floor}x: ok"));
    } else {
        row("gate", "speedup gate disabled (AIDE_VM_MIN_SPEEDUP <= 0)");
    }
}
