//! Ablation (paper §8 "Study the effect of garbage collection"): how the
//! collector's trigger thresholds interact with the offloading trigger.
//!
//! The paper asks: "Some garbage collectors are conservative and leave some
//! garbage at the end of a collection cycle. If more memory is needed,
//! should garbage collection be performed again or should offloading
//! occur?" Chai's frequent partial sweeps produce the frequent memory-usage
//! updates AIDE's trigger consumes; a lazy collector starves the trigger of
//! reports and forces the platform into the hard out-of-memory rescue path.

use aide_apps::javanote;
use aide_bench::{experiment_scale, header, s};
use aide_core::{Platform, PlatformConfig};
use aide_vm::GcConfig;

fn main() {
    header(
        "Ablation: GC trigger cadence vs offloading behaviour (JavaNote, 6 MB)",
        "paper §8 future work: the interplay of collection and offloading",
    );
    println!(
        "{:<26} {:>10} {:>10} {:>12} {:>14}",
        "collector cadence", "GC cycles", "offloads", "offload @", "total time"
    );
    let scale = experiment_scale();
    for (label, gc) in [
        (
            "eager (64 KB / 128 allocs)",
            GcConfig {
                trigger_alloc_count: 128,
                trigger_alloc_bytes: 64 << 10,
                cost_micros_per_object: 0.05,
            },
        ),
        ("paper-like (256 KB / 500)", GcConfig::default()),
        (
            "lazy (2 MB / 5000 allocs)",
            GcConfig {
                trigger_alloc_count: 5_000,
                trigger_alloc_bytes: 2 << 20,
                cost_micros_per_object: 0.05,
            },
        ),
        (
            "allocation-failure only",
            GcConfig {
                trigger_alloc_count: u64::MAX,
                trigger_alloc_bytes: u64::MAX,
                cost_micros_per_object: 0.05,
            },
        ),
    ] {
        let mut cfg = PlatformConfig::prototype(6 << 20);
        cfg.gc = gc;
        let report = Platform::new(javanote(scale).program, cfg).run();
        let outcome = match &report.outcome {
            Ok(_) => "ok",
            Err(_) => "OOM",
        };
        let at = report
            .offloads
            .first()
            .map(|o| format!("cycle {}", o.at_gc_cycle))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<26} {:>10} {:>10} {:>12} {:>11} {}",
            label,
            report.client_gc_cycles,
            report.offloads.len(),
            at,
            s(report.total_seconds()),
            outcome
        );
    }
    println!(
        "\nlesson: a collector that reports often gives the trigger policy an\n\
         early, graceful decision point; a lazy collector defers everything to\n\
         the allocation-failure path, which still works (the hard-OOM rescue)\n\
         but decides under pressure."
    );
}
