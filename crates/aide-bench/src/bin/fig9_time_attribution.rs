//! Figure 9: the mapping of method execution times to the execution graph.
//! The paper's example: a::f() takes 0.12s but spends 0.10s in a nested
//! call to b::g(), so only 0.02s is attributed to class a.

use std::sync::Arc;

use aide_bench::{header, row};
use aide_core::{Monitor, TriggerConfig};
use aide_vm::{Machine, MethodDef, MethodId, Op, ProgramBuilder, Reg, VmConfig};

fn main() {
    header(
        "Figure 9: exclusive-time attribution to execution-graph nodes",
        "Figure 9; paper: a::f() = 0.12s total, 0.10s nested in b::g() -> a gets 0.02s",
    );
    let mut b = ProgramBuilder::new();
    let a = b.add_class("a");
    let bc = b.add_class("b");
    let g = b.add_method(bc, MethodDef::new("g", vec![Op::Work { micros: 100_000 }]));
    b.add_method(
        a,
        MethodDef::new(
            "f",
            vec![
                Op::Work { micros: 20_000 },
                Op::New {
                    class: bc,
                    scalar_bytes: 16,
                    ref_slots: 0,
                    dst: Reg(0),
                },
                Op::Call {
                    obj: Reg(0),
                    class: bc,
                    method: g,
                    arg_bytes: 8,
                    ret_bytes: 8,
                    args: vec![],
                },
            ],
        ),
    );
    let program = Arc::new(b.build(a, MethodId(0), 16, 1).unwrap());
    let monitor = Arc::new(Monitor::new(
        program.clone(),
        TriggerConfig::default(),
        Default::default(),
    ));
    let machine = Machine::with_hooks(program, VmConfig::client(1 << 20), monitor.clone());
    machine.run_entry().expect("runs");

    let (graph, _) = monitor.snapshot();
    let node_a = graph.node_by_label("a").unwrap();
    let node_b = graph.node_by_label("b").unwrap();
    row(
        "exclusive time of class a",
        format!("{:.2}s", graph.node(node_a).cpu_micros as f64 / 1e6),
    );
    row(
        "exclusive time of class b",
        format!("{:.2}s", graph.node(node_b).cpu_micros as f64 / 1e6),
    );
    let e = graph.edge(node_a, node_b).unwrap();
    row("a--b interactions", e.interactions);
    assert_eq!(graph.node(node_a).cpu_micros, 20_000);
    assert_eq!(graph.node(node_b).cpu_micros, 100_000);
    println!("\nnested time is attributed to the callee, exactly as in Figure 9.");
}
