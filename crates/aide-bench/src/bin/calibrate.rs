//! Calibration harness: prints the raw shape of every application model so
//! the constants in `aide-apps` can be tuned against the paper's numbers.
//! Not one of the published experiments — a development tool.

use aide_apps::{biomer_manual_partition, cpu_apps, memory_apps, Scale};
use aide_bench::{pct, record_app, s};

use aide_emu::{Emulator, EmulatorConfig};

fn main() {
    let scale = Scale(
        std::env::args()
            .nth(1)
            .and_then(|a| a.parse().ok())
            .unwrap_or(1.0),
    );
    println!("== scale {:?} ==", scale.0);

    println!("\n-- memory apps (replay at 6 MB heap, paper initial policy) --");
    for app in memory_apps(scale) {
        let trace = record_app(&app);
        let emu = Emulator::new(EmulatorConfig::paper_memory(6 << 20));
        let rep = emu.replay(&trace);
        println!(
            "{:10} events={:8} interactions={:8} work={} peak_live={:.2}MB",
            app.name,
            trace.len(),
            trace.interaction_count(),
            s(trace.total_work_seconds()),
            rep.peak_client_bytes as f64 / 1e6,
        );
        println!(
            "           completed={} offloads={} total={} overhead={} transfer={} comm={} \
             remote_int={} remote_nat={}",
            rep.completed,
            rep.offloads.len(),
            s(rep.total_seconds()),
            pct(rep.overhead_fraction()),
            s(rep.offload_transfer_seconds),
            s(rep.comm_seconds),
            rep.remote.remote_interactions,
            rep.remote.remote_native_calls,
        );
        if let Some(o) = rep.offloads.first() {
            println!(
                "           offload@evt {} moved={:.2}MB frac={} cut_bytes={}",
                o.at_event,
                o.bytes_moved as f64 / 1e6,
                pct(o.offloaded_memory_fraction),
                o.cut_bytes
            );
        }
    }

    println!("\n-- cpu apps (16 MB heap, 3.5x surrogate) --");
    for (idx, app) in cpu_apps(scale).into_iter().enumerate() {
        let is_biomer = idx == 2;
        let trace = record_app(&app);
        let base = EmulatorConfig::paper_cpu(16 << 20, 90_000_000.0);
        let configs = [
            ("initial", false, false),
            ("native", true, false),
            ("array", false, true),
            ("combined", true, true),
        ];
        println!(
            "{:10} events={:8} work={} (original)",
            app.name,
            trace.len(),
            s(trace.total_work_seconds()),
        );
        for (label, natives, arrays) in configs {
            let mut cfg = base.clone();
            cfg.stateless_natives_local = natives;
            cfg.array_object_granularity = arrays;
            let rep = Emulator::new(cfg).replay(&trace);
            let detail = rep
                .offloads
                .first()
                .map(|o| {
                    format!(
                        " nodes={} score={:.1}s@evt{}",
                        o.nodes_offloaded, o.score, o.at_event
                    )
                })
                .unwrap_or_default();
            println!(
                "           {:9} offloaded={} total={} vs original {} ({:+.1}%) remote_nat={}{}",
                label,
                rep.offloaded(),
                s(rep.total_seconds()),
                s(rep.baseline_seconds),
                rep.overhead_fraction() * 100.0,
                rep.remote.remote_native_calls,
                detail,
            );
        }
        if is_biomer {
            let mut cfg = base.clone();
            cfg.stateless_natives_local = true;
            cfg.array_object_granularity = true;
            cfg.max_offloads = 0;
            cfg.forced_surrogate = Some(biomer_manual_partition());
            let rep = Emulator::new(cfg).replay(&trace);
            println!(
                "           manual    total={} vs original {} ({:+.1}%)",
                s(rep.total_seconds()),
                s(rep.baseline_seconds),
                rep.overhead_fraction() * 100.0,
            );
        }
    }
}
