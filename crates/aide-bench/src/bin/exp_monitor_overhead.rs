//! §5.1 "Monitoring Overhead": JavaNote executed with monitoring off and
//! on, unconstrained heap. The paper measured 31.59s vs 35.04s (~11%).
//! Our times are virtual, so the *ratio* is the reproduced quantity; the
//! per-event monitoring cost is the measured knob.
//!
//! On top of the paper's number, this binary prices the *telemetry tax*:
//! the same monitored run is executed twice with the global
//! `aide_telemetry` switch off and on, and the real (wall-clock)
//! difference is compared against a configurable budget. The enabled
//! run's metric delta is dumped as `BENCH_monitor_overhead.json` (JSON
//! lines) for CI to archive.

use std::time::Instant;

use aide_apps::javanote;
use aide_bench::{experiment_scale, header, pct, row, s};
use aide_core::{Platform, PlatformConfig, PlatformReport};

/// Virtual cost per monitoring event, calibrated so JavaNote's monitoring
/// overhead lands near the paper's 11%.
const MONITOR_EVENT_MICROS: f64 = 16.5;

/// Default ceiling on the wall-clock overhead telemetry may add to a
/// monitored run, in percent. Deliberately generous: the assert exists to
/// catch structural regressions (a lock or allocation sneaking onto the
/// hook path), not scheduler noise. Override with
/// `AIDE_TELEMETRY_BUDGET_PCT`; a negative value disables the assert.
const DEFAULT_TELEMETRY_BUDGET_PCT: f64 = 50.0;

/// The §5.1 "monitoring on" configuration: monitor everything, never
/// offload.
fn monitored_config() -> PlatformConfig {
    let mut on = PlatformConfig::prototype(64 << 20);
    on.max_offloads = 0; // monitoring only — no partitioning
    on.monitor_event_micros = MONITOR_EVENT_MICROS;
    on
}

/// Runs the monitored workload and returns the report with its real
/// (wall-clock) duration in seconds.
fn timed_run(scale: aide_apps::Scale) -> (PlatformReport, f64) {
    let started = Instant::now();
    let report = Platform::new(javanote(scale).program, monitored_config()).run();
    let wall = started.elapsed().as_secs_f64();
    report.outcome.as_ref().expect("completes");
    (report, wall)
}

fn main() {
    header(
        "§5.1 monitoring overhead (JavaNote, unconstrained heap)",
        "§5.1; paper: 31.59s unmonitored vs 35.04s monitored = ~11% overhead",
    );
    let scale = experiment_scale();

    let mut off = PlatformConfig::prototype(64 << 20);
    off.monitoring = false;
    let report_off = Platform::new(javanote(scale).program, off).run();
    report_off.outcome.as_ref().expect("completes");

    let report_on = Platform::new(javanote(scale).program, monitored_config()).run();
    report_on.outcome.as_ref().expect("completes");

    let t_off = report_off.total_seconds();
    let t_on = report_on.total_seconds();
    row("monitoring off", s(t_off));
    row("monitoring on", s(t_on));
    row("monitoring overhead", pct(t_on / t_off - 1.0));
    row(
        "events monitored",
        report_on.metrics.interaction_events
            + report_on.metrics.objects_total
            + report_on.metrics.samples,
    );
    row(
        "per-event cost model",
        format!("{MONITOR_EVENT_MICROS} virtual us"),
    );

    // ---- telemetry tax: same monitored run, global switch off vs on ----
    println!();
    header(
        "telemetry overhead (monitored run, aide-telemetry off vs on)",
        "this repo's observability layer; wall-clock, not virtual, time",
    );

    // Warm-up run so neither measured run pays first-touch costs.
    let _ = timed_run(scale);

    aide_telemetry::set_enabled(false);
    let (_, wall_disabled) = timed_run(scale);

    aide_telemetry::set_enabled(true);
    let (report_enabled, wall_enabled) = timed_run(scale);
    // The per-run metric delta the platform computed for its own report —
    // exactly what a live deployment would export.
    let delta = report_enabled.telemetry.clone();

    let hook_events = delta
        .counters
        .get(aide_telemetry::names::MONITOR_HOOK_EVENTS)
        .copied()
        .unwrap_or(0);
    let hook_nanos = delta
        .counters
        .get(aide_telemetry::names::MONITOR_HOOK_NANOS)
        .copied()
        .unwrap_or(0);
    let overhead = wall_enabled / wall_disabled - 1.0;

    row(
        "wall clock, telemetry disabled",
        format!("{wall_disabled:.3}s"),
    );
    row(
        "wall clock, telemetry enabled",
        format!("{wall_enabled:.3}s"),
    );
    row("telemetry overhead", pct(overhead));
    row("monitor hook events", hook_events);
    row(
        "mean ns per instrumented hook",
        if hook_events == 0 {
            "n/a".to_string()
        } else {
            format!("{:.0}", hook_nanos as f64 / hook_events as f64)
        },
    );

    let mut artifact = serde_json::json!({
        "kind": "summary",
        "experiment": "monitor_overhead",
        "virtual_monitoring_overhead": t_on / t_off - 1.0,
        "wall_disabled_seconds": wall_disabled,
        "wall_enabled_seconds": wall_enabled,
        "telemetry_overhead": overhead,
        "hook_events": hook_events,
        "hook_nanos": hook_nanos,
    })
    .to_string();
    artifact.push('\n');
    artifact.push_str(&aide_telemetry::snapshot_json_lines(&delta));
    let path = "BENCH_monitor_overhead.json";
    match std::fs::write(path, artifact) {
        Ok(()) => row("artifact", path),
        Err(e) => row("artifact", format!("write failed: {e}")),
    }

    let budget_pct = std::env::var("AIDE_TELEMETRY_BUDGET_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_TELEMETRY_BUDGET_PCT);
    if budget_pct >= 0.0 {
        row("budget", format!("{budget_pct:.1}%"));
        assert!(
            overhead * 100.0 <= budget_pct,
            "telemetry overhead {} exceeds budget {budget_pct:.1}% \
             (set AIDE_TELEMETRY_BUDGET_PCT to adjust)",
            pct(overhead),
        );
    } else {
        row("budget", "disabled");
    }
}
