//! §5.1 "Monitoring Overhead": JavaNote executed with monitoring off and
//! on, unconstrained heap. The paper measured 31.59s vs 35.04s (~11%).
//! Our times are virtual, so the *ratio* is the reproduced quantity; the
//! per-event monitoring cost is the measured knob.

use aide_apps::javanote;
use aide_bench::{experiment_scale, header, pct, row, s};
use aide_core::{Platform, PlatformConfig};

/// Virtual cost per monitoring event, calibrated so JavaNote's monitoring
/// overhead lands near the paper's 11%.
const MONITOR_EVENT_MICROS: f64 = 16.5;

fn main() {
    header(
        "§5.1 monitoring overhead (JavaNote, unconstrained heap)",
        "§5.1; paper: 31.59s unmonitored vs 35.04s monitored = ~11% overhead",
    );
    let scale = experiment_scale();

    let mut off = PlatformConfig::prototype(64 << 20);
    off.monitoring = false;
    let report_off = Platform::new(javanote(scale).program, off).run();
    report_off.outcome.as_ref().expect("completes");

    let mut on = PlatformConfig::prototype(64 << 20);
    on.max_offloads = 0; // monitoring only — no partitioning
    on.monitor_event_micros = MONITOR_EVENT_MICROS;
    let report_on = Platform::new(javanote(scale).program, on).run();
    report_on.outcome.as_ref().expect("completes");

    let t_off = report_off.total_seconds();
    let t_on = report_on.total_seconds();
    row("monitoring off", s(t_off));
    row("monitoring on", s(t_on));
    row("monitoring overhead", pct(t_on / t_off - 1.0));
    row(
        "events monitored",
        report_on.metrics.interaction_events
            + report_on.metrics.objects_total
            + report_on.metrics.samples,
    );
    row("per-event cost model", format!("{MONITOR_EVENT_MICROS} virtual us"));
}
