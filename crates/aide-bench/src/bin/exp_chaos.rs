//! Chaos sweep: goodput of the retrying RPC stack as link loss and
//! corruption rise. The paper's WaveLAN deployment assumed a reliable
//! transport; this experiment prices what the robustness layer (CRC
//! framing, retries, at-most-once dedup) pays to keep a workload correct
//! on a degrading link.
//!
//! For each fault rate the same non-idempotent workload (a fixed count of
//! `PutSlot` calls) runs over a seeded chaos link. The run is correct by
//! construction — every call either completes or the binary panics — so
//! the measured quantities are the cost axes: wall-clock goodput, retry
//! volume, and how many retries the serving side had to answer from the
//! dedup cache instead of re-executing. Results land in
//! `BENCH_chaos.json` (JSON lines) for CI to archive.

use std::sync::Arc;
use std::time::{Duration, Instant};

use aide_bench::{header, row, s};
use aide_graph::CommParams;
use aide_rpc::{
    chaos_pair, ChaosSchedule, Dispatcher, Endpoint, EndpointConfig, Reply, Request, RetryPolicy,
};
use aide_vm::ObjectId;

/// Logical calls per sweep point.
const CALLS: u64 = 100;

/// Fault seed: fixed so every run injects the identical weather.
const SEED: u64 = 0xC0_FFEE;

struct Sink;
impl Dispatcher for Sink {
    fn dispatch(&self, _request: Request) -> Result<Reply, String> {
        Ok(Reply::Unit)
    }
}

/// A retry policy tight enough that a sweep point finishes in seconds
/// even at 30% loss.
fn sweep_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 10,
        attempt_timeout: Duration::from_millis(25),
        base_backoff: Duration::from_millis(1),
        backoff_factor: 2.0,
        max_backoff: Duration::from_millis(20),
        jitter: 0.25,
        deadline: Duration::from_secs(20),
        seed: SEED,
    }
}

struct Point {
    label: String,
    drop: f64,
    corrupt: f64,
    wall_seconds: f64,
    goodput_calls_per_sec: f64,
    retries: u64,
    dedup_hits: u64,
    bad_frames: u64,
    frames_dropped: u64,
    frames_corrupted: u64,
}

/// Runs `CALLS` non-idempotent calls over a chaos link and returns the
/// cost axes. Panics if any call fails — correctness is a precondition,
/// not a result.
fn run_point(label: &str, drop: f64, corrupt: f64) -> Point {
    let schedule = ChaosSchedule {
        drop,
        corrupt,
        ..ChaosSchedule::seeded(SEED)
    };
    let (link, ct, st, stats) = chaos_pair(CommParams::WAVELAN, schedule);
    let config = EndpointConfig {
        workers: 2,
        call_timeout: Duration::from_secs(5),
        drain_timeout: Duration::from_millis(100),
        retry: sweep_retry(),
    };
    let client = Endpoint::start(ct, link.params, link.clock.clone(), Arc::new(Sink), config);
    let surrogate = Endpoint::start(st, link.params, link.clock.clone(), Arc::new(Sink), config);

    let started = Instant::now();
    for i in 0..CALLS {
        client
            .call_with_retry(Request::PutSlot {
                target: ObjectId::client(i % 8),
                slot: 0,
                value: Some(ObjectId::client(i)),
            })
            .unwrap_or_else(|e| panic!("{label}: call {i} failed: {e:?}"));
    }
    let wall = started.elapsed().as_secs_f64();

    let point = Point {
        label: label.to_string(),
        drop,
        corrupt,
        wall_seconds: wall,
        goodput_calls_per_sec: CALLS as f64 / wall,
        retries: client.retries(),
        dedup_hits: surrogate.dedup_hits(),
        bad_frames: surrogate.bad_frames() + client.bad_frames(),
        frames_dropped: stats.client.dropped() + stats.surrogate.dropped(),
        frames_corrupted: stats.client.corrupted() + stats.surrogate.corrupted(),
    };
    client.shutdown();
    client.join();
    surrogate.shutdown();
    surrogate.join();
    point
}

fn main() {
    header(
        "chaos sweep: goodput under seeded loss and corruption",
        "robustness layer; not a paper figure — the paper assumed a reliable link",
    );

    let mut points = Vec::new();
    for loss in [0.0, 0.05, 0.10, 0.20, 0.30] {
        points.push(run_point(&format!("loss {:.0}%", loss * 100.0), loss, 0.0));
    }
    for corrupt in [0.05, 0.10, 0.20] {
        points.push(run_point(
            &format!("corrupt {:.0}%", corrupt * 100.0),
            0.0,
            corrupt,
        ));
    }

    let baseline = points[0].goodput_calls_per_sec;
    for p in &points {
        row(
            &p.label,
            format!(
                "{} calls/s ({:.0}% of clean), {} retries, {} dedup hits, {} bad frames",
                s(p.goodput_calls_per_sec),
                100.0 * p.goodput_calls_per_sec / baseline,
                p.retries,
                p.dedup_hits,
                p.bad_frames,
            ),
        );
    }

    let mut artifact = serde_json::json!({
        "kind": "summary",
        "experiment": "chaos",
        "calls_per_point": CALLS,
        "seed": SEED,
        "clean_goodput_calls_per_sec": baseline,
    })
    .to_string();
    artifact.push('\n');
    for p in &points {
        artifact.push_str(
            &serde_json::json!({
                "kind": "point",
                "label": p.label,
                "drop": p.drop,
                "corrupt": p.corrupt,
                "wall_seconds": p.wall_seconds,
                "goodput_calls_per_sec": p.goodput_calls_per_sec,
                "retries": p.retries,
                "dedup_hits": p.dedup_hits,
                "bad_frames": p.bad_frames,
                "frames_dropped": p.frames_dropped,
                "frames_corrupted": p.frames_corrupted,
            })
            .to_string(),
        );
        artifact.push('\n');
    }
    let path = "BENCH_chaos.json";
    match std::fs::write(path, artifact) {
        Ok(()) => row("artifact", path),
        Err(e) => row("artifact", format!("write failed: {e}")),
    }
}
