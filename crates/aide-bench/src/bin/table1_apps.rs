//! Table 1: the applications used for the experiments.

use aide_apps::all_apps;
use aide_bench::{experiment_scale, header};

fn main() {
    header("Table 1: Java applications used for experiments", "Table 1");
    let scale = experiment_scale();
    println!(
        "{:<10} {:<34} {:<30} {:>8} {:>8}",
        "Name", "Description", "Resource demands", "Classes", "Methods"
    );
    for app in all_apps(scale) {
        let methods: usize = app.program.classes().iter().map(|c| c.methods.len()).sum();
        println!(
            "{:<10} {:<34} {:<30} {:>8} {:>8}",
            app.name,
            app.description,
            app.resource_demands,
            app.program.class_count(),
            methods
        );
    }
}
