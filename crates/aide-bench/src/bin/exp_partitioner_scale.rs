//! Partitioner scaling: classic from-scratch pipeline vs the incremental
//! epoch engine on synthetic 100/1k/10k-class graphs.
//!
//! The paper reports ≈0.1 s to partition JavaNote's 138-class graph; the
//! classic pipeline is O(V·(V+E)) per decision and falls over well before
//! 10k classes. This binary drives both pipelines through identical delta
//! histories — five decision epochs of annotation and interaction churn —
//! and measures per-epoch decision cost:
//!
//! * **from-scratch**: materialize the full candidate sequence and score
//!   it sequentially (what `decide` has always done);
//! * **incremental**: apply the epoch's deltas in O(delta), plan the sweep
//!   with the warm strength cache, and evaluate in parallel across all
//!   cores.
//!
//! The winners must be bit-identical every epoch — the speedup is only
//! meaningful if the answer is unchanged. Writes `BENCH_partitioner.json`
//! and, when `AIDE_PARTITIONER_MIN_SPEEDUP` is set, asserts the speedup at
//! the largest size meets it.

use std::time::Instant;

use aide_bench::{header, row};
use aide_core::{IncrementalPartitioner, PartitionerConfig};
use aide_graph::{
    candidate_partitionings, EdgeInfo, EvalStrategy, ExecutionGraph, GraphDelta, MemoryPolicy,
    NodeId, NodeInfo, PartitionPolicy, PinReason, ResourceSnapshot,
};

/// Decision epochs per graph size.
const EPOCHS: usize = 5;

/// Deterministic xorshift64 — the bench binaries carry no RNG dependency.
struct XorShift64(u64);

impl XorShift64 {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The initial history: `n` classes (≈2% pinned) and `4n` interactions.
fn synth_history(n: usize, rng: &mut XorShift64) -> Vec<GraphDelta> {
    let mut deltas = Vec::with_capacity(5 * n);
    for i in 0..n {
        deltas.push(GraphDelta::AddNode {
            label: format!("C{i}"),
            pinned: (i % 50 == 0).then_some(PinReason::NativeMethods),
            memory_bytes: rng.below(1_000_000),
            cpu_micros: rng.below(100_000),
            live_objects: rng.below(64),
        });
    }
    for _ in 0..4 * n {
        let a = rng.below(n as u64) as u32;
        let b = rng.below(n as u64) as u32;
        if a != b {
            deltas.push(GraphDelta::Interaction {
                a: NodeId(a),
                b: NodeId(b),
                delta: EdgeInfo::new(rng.below(100), rng.below(10_000)),
            });
        }
    }
    deltas
}

/// One epoch of churn: annotation refreshes plus fresh interactions on
/// about 2% of the classes.
fn epoch_churn(n: usize, rng: &mut XorShift64) -> Vec<GraphDelta> {
    let k = (n / 50).max(1);
    let mut deltas = Vec::with_capacity(2 * k);
    for _ in 0..k {
        deltas.push(GraphDelta::UpdateNode {
            node: NodeId(rng.below(n as u64) as u32),
            memory_bytes: rng.below(1_000_000),
            cpu_micros: rng.below(100_000),
            live_objects: rng.below(64),
        });
        let a = rng.below(n as u64) as u32;
        let b = rng.below(n as u64) as u32;
        if a != b {
            deltas.push(GraphDelta::Interaction {
                a: NodeId(a),
                b: NodeId(b),
                delta: EdgeInfo::new(rng.below(100), rng.below(10_000)),
            });
        }
    }
    deltas
}

/// Replays a delta batch into the classic pipeline's graph mirror through
/// the direct mutation API (what the monitor's snapshot used to produce).
fn apply_to_mirror(g: &mut ExecutionGraph, deltas: &[GraphDelta]) {
    for d in deltas {
        match d {
            GraphDelta::AddNode {
                label,
                pinned,
                memory_bytes,
                cpu_micros,
                live_objects,
            } => {
                let id = match pinned {
                    Some(reason) => g.add_node(NodeInfo::pinned(label.clone(), *reason)),
                    None => g.add_node(NodeInfo::new(label.clone())),
                };
                let info = g.node_mut(id);
                info.memory_bytes = *memory_bytes;
                info.cpu_micros = *cpu_micros;
                info.live_objects = *live_objects;
            }
            GraphDelta::UpdateNode {
                node,
                memory_bytes,
                cpu_micros,
                live_objects,
            } => {
                let info = g.node_mut(*node);
                info.memory_bytes = *memory_bytes;
                info.cpu_micros = *cpu_micros;
                info.live_objects = *live_objects;
            }
            GraphDelta::SetPinned { node, pinned } => g.node_mut(*node).pinned = *pinned,
            GraphDelta::Interaction { a, b, delta } => g.record_interaction(*a, *b, *delta),
            GraphDelta::RemoveNode { node } => {
                let _ = g.clear_node(*node);
            }
        }
    }
}

struct SizeResult {
    nodes: usize,
    scratch_micros: u64,
    incremental_micros: u64,
    speedup: f64,
    winners_equal: bool,
}

fn run_size(n: usize) -> SizeResult {
    let mut rng = XorShift64(0x9E37_79B9_7F4A_7C15 ^ n as u64);
    let policy = MemoryPolicy::new(0.2);
    let heap = n as u64 * 600_000;
    let snapshot = ResourceSnapshot::new(heap, heap - heap / 20);

    let mut mirror = ExecutionGraph::new();
    let mut part = IncrementalPartitioner::new(PartitionerConfig {
        // Never skip: every epoch must produce a comparable decision.
        churn_threshold: 0,
        eval: EvalStrategy::Parallel { threads: 0 },
    });

    let mut scratch_micros = 0u64;
    let mut incremental_micros = 0u64;
    let mut winners_equal = true;

    let history = synth_history(n, &mut rng);
    let mut batch = history;
    for _ in 0..EPOCHS {
        apply_to_mirror(&mut mirror, &batch);

        // From-scratch arm: materialize every candidate, score sequentially.
        let started = Instant::now();
        let candidates = candidate_partitionings(&mirror);
        let classic = policy.select(&mirror, snapshot, &candidates);
        scratch_micros += u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);

        // Incremental arm: O(delta) apply + warm plan + parallel sweep.
        let started = Instant::now();
        part.apply_deltas(&batch);
        let decision = part.epoch(snapshot, &policy);
        incremental_micros += u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);

        let same = match (&classic, &decision.selection) {
            (Some(a), Some(b)) => {
                a.partitioning == b.partitioning
                    && a.stats == b.stats
                    && a.score.to_bits() == b.score.to_bits()
            }
            (None, None) => true,
            _ => false,
        };
        winners_equal &= same;

        batch = epoch_churn(n, &mut rng);
    }

    SizeResult {
        nodes: n,
        scratch_micros,
        incremental_micros,
        speedup: scratch_micros as f64 / (incremental_micros.max(1)) as f64,
        winners_equal,
    }
}

fn main() {
    header(
        "partitioner scaling: from-scratch vs incremental epochs",
        "paper §4 partitioning cost (0.1s at 138 classes), scaled to 10k",
    );

    let scale = std::env::var("AIDE_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0);
    let sizes: Vec<usize> = [100usize, 1_000, 10_000]
        .iter()
        .map(|&n| ((n as f64 * scale) as usize).max(20))
        .collect();

    let results: Vec<SizeResult> = sizes.iter().map(|&n| run_size(n)).collect();

    for r in &results {
        row(
            &format!("{} classes", r.nodes),
            format!(
                "scratch {:>9} us | incremental {:>8} us | {:>6.1}x | winners {}",
                r.scratch_micros,
                r.incremental_micros,
                r.speedup,
                if r.winners_equal { "equal" } else { "DIVERGED" },
            ),
        );
    }

    let artifact = serde_json::json!({
        "kind": "summary",
        "experiment": "partitioner_scale",
        "epochs": EPOCHS,
        "scale": scale,
        "sizes": results.iter().map(|r| serde_json::json!({
            "nodes": r.nodes,
            "scratch_micros": r.scratch_micros,
            "incremental_micros": r.incremental_micros,
            "speedup": r.speedup,
            "winners_equal": r.winners_equal,
        })).collect::<Vec<_>>(),
    });
    let path = "BENCH_partitioner.json";
    match std::fs::write(path, artifact.to_string() + "\n") {
        Ok(()) => row("artifact", path),
        Err(e) => row("artifact", format!("write failed: {e}")),
    }

    for r in &results {
        assert!(
            r.winners_equal,
            "incremental winner diverged from the classic pipeline at {} classes",
            r.nodes
        );
    }

    if let Some(min_speedup) = std::env::var("AIDE_PARTITIONER_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        let largest = results.last().expect("at least one size");
        row("required speedup", format!("{min_speedup:.1}x"));
        assert!(
            largest.speedup >= min_speedup,
            "incremental speedup {:.1}x at {} classes is below the required {min_speedup:.1}x",
            largest.speedup,
            largest.nodes
        );
    }
}
