//! Failover recovery cost: what does losing the surrogate mid-run cost,
//! as a function of how much state it was holding?
//!
//! The paper defers surrogate-failure recovery to future work (§8); this
//! harness quantifies the recovery path added by the reproduction. For
//! each workload scale, a JavaNote trace is replayed three ways under the
//! paper's 6 MB memory configuration: clean (no failure), a failure
//! halfway through with a standby surrogate (reinstate + re-offload), and
//! the same failure with no standby (degraded, usually fatal for
//! JavaNote-class memory demands).
//!
//! ```sh
//! AIDE_SCALE=0.25 cargo run --release --bin failover_recovery
//! ```

use aide_apps::javanote;
use aide_bench::{header, record_app, row, s, PAPER_HEAP};
use aide_emu::{Emulator, EmulatorConfig, EmulatorReport, FailureSchedule, Trace};

fn replay_with(trace: &Trace, failure: Option<FailureSchedule>) -> EmulatorReport {
    let mut cfg = EmulatorConfig::paper_memory(PAPER_HEAP);
    cfg.failure = failure;
    Emulator::new(cfg).replay(trace)
}

fn main() {
    header(
        "Failover recovery cost vs. offloaded state",
        "the recovery path for §8's deferred surrogate-failure handling",
    );

    let base_scale = aide_bench::experiment_scale().0;
    for factor in [0.25, 0.5, 1.0] {
        let scale = aide_apps::Scale(base_scale * factor);
        let app = javanote(scale);
        let trace = record_app(&app);

        let clean = replay_with(&trace, None);
        if !clean.offloaded() {
            println!("\nJavaNote x{:.3}: no offload at 6 MB, skipping", scale.0);
            continue;
        }
        // Kill the surrogate halfway through the clean completion time —
        // comfortably after the offload, comfortably before the end.
        let kill_at = clean.total_seconds() * 0.5;
        let standby = replay_with(&trace, Some(FailureSchedule::at(kill_at)));
        let abandoned = replay_with(
            &trace,
            Some(FailureSchedule {
                at_virtual_seconds: kill_at,
                standby: false,
                reoffload_delay_seconds: 0.0,
            }),
        );

        println!("\nJavaNote x{:.3} ({} events)", scale.0, trace.len());
        row("clean completion", s(clean.total_seconds()));
        row("surrogate killed at", s(kill_at));
        if let Some(f) = standby.failovers.first() {
            row(
                "state reinstated",
                format!("{} KB", f.reinstated_bytes >> 10),
            );
        }
        if standby.completed {
            row("with standby: completion", s(standby.total_seconds()));
            row(
                "with standby: recovery cost",
                s(standby.total_seconds() - clean.total_seconds()),
            );
            row(
                "with standby: offloads (incl. recovery)",
                standby.offloads.len(),
            );
        } else {
            row("with standby", "OOM (reinstated state never fit back)");
        }
        row(
            "no standby",
            if abandoned.completed {
                "completed degraded (client-only)".to_string()
            } else {
                format!(
                    "OOM at event {} of {}",
                    abandoned.oom_at_event.unwrap_or(0),
                    trace.len()
                )
            },
        );
    }
}
