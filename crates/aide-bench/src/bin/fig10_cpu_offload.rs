//! Figure 10: effect of offloading on application performance under
//! processing constraints (3.5x surrogate), with the stateless-native and
//! primitive-array enhancements, plus the hand-partitioned Biomer run.

use aide_apps::{biomer_manual_partition, cpu_apps};
use aide_bench::{experiment_scale, fig10_configs, header, record_app, s, CPU_EVAL_PERIOD_MICROS};
use aide_emu::{Emulator, EmulatorConfig};

fn main() {
    let mut series = Vec::new();
    header(
        "Figure 10: offloading under processing constraints (surrogate 3.5x)",
        "Figure 10; paper: Voxel/Tracer improve up to ~15% with enhancements; \
         Biomer correctly not offloaded (predicted 790s vs 750s; manual 711s)",
    );
    for (idx, app) in cpu_apps(experiment_scale()).into_iter().enumerate() {
        let trace = record_app(&app);
        println!(
            "\n{} — original (client only): {}",
            app.name,
            s(trace.total_work_seconds())
        );
        for (label, cfg) in fig10_configs() {
            let report = Emulator::new(cfg).replay(&trace);
            series.push(serde_json::json!({
                "app": app.name,
                "variant": label,
                "original_seconds": report.baseline_seconds,
                "total_seconds": report.total_seconds(),
                "offloaded": report.offloaded(),
            }));
            let verdict = if report.offloaded() {
                format!(
                    "offloaded: {} ({:+.1}%)",
                    s(report.total_seconds()),
                    report.overhead_fraction() * 100.0
                )
            } else {
                format!(
                    "not offloaded (beneficial gate): {}",
                    s(report.total_seconds())
                )
            };
            println!("  {label:<9} {verdict}");
        }
        // The paper's manual Biomer partition (found by hand, with both
        // enhancements): ForceField + energy terms + fragments.
        if idx == 2 {
            let mut cfg = EmulatorConfig::paper_cpu(16 << 20, CPU_EVAL_PERIOD_MICROS);
            cfg.stateless_natives_local = true;
            cfg.array_object_granularity = true;
            cfg.max_offloads = 0;
            cfg.forced_surrogate = Some(biomer_manual_partition());
            let report = Emulator::new(cfg).replay(&trace);
            println!(
                "  {:<9} manual partitioning: {} ({:+.1}%)",
                "Manual",
                s(report.total_seconds()),
                report.overhead_fraction() * 100.0
            );
            series.push(serde_json::json!({
                "app": app.name,
                "variant": "Manual",
                "original_seconds": report.baseline_seconds,
                "total_seconds": report.total_seconds(),
                "offloaded": true,
            }));
        }
    }
    std::fs::create_dir_all("target/experiments").expect("experiments dir");
    std::fs::write(
        "target/experiments/fig10.json",
        serde_json::to_string_pretty(&series).expect("serializable"),
    )
    .expect("write fig10.json");
    println!("\nseries written to target/experiments/fig10.json");
}
