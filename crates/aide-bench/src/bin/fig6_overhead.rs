//! Figure 6: remote-execution overhead caused by the initial partitioning
//! policy (offloading threshold 5% free, free at least 20% of memory),
//! for the three memory-experiment applications at a 6 MB heap.

use aide_apps::memory_apps;
use aide_bench::{experiment_scale, header, pct, record_app, replay_memory_initial, s};

fn main() {
    let mut series = Vec::new();
    header(
        "Figure 6: remote execution overhead, initial policy (6 MB heap)",
        "Figure 6; paper: JavaNote 4.8%, Dia 8.5%, Biomer 27.5%",
    );
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "App", "Original", "Offloaded", "Overhead", "Transfer", "Comm"
    );
    for app in memory_apps(experiment_scale()) {
        let trace = record_app(&app);
        let report = replay_memory_initial(&trace);
        assert!(
            report.completed,
            "{} must complete with offloading",
            app.name
        );
        println!(
            "{:<10} {:>12} {:>12} {:>10} {:>12} {:>10}",
            app.name,
            s(report.baseline_seconds),
            s(report.total_seconds()),
            pct(report.overhead_fraction()),
            s(report.offload_transfer_seconds),
            s(report.comm_seconds),
        );
        series.push(serde_json::json!({
            "app": app.name,
            "original_seconds": report.baseline_seconds,
            "offloaded_seconds": report.total_seconds(),
            "overhead_fraction": report.overhead_fraction(),
            "transfer_seconds": report.offload_transfer_seconds,
            "comm_seconds": report.comm_seconds,
        }));
    }
    std::fs::create_dir_all("target/experiments").expect("experiments dir");
    std::fs::write(
        "target/experiments/fig6.json",
        serde_json::to_string_pretty(&series).expect("serializable"),
    )
    .expect("write fig6.json");
    println!("\nseries written to target/experiments/fig6.json");
    println!("paper shape: JavaNote < Dia << Biomer, all under ~30%");
}
