//! Shared helpers for the experiment harness binaries.
//!
//! Every table and figure of the paper's evaluation has a dedicated binary
//! in `src/bin/`; this library holds the recording, configuration, and
//! report-formatting code they share. See `EXPERIMENTS.md` at the workspace
//! root for the experiment index and paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aide_apps::{App, Scale};
use aide_emu::{record_program, Emulator, EmulatorConfig, EmulatorReport, Trace};

/// Scale used by the experiment binaries. Overridable with the
/// `AIDE_SCALE` environment variable (e.g. `AIDE_SCALE=0.1` for a quick
/// pass); defaults to the paper-sized workloads.
pub fn experiment_scale() -> Scale {
    Scale(
        std::env::var("AIDE_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0),
    )
}

/// Records an app on an unconstrained "PC" (64 MB heap), like the paper's
/// trace-extraction runs.
///
/// # Panics
///
/// Panics if the recording run fails (it cannot, with a 64 MB heap).
pub fn record_app(app: &App) -> Trace {
    record_program(app.name, app.program.clone(), 64 << 20)
        .unwrap_or_else(|e| panic!("recording {} failed: {e}", app.name))
}

/// The paper's §5.1 memory-experiment heap: 6 MB.
pub const PAPER_HEAP: u64 = 6 << 20;

/// The evaluation period for CPU experiments: enough accumulated work for
/// the execution graph to be representative before the first decision.
pub const CPU_EVAL_PERIOD_MICROS: f64 = 90_000_000.0;

/// Replays `trace` under the paper's initial memory policy at 6 MB.
pub fn replay_memory_initial(trace: &Trace) -> EmulatorReport {
    Emulator::new(EmulatorConfig::paper_memory(PAPER_HEAP)).replay(trace)
}

/// Builds the four Figure 10 configurations (Initial / Native / Array /
/// Combined) on top of the paper's CPU experiment setup.
pub fn fig10_configs() -> Vec<(&'static str, EmulatorConfig)> {
    let base = EmulatorConfig::paper_cpu(16 << 20, CPU_EVAL_PERIOD_MICROS);
    [
        ("Initial", false, false),
        ("Native", true, false),
        ("Array", false, true),
        ("Combined", true, true),
    ]
    .into_iter()
    .map(|(label, natives, arrays)| {
        let mut cfg = base.clone();
        cfg.stateless_natives_local = natives;
        cfg.array_object_granularity = arrays;
        (label, cfg)
    })
    .collect()
}

/// Formats seconds with one decimal.
pub fn s(v: f64) -> String {
    format!("{v:.1}s")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Prints a rules-style header for an experiment binary.
pub fn header(title: &str, paper_ref: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("(reproduces {paper_ref})");
    println!("{}", "=".repeat(72));
}

/// Prints a two-column aligned row.
pub fn row(label: &str, value: impl std::fmt::Display) {
    println!("  {label:<44} {value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(s(12.34), "12.3s");
        assert_eq!(pct(0.085), "8.5%");
    }

    #[test]
    fn fig10_configs_cover_the_four_variants() {
        let configs = fig10_configs();
        assert_eq!(configs.len(), 4);
        assert!(!configs[0].1.stateless_natives_local);
        assert!(configs[1].1.stateless_natives_local);
        assert!(configs[2].1.array_object_granularity);
        assert!(configs[3].1.stateless_natives_local && configs[3].1.array_object_granularity);
    }

    #[test]
    fn default_scale_is_full() {
        // (environment-dependent, but AIDE_SCALE is unset in CI)
        if std::env::var("AIDE_SCALE").is_err() {
            assert_eq!(experiment_scale().0, 1.0);
        }
    }
}
