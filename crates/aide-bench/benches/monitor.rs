//! Criterion: monitoring-module event-ingestion throughput — the cost the
//! paper measured as an 11% slowdown must stay cheap per event.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aide_core::{Monitor, TriggerConfig};
use aide_vm::{
    ClassId, Interaction, InteractionKind, MethodDef, MethodId, ObjectId, ProgramBuilder,
    RuntimeHooks,
};

fn monitor() -> Monitor {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    for i in 0..63 {
        b.add_class(format!("C{i}"));
    }
    b.add_method(main, MethodDef::new("main", vec![]));
    let p = Arc::new(b.build(main, MethodId(0), 0, 0).unwrap());
    Monitor::new(p, TriggerConfig::default(), Default::default())
}

fn bench_monitor(c: &mut Criterion) {
    let m = monitor();
    let mut i = 0u32;
    c.bench_function("monitor/on_interaction", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            m.on_interaction(black_box(Interaction {
                caller: ClassId(i % 64),
                callee: ClassId((i * 7 + 1) % 64),
                target: Some(ObjectId::client(u64::from(i % 1000))),
                kind: InteractionKind::Invocation,
                bytes: 64,
                remote: false,
            }))
        })
    });
    let m = monitor();
    c.bench_function("monitor/on_work", |b| {
        b.iter(|| m.on_work(black_box(ClassId(3)), black_box(12.5)))
    });
    let m = monitor();
    for k in 0..64u32 {
        m.on_alloc(ClassId(k), ObjectId::client(u64::from(k)), 128);
        m.on_interaction(Interaction {
            caller: ClassId(k),
            callee: ClassId((k + 1) % 64),
            target: None,
            kind: InteractionKind::Invocation,
            bytes: 8,
            remote: false,
        });
    }
    c.bench_function("monitor/snapshot_64_nodes", |b| {
        b.iter(|| black_box(m.snapshot()))
    });
}

criterion_group!(benches, bench_monitor);
criterion_main!(benches);
