//! Criterion: RPC wire-codec throughput and full endpoint round trips
//! (in-process and TCP carriers).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aide_graph::CommParams;
use aide_rpc::{tcp_pair, Dispatcher, Endpoint, EndpointConfig, Link, Message, Reply, Request};
use aide_vm::{ClassId, MethodId, ObjectId, ObjectRecord};

struct Echo;
impl Dispatcher for Echo {
    fn dispatch(&self, _request: Request) -> Result<Reply, String> {
        Ok(Reply::Unit)
    }
}

fn bench_codec(c: &mut Criterion) {
    let invoke = Message::Request {
        seq: 42,
        client: 1,
        body: Request::Invoke {
            target: ObjectId::surrogate(77),
            class: ClassId(13),
            method: MethodId(2),
            arg_bytes: 256,
            ret_bytes: 64,
            args: vec![
                ObjectId::client(1),
                ObjectId::client(2),
                ObjectId::client(3),
            ],
        },
    };
    c.bench_function("codec/encode_invoke", |b| {
        b.iter(|| black_box(invoke.encode()))
    });
    let frame = invoke.encode();
    c.bench_function("codec/decode_invoke", |b| {
        b.iter(|| Message::decode(black_box(&frame)).unwrap())
    });

    let migrate = Message::Request {
        seq: 7,
        client: 1,
        body: Request::Migrate {
            objects: (0..64)
                .map(|i| {
                    let mut rec = ObjectRecord::new(ClassId(5), 1_024, 4);
                    rec.slots[0] = Some(ObjectId::client(i));
                    (ObjectId::client(1_000 + i), rec)
                })
                .collect(),
        },
    };
    c.bench_function("codec/encode_migrate_64", |b| {
        b.iter(|| black_box(migrate.encode()))
    });
    let frame = migrate.encode();
    c.bench_function("codec/decode_migrate_64", |b| {
        b.iter(|| Message::decode(black_box(&frame)).unwrap())
    });
}

fn bench_round_trip(c: &mut Criterion) {
    let request = || Request::FieldAccess {
        target: ObjectId::surrogate(1),
        bytes: 64,
        write: false,
    };

    let (link, ct, st) = Link::pair(CommParams::WAVELAN);
    let clock = link.clock.clone();
    let client = Endpoint::start(
        ct,
        link.params,
        clock.clone(),
        Arc::new(Echo),
        EndpointConfig::default(),
    );
    let _surrogate = Endpoint::start(
        st,
        link.params,
        clock,
        Arc::new(Echo),
        EndpointConfig::default(),
    );
    c.bench_function("rpc/round_trip_in_process", |b| {
        b.iter(|| client.call(black_box(request())).unwrap())
    });

    let (link, ct, st) = tcp_pair(CommParams::WAVELAN).expect("localhost socket");
    let clock = link.clock.clone();
    let client = Endpoint::start(
        ct,
        link.params,
        clock.clone(),
        Arc::new(Echo),
        EndpointConfig::default(),
    );
    let _surrogate = Endpoint::start(
        st,
        link.params,
        clock,
        Arc::new(Echo),
        EndpointConfig::default(),
    );
    c.bench_function("rpc/round_trip_tcp", |b| {
        b.iter(|| client.call(black_box(request())).unwrap())
    });
}

criterion_group!(benches, bench_codec, bench_round_trip);
criterion_main!(benches);
