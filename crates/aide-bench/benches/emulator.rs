//! Criterion: emulator replay throughput — each Figure 7 sweep replays a
//! trace of ~10^6 events 90 times, so events/second matters.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use aide_apps::{javanote, Scale};
use aide_bench::record_app;
use aide_emu::{Emulator, EmulatorConfig};

fn bench_emulator(c: &mut Criterion) {
    let trace = record_app(&javanote(Scale(0.05)));
    let mut group = c.benchmark_group("emulator");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("replay_javanote_5pct", |b| {
        b.iter(|| {
            let emu = Emulator::new(EmulatorConfig::paper_memory(512 << 10));
            black_box(emu.replay(&trace))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_emulator);
criterion_main!(benches);
