//! Criterion: partitioning-algorithm performance — exact Stoer-Wagner vs
//! the modified-MINCUT candidate sweep, on synthetic execution graphs.
//! The paper reports ~0.1s for a 138-node graph on a 600 MHz Pentium.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use aide_graph::{
    candidate_partitionings, stoer_wagner, EdgeInfo, ExecutionGraph, NodeInfo, PinReason,
};

/// A synthetic execution graph: `n` nodes, ~8 edges per node, a few pinned.
fn graph(n: u32) -> ExecutionGraph {
    let mut g = ExecutionGraph::new();
    for i in 0..n {
        if i % 25 == 0 {
            g.add_node(NodeInfo::pinned(format!("N{i}"), PinReason::NativeMethods));
        } else {
            let mut info = NodeInfo::new(format!("N{i}"));
            info.memory_bytes = u64::from(i % 97) * 1_000;
            g.add_node(info);
        }
    }
    let ids: Vec<_> = g.node_ids().collect();
    for (i, &a) in ids.iter().enumerate() {
        for k in 1..=4usize {
            let b = ids[(i + k * k) % ids.len()];
            g.record_interaction(
                a,
                b,
                EdgeInfo::new(1 + (i as u64 % 13), (i as u64 * 37) % 4096),
            );
        }
    }
    g
}

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioning");
    for n in [34u32, 138, 300] {
        let g = graph(n);
        group.bench_with_input(BenchmarkId::new("stoer_wagner", n), &g, |b, g| {
            b.iter(|| stoer_wagner(black_box(g)))
        });
        group.bench_with_input(BenchmarkId::new("modified_mincut", n), &g, |b, g| {
            b.iter(|| candidate_partitionings(black_box(g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
