//! The weighted execution graph built by AIDE's monitoring module.
//!
//! A node represents an application *class* and is annotated with the amount
//! of live memory occupied by the objects of that class and the exclusive CPU
//! time spent in the class's methods (paper §3.4, Figure 9). An edge
//! represents the interactions between two classes and is annotated with the
//! number of interaction events (method invocations and data-field accesses)
//! and the total number of bytes passed between objects of the two classes.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node (class) in an [`ExecutionGraph`].
///
/// Node identifiers are dense indices assigned by the graph in insertion
/// order; they are only meaningful within the graph that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the node id as a dense `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Why a node must stay on the client device.
///
/// The partitioning heuristic seeds its first partition with every pinned
/// node (paper §3.3): classes containing native methods, classes holding
/// host-specific static data, and anything the embedding platform marks
/// unoffloadable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PinReason {
    /// The class contains native methods that touch client-local state
    /// (e.g. framebuffer access) and must execute on the client.
    NativeMethods,
    /// The class owns host-specific static data which AIDE keeps consistent
    /// by directing all static accesses to the client VM.
    StaticState,
    /// The platform or user explicitly pinned the class.
    Explicit,
}

impl fmt::Display for PinReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinReason::NativeMethods => f.write_str("native-methods"),
            PinReason::StaticState => f.write_str("static-state"),
            PinReason::Explicit => f.write_str("explicit"),
        }
    }
}

/// Per-class annotations carried by a graph node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// Human-readable class name (used in DOT output and reports).
    pub label: String,
    /// Bytes of heap currently occupied by live objects of this class.
    pub memory_bytes: u64,
    /// Exclusive execution time spent in this class's methods, in
    /// microseconds of client CPU time (nested calls into other classes are
    /// attributed to the callee — Figure 9).
    pub cpu_micros: u64,
    /// Number of live objects of this class.
    pub live_objects: u64,
    /// `Some` when the node cannot be offloaded and must remain client-side.
    pub pinned: Option<PinReason>,
}

impl NodeInfo {
    /// Creates an unpinned node with the given label and zeroed counters.
    pub fn new(label: impl Into<String>) -> Self {
        NodeInfo {
            label: label.into(),
            memory_bytes: 0,
            cpu_micros: 0,
            live_objects: 0,
            pinned: None,
        }
    }

    /// Creates a node pinned to the client for `reason`.
    pub fn pinned(label: impl Into<String>, reason: PinReason) -> Self {
        NodeInfo {
            pinned: Some(reason),
            ..NodeInfo::new(label)
        }
    }

    /// Returns `true` if this node must remain on the client device.
    #[inline]
    pub fn is_pinned(&self) -> bool {
        self.pinned.is_some()
    }
}

/// Interaction statistics attached to an edge between two classes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeInfo {
    /// Number of interaction events (method invocations + field accesses).
    pub interactions: u64,
    /// Total bytes exchanged (parameters, return values, field payloads).
    pub bytes: u64,
}

impl EdgeInfo {
    /// Creates edge statistics from an interaction count and byte total.
    pub fn new(interactions: u64, bytes: u64) -> Self {
        EdgeInfo {
            interactions,
            bytes,
        }
    }

    /// Accumulates another observation into this edge.
    #[inline]
    pub fn absorb(&mut self, other: EdgeInfo) {
        self.interactions += other.interactions;
        self.bytes += other.bytes;
    }

    /// The weight used by cut computations: total bytes transferred, plus one
    /// byte per interaction so that chatty zero-payload edges still register.
    #[inline]
    pub fn weight(&self) -> u64 {
        self.bytes + self.interactions
    }
}

/// Canonical (smaller, larger) ordering of an edge's endpoints.
#[inline]
fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A weighted, undirected execution graph over application classes.
///
/// # Examples
///
/// ```
/// use aide_graph::{ExecutionGraph, NodeInfo, EdgeInfo};
///
/// let mut g = ExecutionGraph::new();
/// let editor = g.add_node(NodeInfo::new("Editor"));
/// let buffer = g.add_node(NodeInfo::new("TextBuffer"));
/// g.record_interaction(editor, buffer, EdgeInfo::new(10, 4_096));
/// assert_eq!(g.edge(editor, buffer).unwrap().bytes, 4_096);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionGraph {
    nodes: Vec<NodeInfo>,
    #[serde(with = "edge_map_serde")]
    edges: BTreeMap<(NodeId, NodeId), EdgeInfo>,
}

/// Serializes the edge map as a sequence of `(a, b, info)` triples so the
/// graph can round-trip through formats (like JSON) whose maps require
/// string keys.
mod edge_map_serde {
    use super::{EdgeInfo, NodeId};
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::BTreeMap;

    pub fn serialize<S: Serializer>(
        edges: &BTreeMap<(NodeId, NodeId), EdgeInfo>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let triples: Vec<(NodeId, NodeId, EdgeInfo)> =
            edges.iter().map(|(&(a, b), &e)| (a, b, e)).collect();
        triples.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<BTreeMap<(NodeId, NodeId), EdgeInfo>, D::Error> {
        let triples = Vec::<(NodeId, NodeId, EdgeInfo)>::deserialize(de)?;
        Ok(triples.into_iter().map(|(a, b, e)| ((a, b), e)).collect())
    }
}

impl ExecutionGraph {
    /// Creates an empty execution graph.
    pub fn new() -> Self {
        ExecutionGraph::default()
    }

    /// Adds a node and returns its identifier.
    ///
    /// # Panics
    ///
    /// Panics if the graph already contains `u32::MAX` nodes.
    pub fn add_node(&mut self, info: NodeInfo) -> NodeId {
        let id = u32::try_from(self.nodes.len()).expect("graph node capacity exceeded");
        self.nodes.push(info);
        NodeId(id)
    }

    /// Number of nodes in the graph.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct edges (class pairs with recorded interactions).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node's annotations.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[inline]
    pub fn node(&self, id: NodeId) -> &NodeInfo {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node's annotations.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeInfo {
        &mut self.nodes[id.index()]
    }

    /// Looks up a node by its label, if present.
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.label == label)
            .map(|i| NodeId(i as u32))
    }

    /// Iterates over `(NodeId, &NodeInfo)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeInfo)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Iterates over all node identifiers.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + use<> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over the pinned nodes.
    pub fn pinned_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().filter(|(_, n)| n.is_pinned()).map(|(id, _)| id)
    }

    /// Returns the interaction statistics between `a` and `b`, if any.
    ///
    /// The graph is undirected; `edge(a, b)` and `edge(b, a)` are equivalent.
    pub fn edge(&self, a: NodeId, b: NodeId) -> Option<EdgeInfo> {
        self.edges.get(&ordered(a, b)).copied()
    }

    /// Records an interaction between two distinct classes, accumulating
    /// onto any existing edge.
    ///
    /// Interactions of a class with itself are ignored: the paper's monitor
    /// only records inter-class interactions (§5.1, "Information is recorded
    /// only for interactions between two different classes").
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range.
    pub fn record_interaction(&mut self, a: NodeId, b: NodeId, obs: EdgeInfo) {
        assert!(a.index() < self.nodes.len(), "node {a} out of range");
        assert!(b.index() < self.nodes.len(), "node {b} out of range");
        if a == b {
            return;
        }
        self.edges.entry(ordered(a, b)).or_default().absorb(obs);
    }

    /// Removes a node from consideration without disturbing the dense id
    /// space: zeroes its annotations, clears its pin, and removes every
    /// incident edge. Returns the removed incident edges.
    ///
    /// Node ids are dense insertion-order indices (see [`NodeId`]), so a
    /// true removal would invalidate every id held by monitors and
    /// partitionings; a tombstone keeps them stable. The label is kept for
    /// reports. Cost is O(E) (the edge map is scanned once).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn clear_node(&mut self, id: NodeId) -> Vec<(NodeId, EdgeInfo)> {
        assert!(id.index() < self.nodes.len(), "node {id} out of range");
        let info = &mut self.nodes[id.index()];
        info.memory_bytes = 0;
        info.cpu_micros = 0;
        info.live_objects = 0;
        info.pinned = None;
        let removed: Vec<(NodeId, EdgeInfo)> = self.neighbors(id).collect();
        self.edges.retain(|&(a, b), _| a != id && b != id);
        removed
    }

    /// Iterates over `((NodeId, NodeId), EdgeInfo)` for every edge.
    pub fn edges(&self) -> impl Iterator<Item = ((NodeId, NodeId), EdgeInfo)> + '_ {
        self.edges.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterates over the neighbours of `id` together with the connecting
    /// edge statistics.
    pub fn neighbors(&self, id: NodeId) -> impl Iterator<Item = (NodeId, EdgeInfo)> + '_ {
        self.edges.iter().filter_map(move |(&(a, b), &e)| {
            if a == id {
                Some((b, e))
            } else if b == id {
                Some((a, e))
            } else {
                None
            }
        })
    }

    /// Total heap memory attributed to all nodes, in bytes.
    pub fn total_memory(&self) -> u64 {
        self.nodes.iter().map(|n| n.memory_bytes).sum()
    }

    /// Total exclusive CPU time attributed to all nodes, in microseconds.
    pub fn total_cpu_micros(&self) -> u64 {
        self.nodes.iter().map(|n| n.cpu_micros).sum()
    }

    /// Total number of interaction events recorded on all edges.
    pub fn total_interactions(&self) -> u64 {
        self.edges.values().map(|e| e.interactions).sum()
    }

    /// Total number of bytes recorded on all edges.
    pub fn total_edge_bytes(&self) -> u64 {
        self.edges.values().map(|e| e.bytes).sum()
    }

    /// An estimate of the storage occupied by the graph itself, in bytes.
    ///
    /// The paper observes (Table 2 discussion) that the execution graph
    /// occupies a relatively small amount of storage because it aggregates
    /// millions of interaction events into a few thousand edges.
    pub fn storage_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| std::mem::size_of::<NodeInfo>() + n.label.len())
            .sum::<usize>()
            + self.edges.len()
                * (std::mem::size_of::<(NodeId, NodeId)>() + std::mem::size_of::<EdgeInfo>())
    }

    /// Sums the weight (see [`EdgeInfo::weight`]) of every edge crossing the
    /// cut defined by `in_client`, a predicate that returns `true` for nodes
    /// on the client side.
    pub fn cut_weight<F: Fn(NodeId) -> bool>(&self, in_client: F) -> u64 {
        self.edges
            .iter()
            .filter(|(&(a, b), _)| in_client(a) != in_client(b))
            .map(|(_, e)| e.weight())
            .sum()
    }

    /// Sums interaction counts and byte totals over the cut defined by
    /// `in_client`, returning aggregate [`EdgeInfo`] for the cut.
    pub fn cut_traffic<F: Fn(NodeId) -> bool>(&self, in_client: F) -> EdgeInfo {
        let mut total = EdgeInfo::default();
        for (&(a, b), e) in &self.edges {
            if in_client(a) != in_client(b) {
                total.absorb(*e);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_node_graph() -> (ExecutionGraph, NodeId, NodeId, NodeId) {
        let mut g = ExecutionGraph::new();
        let a = g.add_node(NodeInfo::new("A"));
        let b = g.add_node(NodeInfo::new("B"));
        let c = g.add_node(NodeInfo::pinned("C", PinReason::NativeMethods));
        g.record_interaction(a, b, EdgeInfo::new(3, 300));
        g.record_interaction(b, c, EdgeInfo::new(1, 10));
        (g, a, b, c)
    }

    #[test]
    fn add_node_assigns_dense_ids() {
        let (g, a, b, c) = three_node_graph();
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn edges_are_undirected_and_accumulate() {
        let (mut g, a, b, _) = three_node_graph();
        g.record_interaction(b, a, EdgeInfo::new(2, 50));
        let e = g.edge(a, b).unwrap();
        assert_eq!(e.interactions, 5);
        assert_eq!(e.bytes, 350);
        assert_eq!(g.edge(b, a), g.edge(a, b));
    }

    #[test]
    fn self_interactions_are_ignored() {
        let (mut g, a, _, _) = three_node_graph();
        let before = g.edge_count();
        g.record_interaction(a, a, EdgeInfo::new(100, 1000));
        assert_eq!(g.edge_count(), before);
    }

    #[test]
    fn neighbors_lists_incident_edges() {
        let (g, a, b, c) = three_node_graph();
        let mut nb: Vec<NodeId> = g.neighbors(b).map(|(n, _)| n).collect();
        nb.sort();
        assert_eq!(nb, vec![a, c]);
        assert_eq!(g.neighbors(a).count(), 1);
    }

    #[test]
    fn pinned_nodes_are_reported() {
        let (g, _, _, c) = three_node_graph();
        let pinned: Vec<NodeId> = g.pinned_nodes().collect();
        assert_eq!(pinned, vec![c]);
        assert_eq!(g.node(c).pinned, Some(PinReason::NativeMethods));
    }

    #[test]
    fn totals_aggregate_annotations() {
        let (mut g, a, b, _) = three_node_graph();
        g.node_mut(a).memory_bytes = 1000;
        g.node_mut(b).memory_bytes = 500;
        g.node_mut(a).cpu_micros = 70;
        assert_eq!(g.total_memory(), 1500);
        assert_eq!(g.total_cpu_micros(), 70);
        assert_eq!(g.total_interactions(), 4);
        assert_eq!(g.total_edge_bytes(), 310);
    }

    #[test]
    fn cut_weight_counts_crossing_edges_only() {
        let (g, a, _, _) = three_node_graph();
        // Cut {a} | {b, c}: only edge a-b crosses.
        let w = g.cut_weight(|n| n == a);
        assert_eq!(w, 303); // 300 bytes + 3 interactions
        let traffic = g.cut_traffic(|n| n == a);
        assert_eq!(traffic.interactions, 3);
        assert_eq!(traffic.bytes, 300);
    }

    #[test]
    fn cut_weight_of_trivial_partitions_is_zero() {
        let (g, _, _, _) = three_node_graph();
        assert_eq!(g.cut_weight(|_| true), 0);
        assert_eq!(g.cut_weight(|_| false), 0);
    }

    #[test]
    fn node_by_label_finds_nodes() {
        let (g, a, _, _) = three_node_graph();
        assert_eq!(g.node_by_label("A"), Some(a));
        assert_eq!(g.node_by_label("missing"), None);
    }

    #[test]
    fn storage_estimate_is_nonzero_and_small() {
        let (g, _, _, _) = three_node_graph();
        let s = g.storage_bytes();
        assert!(s > 0);
        assert!(s < 10_000);
    }

    #[test]
    fn clear_node_tombstones_and_drops_incident_edges() {
        let (mut g, a, b, c) = three_node_graph();
        g.node_mut(b).memory_bytes = 9_000;
        let removed = g.clear_node(b);
        assert_eq!(removed.len(), 2);
        assert_eq!(g.node_count(), 3, "ids stay dense");
        assert_eq!(g.node(b).memory_bytes, 0);
        assert!(g.node(b).pinned.is_none());
        assert_eq!(g.edge(a, b), None);
        assert_eq!(g.edge(b, c), None);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let (g, _, _, _) = three_node_graph();
        let json = serde_json::to_string(&g).unwrap();
        let back: ExecutionGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
