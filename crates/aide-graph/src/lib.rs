//! Execution graphs and partitioning for the AIDE distributed platform.
//!
//! This crate implements the *partitioning module* of the paper
//! "Towards a Distributed Platform for Resource-Constrained Devices"
//! (ICDCS 2002):
//!
//! * [`ExecutionGraph`] — the fully connected weighted graph the monitoring
//!   module builds from an application's execution history: nodes are
//!   classes annotated with live memory and exclusive CPU time, edges carry
//!   interaction counts and bytes transferred (paper §3.4).
//! * [`stoer_wagner`] — the exact global minimum cut, used as a baseline and
//!   test oracle.
//! * [`candidate_partitionings`] — the paper's modified-MINCUT heuristic,
//!   which pins unoffloadable classes to the client and emits every
//!   intermediate partitioning for policy evaluation (paper §3.3).
//! * [`PartitionPolicy`] implementations — [`MemoryPolicy`] ("free at least
//!   X% of the heap, minimize cut traffic"), [`CpuPolicy`] (predicted
//!   completion time with a beneficial-offloading gate), and
//!   [`CombinedPolicy`].
//!
//! # Examples
//!
//! Relieving memory pressure by offloading a document class:
//!
//! ```
//! use aide_graph::{
//!     candidate_partitionings, EdgeInfo, ExecutionGraph, MemoryPolicy, NodeInfo,
//!     PartitionPolicy, PinReason, ResourceSnapshot,
//! };
//!
//! let mut graph = ExecutionGraph::new();
//! let gui = graph.add_node(NodeInfo::pinned("Gui", PinReason::NativeMethods));
//! let doc = graph.add_node(NodeInfo::new("Document"));
//! graph.node_mut(doc).memory_bytes = 4_000_000;
//! graph.record_interaction(gui, doc, EdgeInfo::new(120, 24_000));
//!
//! let candidates = candidate_partitionings(&graph);
//! let policy = MemoryPolicy::new(0.20);
//! let snapshot = ResourceSnapshot::new(6_000_000, 5_800_000);
//! let decision = policy.select(&graph, snapshot, &candidates);
//! assert!(decision.is_some(), "offloading the document frees the heap");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod density;
mod dot;
mod graph;
mod heuristic;
mod incremental;
mod mincut;
mod partition;
mod policy;

pub use cost::{CommParams, CostFunction, CutBytes, CutInteractions, PredictedTime};
pub use density::density_candidates;
pub use dot::{to_dot, to_dot_annotated};
pub use graph::{EdgeInfo, ExecutionGraph, NodeId, NodeInfo, PinReason};
pub use heuristic::{
    candidate_partitionings, plan_candidates, plan_candidates_cached, CandidatePlan,
    CandidateSequence,
};
pub use incremental::{ChurnSummary, GraphDelta, IncrementalGraph};
pub use mincut::{stoer_wagner, MinCut};
pub use partition::{PartitionStats, Partitioning, Side};
pub use policy::{
    CombinedPolicy, CpuPolicy, EvalStrategy, MemoryPolicy, PartitionPolicy, ResourceSnapshot,
    SelectedPartition,
};
