//! Cost functions used to score candidate partitionings.
//!
//! The paper evaluates each intermediate partitioning "by applying a cost
//! function that represents part of the partitioning policy" (§3.3). The
//! prototype's cost function is the historical amount of information
//! transferred between the two partitions; the processing-constraint
//! experiments (§5.2) additionally predict completion time from per-class
//! execution times, the surrogate speed ratio, and WaveLAN link parameters.

use serde::{Deserialize, Serialize};

use crate::graph::ExecutionGraph;
use crate::partition::{PartitionStats, Partitioning};

/// Parameters of the client/surrogate communication link.
///
/// Defaults model the paper's measured 11 Mbps WaveLAN link with a 2.4 ms
/// round-trip time for a null message (§4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommParams {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Round-trip time of a null message, in seconds.
    pub rtt_seconds: f64,
}

impl CommParams {
    /// The paper's WaveLAN link: 11 Mbps, 2.4 ms null-message RTT.
    pub const WAVELAN: CommParams = CommParams {
        bandwidth_bps: 11.0e6,
        rtt_seconds: 2.4e-3,
    };

    /// Creates link parameters from a bandwidth (bits/second) and null-RTT
    /// (seconds).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive and finite.
    pub fn new(bandwidth_bps: f64, rtt_seconds: f64) -> Self {
        assert!(
            bandwidth_bps.is_finite() && bandwidth_bps > 0.0,
            "bandwidth must be positive, got {bandwidth_bps}"
        );
        assert!(
            rtt_seconds.is_finite() && rtt_seconds > 0.0,
            "rtt must be positive, got {rtt_seconds}"
        );
        CommParams {
            bandwidth_bps,
            rtt_seconds,
        }
    }

    /// Time to complete one synchronous remote interaction carrying
    /// `payload_bytes`, in seconds: one round trip plus serialization of the
    /// payload onto the link.
    #[inline]
    pub fn interaction_seconds(&self, payload_bytes: u64) -> f64 {
        self.rtt_seconds + (payload_bytes as f64 * 8.0) / self.bandwidth_bps
    }

    /// Time to bulk-transfer `bytes` (e.g. when offloading objects), in
    /// seconds: half a round trip of setup plus streaming of the data.
    #[inline]
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.rtt_seconds / 2.0 + (bytes as f64 * 8.0) / self.bandwidth_bps
    }
}

impl Default for CommParams {
    fn default() -> Self {
        CommParams::WAVELAN
    }
}

/// Scores a candidate partitioning; lower is better.
///
/// This trait is object-safe so policies can hold `Box<dyn CostFunction>`.
pub trait CostFunction: Send + Sync {
    /// A short human-readable name for reports.
    fn name(&self) -> &str;

    /// The cost of `candidate` over `graph`. `stats` are the precomputed
    /// [`PartitionStats`] for the candidate (callers compute them once and
    /// share them across cost functions).
    fn cost(&self, graph: &ExecutionGraph, candidate: &Partitioning, stats: &PartitionStats)
        -> f64;
}

/// The paper's prototype cost function: historical bytes transferred across
/// the cut. "Conceptually, this policy offloads a sufficient amount of
/// information while placing the smallest demand on network bandwidth."
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CutBytes;

impl CostFunction for CutBytes {
    fn name(&self) -> &str {
        "cut-bytes"
    }

    fn cost(&self, _: &ExecutionGraph, _: &Partitioning, stats: &PartitionStats) -> f64 {
        stats.cut.bytes as f64
    }
}

/// Scores by the number of interaction events crossing the cut, ignoring
/// payload sizes. Useful when per-message latency dominates (small RPCs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CutInteractions;

impl CostFunction for CutInteractions {
    fn name(&self) -> &str {
        "cut-interactions"
    }

    fn cost(&self, _: &ExecutionGraph, _: &Partitioning, stats: &PartitionStats) -> f64 {
        stats.cut.interactions as f64
    }
}

/// Predicted completion time of the application under a candidate placement
/// (§5.2): client-side exclusive time at client speed, offloaded exclusive
/// time divided by the surrogate speed ratio, plus one link round trip per
/// crossing interaction and serialization of crossing bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedTime {
    /// Link parameters used to price crossing interactions.
    pub comm: CommParams,
    /// Surrogate CPU speed as a multiple of client CPU speed (the paper
    /// measured 3.5× between a PC and a Jornada 547).
    pub surrogate_speedup: f64,
}

impl PredictedTime {
    /// Creates a predictor with the given link and speed ratio.
    ///
    /// # Panics
    ///
    /// Panics if `surrogate_speedup` is not strictly positive and finite.
    pub fn new(comm: CommParams, surrogate_speedup: f64) -> Self {
        assert!(
            surrogate_speedup.is_finite() && surrogate_speedup > 0.0,
            "surrogate speedup must be positive, got {surrogate_speedup}"
        );
        PredictedTime {
            comm,
            surrogate_speedup,
        }
    }

    /// Predicted completion time of the *unpartitioned* application, i.e.
    /// all exclusive time executed at client speed, in seconds.
    pub fn unpartitioned_seconds(&self, graph: &ExecutionGraph) -> f64 {
        graph.total_cpu_micros() as f64 / 1e6
    }

    /// Predicted completion time for `stats`, in seconds.
    pub fn predicted_seconds(&self, stats: &PartitionStats) -> f64 {
        let client = stats.client_cpu_micros as f64 / 1e6;
        let remote = stats.offloaded_cpu_micros as f64 / 1e6 / self.surrogate_speedup;
        let comm = stats.cut.interactions as f64 * self.comm.rtt_seconds
            + (stats.cut.bytes as f64 * 8.0) / self.comm.bandwidth_bps;
        client + remote + comm
    }
}

impl Default for PredictedTime {
    fn default() -> Self {
        PredictedTime::new(CommParams::WAVELAN, 3.5)
    }
}

impl CostFunction for PredictedTime {
    fn name(&self) -> &str {
        "predicted-time"
    }

    fn cost(&self, _: &ExecutionGraph, _: &Partitioning, stats: &PartitionStats) -> f64 {
        self.predicted_seconds(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeInfo, NodeInfo};
    use crate::partition::Side;

    #[test]
    fn wavelan_defaults_match_paper() {
        let c = CommParams::default();
        assert_eq!(c.bandwidth_bps, 11.0e6);
        assert_eq!(c.rtt_seconds, 2.4e-3);
    }

    #[test]
    fn null_interaction_costs_one_rtt() {
        let c = CommParams::WAVELAN;
        assert!((c.interaction_seconds(0) - 2.4e-3).abs() < 1e-12);
    }

    #[test]
    fn interaction_cost_scales_with_payload() {
        let c = CommParams::new(8.0e6, 1.0e-3); // 1 MB/s
                                                // 1000 bytes = 8000 bits = 1 ms on the link, plus 1 ms RTT.
        assert!((c.interaction_seconds(1_000) - 2.0e-3).abs() < 1e-9);
    }

    #[test]
    fn transfer_uses_half_rtt_setup() {
        let c = CommParams::new(8.0e6, 2.0e-3);
        assert!((c.transfer_seconds(0) - 1.0e-3).abs() < 1e-12);
        assert!((c.transfer_seconds(1_000_000) - (1.0e-3 + 1.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = CommParams::new(0.0, 1e-3);
    }

    #[test]
    #[should_panic(expected = "rtt must be positive")]
    fn negative_rtt_rejected() {
        let _ = CommParams::new(1e6, -1.0);
    }

    fn split_graph() -> (ExecutionGraph, Partitioning) {
        let mut g = ExecutionGraph::new();
        let a = g.add_node(NodeInfo::new("A"));
        let b = g.add_node(NodeInfo::new("B"));
        g.node_mut(a).cpu_micros = 7_000_000; // 7 s
        g.node_mut(b).cpu_micros = 3_500_000; // 3.5 s
        g.record_interaction(a, b, EdgeInfo::new(100, 11_000_000 / 8));
        let mut p = Partitioning::all_client(&g);
        p.set_side(b, Side::Surrogate);
        (g, p)
    }

    #[test]
    fn cut_bytes_scores_historical_traffic() {
        let (g, p) = split_graph();
        let stats = p.stats(&g);
        assert_eq!(CutBytes.cost(&g, &p, &stats), 11_000_000.0 / 8.0);
        assert_eq!(CutInteractions.cost(&g, &p, &stats), 100.0);
    }

    #[test]
    fn predicted_time_combines_cpu_and_comm() {
        let (g, p) = split_graph();
        let stats = p.stats(&g);
        let pt = PredictedTime::default();
        // client 7 s + remote 3.5/3.5 = 1 s + comm (100 * 2.4ms + 1 s of link).
        let expected = 7.0 + 1.0 + 0.24 + 1.0;
        assert!((pt.predicted_seconds(&stats) - expected).abs() < 1e-9);
        assert!((pt.unpartitioned_seconds(&g) - 10.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "surrogate speedup must be positive")]
    fn invalid_speedup_rejected() {
        let _ = PredictedTime::new(CommParams::WAVELAN, f64::NAN);
    }

    #[test]
    fn cost_functions_are_object_safe() {
        let fns: Vec<Box<dyn CostFunction>> = vec![
            Box::new(CutBytes),
            Box::new(CutInteractions),
            Box::new(PredictedTime::default()),
        ];
        let (g, p) = split_graph();
        let stats = p.stats(&g);
        for f in &fns {
            assert!(f.cost(&g, &p, &stats) >= 0.0, "{} negative", f.name());
        }
    }
}
