//! AIDE's modified-MINCUT partitioning heuristic (paper §3.3).
//!
//! The exact Stoer–Wagner minimum cut may "simply remove a single component,
//! which may not free enough memory to satisfy the partitioning policy". The
//! modified heuristic therefore produces a *group* of approximate minimum-cut
//! partitionings: it seeds the client partition with every node that cannot
//! be offloaded (classes with native methods, host-specific static state),
//! then repeatedly moves the unpinned node with the greatest connectivity to
//! the client partition, recording every intermediate partitioning. The
//! partitioning policy evaluates all candidates and keeps the best feasible
//! one — which need not be the minimum-interaction cut.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::{ExecutionGraph, NodeId};
use crate::partition::{Partitioning, Side};

/// An ordered sequence of candidate partitionings produced by
/// [`candidate_partitionings`].
///
/// The first candidate offloads every unpinned node; each subsequent
/// candidate moves one more node back to the client; the final candidate
/// leaves exactly one node offloaded. The number of candidates is therefore
/// equal to the number of unpinned nodes, which the paper notes is "smaller
/// than the number of components" evaluated by exhaustive search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSequence {
    candidates: Vec<Partitioning>,
    move_order: Vec<NodeId>,
}

impl CandidateSequence {
    /// An empty sequence (no unpinned nodes, or a graph too small to cut).
    pub fn empty() -> Self {
        CandidateSequence {
            candidates: Vec::new(),
            move_order: Vec::new(),
        }
    }

    /// Assembles a sequence from explicit parts — used by alternative
    /// heuristics (see [`crate::density_candidates`]) that produce their
    /// own candidate orderings.
    pub fn from_parts(candidates: Vec<Partitioning>, move_order: Vec<NodeId>) -> Self {
        CandidateSequence {
            candidates,
            move_order,
        }
    }

    /// The candidate partitionings, from most-offloaded to least-offloaded.
    pub fn candidates(&self) -> &[Partitioning] {
        &self.candidates
    }

    /// The order in which unpinned nodes were pulled into the client
    /// partition (greatest connectivity first).
    pub fn move_order(&self) -> &[NodeId] {
        &self.move_order
    }

    /// Number of candidate partitionings.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Returns `true` if the heuristic produced no candidates (every node
    /// pinned, or fewer than two nodes).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Iterates over the candidates.
    pub fn iter(&self) -> impl Iterator<Item = &Partitioning> {
        self.candidates.iter()
    }
}

/// Runs the modified-MINCUT heuristic over `graph`.
///
/// Pinned nodes (see [`crate::NodeInfo::pinned`]) always remain on the
/// client in every candidate. If no node is pinned, the unpinned node with
/// the greatest total incident weight seeds the client partition (mirroring
/// Stoer–Wagner's arbitrary start vertex, but deterministic).
///
/// Candidates never offload zero nodes (that is the trivial "do not offload"
/// decision, which the policy layer takes by rejecting all candidates) and
/// never offload pinned nodes.
///
/// # Examples
///
/// ```
/// use aide_graph::{ExecutionGraph, NodeInfo, EdgeInfo, PinReason};
/// use aide_graph::candidate_partitionings;
///
/// let mut g = ExecutionGraph::new();
/// let ui = g.add_node(NodeInfo::pinned("Ui", PinReason::NativeMethods));
/// let doc = g.add_node(NodeInfo::new("Document"));
/// let idx = g.add_node(NodeInfo::new("Index"));
/// g.record_interaction(ui, doc, EdgeInfo::new(10, 100));
/// g.record_interaction(doc, idx, EdgeInfo::new(50, 5_000));
///
/// let seq = candidate_partitionings(&g);
/// // Two unpinned nodes -> two candidates.
/// assert_eq!(seq.len(), 2);
/// // Every candidate keeps the pinned UI class on the client.
/// assert!(seq.iter().all(|p| p.is_client(ui)));
/// ```
pub fn candidate_partitionings(graph: &ExecutionGraph) -> CandidateSequence {
    plan_candidates(graph).materialize()
}

/// A compact description of the heuristic's candidate sequence: the base
/// (most-offloaded) placement plus the ordered node moves that derive each
/// subsequent candidate.
///
/// Candidate `i` is the base with the first `i` moves applied. The plan is
/// O(V) storage regardless of candidate count, so the incremental
/// partitioner can evaluate a 10k-class sweep without materializing the
/// O(V²) [`CandidateSequence`]; [`materialize`](CandidatePlan::materialize)
/// reproduces the classic sequence bit-for-bit when callers want it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidatePlan {
    base: Partitioning,
    /// Every node pulled into the client, greatest connectivity first —
    /// including the seed pull (already reflected in `base`).
    move_order: Vec<NodeId>,
    /// Leading entries of `move_order` already applied to `base` (0 or 1).
    seed_moves: usize,
    /// Number of candidates the plan describes.
    len: usize,
}

impl CandidatePlan {
    fn empty(node_count: usize) -> Self {
        CandidatePlan {
            base: Partitioning::from_sides(vec![Side::Client; node_count]),
            move_order: Vec::new(),
            seed_moves: 0,
            len: 0,
        }
    }

    /// The most-offloaded candidate (candidate 0).
    pub fn base(&self) -> &Partitioning {
        &self.base
    }

    /// The order in which nodes were pulled into the client partition,
    /// including the no-pin seed pull (compare
    /// [`CandidateSequence::move_order`]).
    pub fn move_order(&self) -> &[NodeId] {
        &self.move_order
    }

    /// The moves applied *after* the base placement: candidate `i` is the
    /// base with `moves()[..i]` applied.
    pub fn moves(&self) -> &[NodeId] {
        &self.move_order[self.seed_moves..]
    }

    /// Number of candidates described by the plan.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the plan describes no candidates.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Materializes candidate `index` (O(V + index)).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn candidate(&self, index: usize) -> Partitioning {
        assert!(index < self.len, "candidate {index} out of range");
        let mut p = self.base.clone();
        for &v in &self.moves()[..index] {
            p.set_side(v, Side::Client);
        }
        p
    }

    /// Materializes the full [`CandidateSequence`], identical to what
    /// [`candidate_partitionings`] has always produced.
    pub fn materialize(&self) -> CandidateSequence {
        if self.len == 0 {
            return CandidateSequence::empty();
        }
        let mut candidates = Vec::with_capacity(self.len);
        candidates.push(self.base.clone());
        let mut current = self.base.clone();
        for &v in self.moves() {
            current.set_side(v, Side::Client);
            candidates.push(current.clone());
        }
        CandidateSequence {
            candidates,
            move_order: self.move_order.clone(),
        }
    }
}

/// Plans the modified-MINCUT candidate sweep without materializing the
/// candidates (see [`CandidatePlan`]). Equivalent to
/// [`candidate_partitionings`] but O((V + E) log V) instead of O(V²).
pub fn plan_candidates(graph: &ExecutionGraph) -> CandidatePlan {
    plan_with(graph, None)
}

/// Like [`plan_candidates`], but reuses externally cached per-node
/// strengths (total incident edge weight, as maintained by
/// [`crate::IncrementalGraph`]) for the no-pin seed selection instead of
/// re-deriving them with an O(V·E) scan.
///
/// # Panics
///
/// Panics if `strengths.len() != graph.node_count()`.
pub fn plan_candidates_cached(graph: &ExecutionGraph, strengths: &[u64]) -> CandidatePlan {
    assert_eq!(
        strengths.len(),
        graph.node_count(),
        "strength cache covers {} nodes but graph has {}",
        strengths.len(),
        graph.node_count()
    );
    plan_with(graph, Some(strengths))
}

fn plan_with(graph: &ExecutionGraph, cached_strengths: Option<&[u64]>) -> CandidatePlan {
    let n = graph.node_count();
    if n < 2 {
        return CandidatePlan::empty(n);
    }

    // connectivity[v] = total edge weight between v and the client partition.
    let mut connectivity = vec![0u64; n];
    let mut in_client = vec![false; n];
    let mut unpinned = 0usize;

    for (id, node) in graph.iter() {
        if node.is_pinned() {
            in_client[id.index()] = true;
        } else {
            unpinned += 1;
        }
    }
    if unpinned == 0 {
        return CandidatePlan::empty(n);
    }

    for ((a, b), e) in graph.edges() {
        if in_client[a.index()] && !in_client[b.index()] {
            connectivity[b.index()] += e.weight();
        } else if in_client[b.index()] && !in_client[a.index()] {
            connectivity[a.index()] += e.weight();
        }
    }

    // With no pinned seed, start from the unpinned node with the greatest
    // total incident weight (deterministic Stoer–Wagner-style start vertex).
    let mut move_order: Vec<NodeId> = Vec::with_capacity(unpinned);
    let mut seed_moves = 0usize;
    if graph.pinned_nodes().next().is_none() {
        let seed = match cached_strengths {
            Some(strengths) => graph
                .node_ids()
                .max_by_key(|&v| (strengths[v.index()], Reverse(v)))
                .expect("graph is nonempty"),
            None => graph
                .node_ids()
                .max_by_key(|&v| {
                    let w: u64 = graph.neighbors(v).map(|(_, e)| e.weight()).sum();
                    (w, Reverse(v))
                })
                .expect("graph is nonempty"),
        };
        pull_into_client(graph, seed, &mut in_client, &mut connectivity);
        move_order.push(seed);
        seed_moves = 1;
    }

    // The base placement: pinned (+seed) on client, everything else offloaded.
    let base = Partitioning::from_sides(
        in_client
            .iter()
            .map(|&c| if c { Side::Client } else { Side::Surrogate })
            .collect(),
    );

    // Lazy-invalidation max-heap over (connectivity, smallest-id-wins).
    // Connectivity only grows during the sweep, so a popped entry is stale
    // exactly when it no longer matches the live value; the selection key
    // (connectivity, Reverse(v)) is unique per node, which makes the heap
    // order identical to a linear `max_by_key` scan.
    let mut heap: BinaryHeap<(u64, Reverse<NodeId>)> = graph
        .node_ids()
        .filter(|&v| !in_client[v.index()])
        .map(|v| (connectivity[v.index()], Reverse(v)))
        .collect();

    let mut offloaded = base.offloaded_count();
    let total_candidates = if offloaded == 0 { 0 } else { offloaded };
    // Move nodes one at a time until exactly one node remains offloaded.
    while offloaded > 1 {
        let next = loop {
            let (c, Reverse(v)) = heap.pop().expect("at least two nodes remain offloaded");
            if !in_client[v.index()] && connectivity[v.index()] == c {
                break v;
            }
        };
        in_client[next.index()] = true;
        for (nb, e) in graph.neighbors(next) {
            if !in_client[nb.index()] {
                connectivity[nb.index()] += e.weight();
                heap.push((connectivity[nb.index()], Reverse(nb)));
            }
        }
        move_order.push(next);
        offloaded -= 1;
    }

    CandidatePlan {
        base,
        move_order,
        seed_moves,
        len: total_candidates,
    }
}

/// Moves `v` into the client partition, updating neighbour connectivity.
fn pull_into_client(
    graph: &ExecutionGraph,
    v: NodeId,
    in_client: &mut [bool],
    connectivity: &mut [u64],
) {
    debug_assert!(!in_client[v.index()]);
    in_client[v.index()] = true;
    for (nb, e) in graph.neighbors(v) {
        if !in_client[nb.index()] {
            connectivity[nb.index()] += e.weight();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeInfo, NodeInfo, PinReason};
    use crate::mincut::stoer_wagner;

    fn bytes(b: u64) -> EdgeInfo {
        EdgeInfo::new(0, b)
    }

    #[test]
    fn empty_graph_yields_no_candidates() {
        let g = ExecutionGraph::new();
        assert!(candidate_partitionings(&g).is_empty());
    }

    #[test]
    fn fully_pinned_graph_yields_no_candidates() {
        let mut g = ExecutionGraph::new();
        let a = g.add_node(NodeInfo::pinned("A", PinReason::NativeMethods));
        let b = g.add_node(NodeInfo::pinned("B", PinReason::StaticState));
        g.record_interaction(a, b, bytes(5));
        assert!(candidate_partitionings(&g).is_empty());
    }

    #[test]
    fn candidate_count_matches_unpinned_nodes_with_pins() {
        let mut g = ExecutionGraph::new();
        let p = g.add_node(NodeInfo::pinned("P", PinReason::NativeMethods));
        let ids: Vec<NodeId> = (0..5)
            .map(|i| g.add_node(NodeInfo::new(format!("N{i}"))))
            .collect();
        for &id in &ids {
            g.record_interaction(p, id, bytes(1));
        }
        let seq = candidate_partitionings(&g);
        // Candidates: 5 offloaded, 4, 3, 2, 1 -> five candidates.
        assert_eq!(seq.len(), 5);
        assert_eq!(seq.candidates()[0].offloaded_count(), 5);
        assert_eq!(seq.candidates().last().unwrap().offloaded_count(), 1);
    }

    #[test]
    fn without_pins_seed_consumes_one_candidate() {
        let mut g = ExecutionGraph::new();
        let ids: Vec<NodeId> = (0..4)
            .map(|i| g.add_node(NodeInfo::new(format!("N{i}"))))
            .collect();
        g.record_interaction(ids[0], ids[1], bytes(10));
        g.record_interaction(ids[1], ids[2], bytes(10));
        g.record_interaction(ids[2], ids[3], bytes(10));
        let seq = candidate_partitionings(&g);
        // Seed takes one node to the client: candidates offload 3, 2, 1.
        assert_eq!(seq.len(), 3);
        assert!(seq.iter().all(|c| c.offloaded_count() >= 1));
    }

    #[test]
    fn pinned_nodes_stay_on_client_in_every_candidate() {
        let mut g = ExecutionGraph::new();
        let native = g.add_node(NodeInfo::pinned("Gui", PinReason::NativeMethods));
        let stat = g.add_node(NodeInfo::pinned("SysProps", PinReason::StaticState));
        let ids: Vec<NodeId> = (0..6)
            .map(|i| g.add_node(NodeInfo::new(format!("N{i}"))))
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            g.record_interaction(native, id, bytes(i as u64 + 1));
            g.record_interaction(stat, id, bytes(1));
        }
        let seq = candidate_partitionings(&g);
        for cand in seq.iter() {
            assert!(cand.is_client(native));
            assert!(cand.is_client(stat));
        }
    }

    #[test]
    fn moves_follow_greatest_connectivity() {
        let mut g = ExecutionGraph::new();
        let p = g.add_node(NodeInfo::pinned("P", PinReason::Explicit));
        let hot = g.add_node(NodeInfo::new("Hot"));
        let warm = g.add_node(NodeInfo::new("Warm"));
        let cold = g.add_node(NodeInfo::new("Cold"));
        g.record_interaction(p, hot, bytes(1_000));
        g.record_interaction(p, warm, bytes(100));
        g.record_interaction(p, cold, bytes(1));
        let seq = candidate_partitionings(&g);
        assert_eq!(seq.move_order(), &[hot, warm]);
        // Final candidate leaves only the coldest node offloaded.
        let last = seq.candidates().last().unwrap();
        assert_eq!(last.offloaded_count(), 1);
        assert!(!last.is_client(cold));
    }

    #[test]
    fn connectivity_updates_consider_transitive_pull() {
        // chain P --100-- A --1000-- B : after A joins the client, B's
        // connectivity jumps past C (connected to P with 500).
        let mut g = ExecutionGraph::new();
        let p = g.add_node(NodeInfo::pinned("P", PinReason::Explicit));
        let a = g.add_node(NodeInfo::new("A"));
        let b = g.add_node(NodeInfo::new("B"));
        let c = g.add_node(NodeInfo::new("C"));
        g.record_interaction(p, a, bytes(600));
        g.record_interaction(a, b, bytes(1_000));
        g.record_interaction(p, c, bytes(500));
        let seq = candidate_partitionings(&g);
        assert_eq!(seq.move_order(), &[a, b]);
    }

    #[test]
    fn candidate_sequence_contains_a_cut_no_worse_than_stoer_wagner_on_paths() {
        // On a path graph with a pinned endpoint, the heuristic's sweep
        // passes through the exact minimum cut.
        let mut g = ExecutionGraph::new();
        let mut prev = g.add_node(NodeInfo::pinned("P", PinReason::Explicit));
        let weights = [40, 10, 3, 70, 22];
        for (i, &w) in weights.iter().enumerate() {
            let next = g.add_node(NodeInfo::new(format!("N{i}")));
            g.record_interaction(prev, next, bytes(w));
            prev = next;
        }
        let exact = stoer_wagner(&g).unwrap().weight;
        let seq = candidate_partitionings(&g);
        let best = seq
            .iter()
            .map(|c| g.cut_weight(|v| c.is_client(v)))
            .min()
            .unwrap();
        assert_eq!(best, exact);
    }

    #[test]
    fn plan_materializes_to_the_classic_sequence() {
        for pinned in [true, false] {
            let mut g = ExecutionGraph::new();
            let first = if pinned {
                g.add_node(NodeInfo::pinned("P", PinReason::Explicit))
            } else {
                g.add_node(NodeInfo::new("P"))
            };
            let ids: Vec<NodeId> = (0..6)
                .map(|i| g.add_node(NodeInfo::new(format!("N{i}"))))
                .collect();
            for (i, &id) in ids.iter().enumerate() {
                g.record_interaction(first, id, bytes((i as u64 * 13) % 7 + 1));
                if i > 0 {
                    g.record_interaction(ids[i - 1], id, bytes(i as u64 * 3));
                }
            }
            let plan = plan_candidates(&g);
            let seq = candidate_partitionings(&g);
            assert_eq!(plan.materialize(), seq);
            assert_eq!(plan.len(), seq.len());
            assert_eq!(plan.move_order(), seq.move_order());
            for (i, cand) in seq.iter().enumerate() {
                assert_eq!(&plan.candidate(i), cand, "candidate {i} (pinned={pinned})");
            }
        }
    }

    #[test]
    fn cached_strengths_do_not_change_the_plan() {
        let mut g = ExecutionGraph::new();
        let ids: Vec<NodeId> = (0..5)
            .map(|i| g.add_node(NodeInfo::new(format!("N{i}"))))
            .collect();
        g.record_interaction(ids[0], ids[1], bytes(10));
        g.record_interaction(ids[1], ids[2], bytes(40));
        g.record_interaction(ids[2], ids[3], bytes(5));
        g.record_interaction(ids[3], ids[4], bytes(70));
        let mut strengths = vec![0u64; g.node_count()];
        for ((a, b), e) in g.edges() {
            strengths[a.index()] += e.weight();
            strengths[b.index()] += e.weight();
        }
        assert_eq!(plan_candidates_cached(&g, &strengths), plan_candidates(&g));
    }

    #[test]
    #[should_panic(expected = "strength cache covers")]
    fn cached_strengths_must_match_node_count() {
        let mut g = ExecutionGraph::new();
        g.add_node(NodeInfo::new("A"));
        g.add_node(NodeInfo::new("B"));
        let _ = plan_candidates_cached(&g, &[0]);
    }

    #[test]
    fn empty_plan_for_tiny_or_fully_pinned_graphs() {
        let g = ExecutionGraph::new();
        assert!(plan_candidates(&g).is_empty());
        let mut g = ExecutionGraph::new();
        let a = g.add_node(NodeInfo::pinned("A", PinReason::NativeMethods));
        let b = g.add_node(NodeInfo::pinned("B", PinReason::StaticState));
        g.record_interaction(a, b, bytes(5));
        let plan = plan_candidates(&g);
        assert!(plan.is_empty());
        assert_eq!(plan.base().len(), 2, "empty plan still covers the graph");
    }

    #[test]
    fn every_candidate_is_a_complete_two_partition() {
        let mut g = ExecutionGraph::new();
        let p = g.add_node(NodeInfo::pinned("P", PinReason::Explicit));
        let ids: Vec<NodeId> = (0..8)
            .map(|i| g.add_node(NodeInfo::new(format!("N{i}"))))
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            g.record_interaction(p, id, bytes((i as u64 % 3) + 1));
            if i > 0 {
                g.record_interaction(ids[i - 1], id, bytes(i as u64));
            }
        }
        let seq = candidate_partitionings(&g);
        for cand in seq.iter() {
            assert_eq!(cand.len(), g.node_count());
            let offloaded = cand.offloaded_count();
            let client = cand.nodes_on(Side::Client).count();
            assert_eq!(offloaded + client, g.node_count());
        }
        // Offloaded counts strictly decrease through the sequence.
        let counts: Vec<usize> = seq.iter().map(|c| c.offloaded_count()).collect();
        for w in counts.windows(2) {
            assert_eq!(w[0], w[1] + 1);
        }
    }
}
