//! Incremental maintenance of an [`ExecutionGraph`] from a delta stream.
//!
//! The paper's monitor rebuilds the execution graph at every decision
//! epoch. That is fine at 138 classes but caps the platform at toy graph
//! sizes: a from-scratch rebuild plus heuristic plus policy pass costs
//! O(V·(V+E)) per epoch. This module lets the monitor publish
//! [`GraphDelta`]s instead and applies them in O(delta) each, keeping two
//! derived structures warm between epochs:
//!
//! * the graph itself, always equal to what a from-scratch rebuild from
//!   the same history would produce (the equivalence proptests in
//!   `tests/incremental_equivalence.rs` pin this down), and
//! * a per-node **strength** cache (total incident edge weight), which the
//!   heuristic's seed selection reuses instead of re-deriving it with an
//!   O(V·E) scan.
//!
//! The struct also accounts **churn**: how much weight the deltas since
//! the last evaluation moved. The partitioner's dirty-region shortcut
//! skips whole epochs when churn stays below a configured threshold.

use serde::{Deserialize, Serialize};

use crate::graph::{EdgeInfo, ExecutionGraph, NodeId, NodeInfo, PinReason};

/// One observed change to an execution graph.
///
/// Deltas are the wire/state format between the monitoring module and the
/// incremental partitioner: the monitor drains a batch per decision epoch
/// and the partitioner applies each in O(delta) (O(E) for
/// [`GraphDelta::RemoveNode`], which is rare).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GraphDelta {
    /// A class (or object-granular array) appeared: append a node. The
    /// annotations carry the values observed so far, so a node born and
    /// mutated within one epoch needs a single delta.
    AddNode {
        /// Human-readable class name.
        label: String,
        /// `Some` when the node can never be offloaded.
        pinned: Option<PinReason>,
        /// Live heap bytes attributed to the node.
        memory_bytes: u64,
        /// Exclusive CPU time attributed to the node, in microseconds.
        cpu_micros: u64,
        /// Live objects of the node's class.
        live_objects: u64,
    },
    /// Absolute refresh of a node's resource annotations. Absolute (not
    /// additive) so the monitor's clamping (negative balances floor at
    /// zero, fractional microseconds round) happens exactly once, on the
    /// producer side.
    UpdateNode {
        /// The node whose annotations changed.
        node: NodeId,
        /// New live heap bytes.
        memory_bytes: u64,
        /// New exclusive CPU microseconds.
        cpu_micros: u64,
        /// New live object count.
        live_objects: u64,
    },
    /// A node's pin changed (a class was marked or unmarked offloadable).
    SetPinned {
        /// The node whose pin changed.
        node: NodeId,
        /// The new pin state.
        pinned: Option<PinReason>,
    },
    /// Additional interactions observed between two classes. Additive:
    /// edge statistics only ever accumulate. Self-interactions (`a == b`)
    /// are ignored, mirroring [`ExecutionGraph::record_interaction`].
    Interaction {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// The increment to absorb into the edge.
        delta: EdgeInfo,
    },
    /// A node left the graph (class unloaded). Applied as a tombstone —
    /// annotations zeroed, pin cleared, incident edges removed — because
    /// node ids are dense insertion-order indices that must stay stable.
    RemoveNode {
        /// The node to tombstone.
        node: NodeId,
    },
}

/// Churn accumulated by [`IncrementalGraph::apply`] since the last
/// [`IncrementalGraph::take_churn`].
///
/// `weight` is measured in edge-weight-equivalent units: interaction
/// deltas contribute their [`EdgeInfo::weight`], annotation updates the
/// absolute change in bytes and microseconds. `structural` flags changes
/// (node add/remove, pin flips) that invalidate any cached decision
/// outright, regardless of weight.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnSummary {
    /// Weight-equivalent magnitude of the applied deltas.
    pub weight: u64,
    /// Number of deltas applied.
    pub deltas: u64,
    /// Whether any delta changed the graph's structure or pin set.
    pub structural: bool,
}

impl ChurnSummary {
    /// Folds another summary into this one.
    pub fn absorb(&mut self, other: ChurnSummary) {
        self.weight = self.weight.saturating_add(other.weight);
        self.deltas += other.deltas;
        self.structural |= other.structural;
    }
}

/// An [`ExecutionGraph`] maintained incrementally from [`GraphDelta`]s,
/// with a warm per-node strength cache and churn accounting.
///
/// # Examples
///
/// ```
/// use aide_graph::{EdgeInfo, GraphDelta, IncrementalGraph, NodeId};
///
/// let mut inc = IncrementalGraph::new();
/// for label in ["Editor", "Buffer"] {
///     inc.apply(&GraphDelta::AddNode {
///         label: label.into(),
///         pinned: None,
///         memory_bytes: 0,
///         cpu_micros: 0,
///         live_objects: 0,
///     });
/// }
/// inc.apply(&GraphDelta::Interaction {
///     a: NodeId(0),
///     b: NodeId(1),
///     delta: EdgeInfo::new(3, 97),
/// });
/// assert_eq!(inc.graph().edge(NodeId(0), NodeId(1)).unwrap().bytes, 97);
/// assert_eq!(inc.strengths(), &[100, 100]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IncrementalGraph {
    graph: ExecutionGraph,
    /// strength[v] = sum of incident edge weights of v.
    strength: Vec<u64>,
    churn: ChurnSummary,
    deltas_applied: u64,
}

impl IncrementalGraph {
    /// Creates an empty incremental graph.
    pub fn new() -> Self {
        IncrementalGraph::default()
    }

    /// Wraps an existing graph, computing the strength cache in O(V + E).
    pub fn from_graph(graph: ExecutionGraph) -> Self {
        let mut strength = vec![0u64; graph.node_count()];
        for ((a, b), e) in graph.edges() {
            let w = e.weight();
            strength[a.index()] += w;
            strength[b.index()] += w;
        }
        IncrementalGraph {
            graph,
            strength,
            churn: ChurnSummary::default(),
            deltas_applied: 0,
        }
    }

    /// The maintained graph.
    #[inline]
    pub fn graph(&self) -> &ExecutionGraph {
        &self.graph
    }

    /// Consumes the wrapper, returning the graph.
    pub fn into_graph(self) -> ExecutionGraph {
        self.graph
    }

    /// The cached per-node strengths (total incident edge weight), indexed
    /// by [`NodeId::index`].
    #[inline]
    pub fn strengths(&self) -> &[u64] {
        &self.strength
    }

    /// Total number of deltas applied over the lifetime of this graph.
    pub fn deltas_applied(&self) -> u64 {
        self.deltas_applied
    }

    /// Churn accumulated since the last [`take_churn`](Self::take_churn)
    /// (non-destructive peek).
    pub fn churn(&self) -> ChurnSummary {
        self.churn
    }

    /// Returns and resets the accumulated churn.
    pub fn take_churn(&mut self) -> ChurnSummary {
        std::mem::take(&mut self.churn)
    }

    /// Applies one delta in O(delta) (O(E) for `RemoveNode`).
    ///
    /// # Panics
    ///
    /// Panics if the delta references a node id out of range.
    pub fn apply(&mut self, delta: &GraphDelta) {
        self.deltas_applied += 1;
        self.churn.deltas += 1;
        match delta {
            GraphDelta::AddNode {
                label,
                pinned,
                memory_bytes,
                cpu_micros,
                live_objects,
            } => {
                let mut info = match pinned {
                    Some(reason) => NodeInfo::pinned(label.clone(), *reason),
                    None => NodeInfo::new(label.clone()),
                };
                info.memory_bytes = *memory_bytes;
                info.cpu_micros = *cpu_micros;
                info.live_objects = *live_objects;
                self.graph.add_node(info);
                self.strength.push(0);
                self.churn.structural = true;
            }
            GraphDelta::UpdateNode {
                node,
                memory_bytes,
                cpu_micros,
                live_objects,
            } => {
                let info = self.graph.node_mut(*node);
                self.churn.weight = self
                    .churn
                    .weight
                    .saturating_add(info.memory_bytes.abs_diff(*memory_bytes))
                    .saturating_add(info.cpu_micros.abs_diff(*cpu_micros));
                info.memory_bytes = *memory_bytes;
                info.cpu_micros = *cpu_micros;
                info.live_objects = *live_objects;
            }
            GraphDelta::SetPinned { node, pinned } => {
                let info = self.graph.node_mut(*node);
                if info.pinned != *pinned {
                    info.pinned = *pinned;
                    self.churn.structural = true;
                }
            }
            GraphDelta::Interaction { a, b, delta } => {
                if a == b {
                    return;
                }
                self.graph.record_interaction(*a, *b, *delta);
                let w = delta.weight();
                self.strength[a.index()] += w;
                self.strength[b.index()] += w;
                self.churn.weight = self.churn.weight.saturating_add(w);
            }
            GraphDelta::RemoveNode { node } => {
                for (nb, e) in self.graph.clear_node(*node) {
                    self.strength[nb.index()] -= e.weight();
                }
                self.strength[node.index()] = 0;
                self.churn.structural = true;
            }
        }
    }

    /// Applies a batch of deltas.
    pub fn apply_all(&mut self, deltas: &[GraphDelta]) {
        for d in deltas {
            self.apply(d);
        }
    }

    /// Debug helper: recomputes strengths from scratch and checks them
    /// against the cache. Used by the equivalence tests; O(V + E).
    pub fn strengths_consistent(&self) -> bool {
        let fresh = IncrementalGraph::from_graph(self.graph.clone());
        fresh.strength == self.strength
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(label: &str) -> GraphDelta {
        GraphDelta::AddNode {
            label: label.into(),
            pinned: None,
            memory_bytes: 0,
            cpu_micros: 0,
            live_objects: 0,
        }
    }

    fn interact(a: u32, b: u32, interactions: u64, bytes: u64) -> GraphDelta {
        GraphDelta::Interaction {
            a: NodeId(a),
            b: NodeId(b),
            delta: EdgeInfo::new(interactions, bytes),
        }
    }

    #[test]
    fn deltas_build_the_same_graph_as_direct_calls() {
        let mut inc = IncrementalGraph::new();
        inc.apply_all(&[
            add("A"),
            add("B"),
            add("C"),
            interact(0, 1, 3, 300),
            interact(1, 2, 1, 10),
            interact(0, 1, 2, 50),
        ]);

        let mut direct = ExecutionGraph::new();
        let a = direct.add_node(NodeInfo::new("A"));
        let b = direct.add_node(NodeInfo::new("B"));
        let c = direct.add_node(NodeInfo::new("C"));
        direct.record_interaction(a, b, EdgeInfo::new(3, 300));
        direct.record_interaction(b, c, EdgeInfo::new(1, 10));
        direct.record_interaction(a, b, EdgeInfo::new(2, 50));

        assert_eq!(inc.graph(), &direct);
        assert!(inc.strengths_consistent());
        assert_eq!(inc.strengths(), &[355, 366, 11]);
    }

    #[test]
    fn update_node_is_absolute_and_counts_churn() {
        let mut inc = IncrementalGraph::new();
        inc.apply(&add("A"));
        inc.apply(&GraphDelta::UpdateNode {
            node: NodeId(0),
            memory_bytes: 1_000,
            cpu_micros: 50,
            live_objects: 2,
        });
        inc.apply(&GraphDelta::UpdateNode {
            node: NodeId(0),
            memory_bytes: 400,
            cpu_micros: 70,
            live_objects: 1,
        });
        let n = inc.graph().node(NodeId(0));
        assert_eq!(n.memory_bytes, 400);
        assert_eq!(n.cpu_micros, 70);
        assert_eq!(n.live_objects, 1);
        // churn: (1000 + 50) + (600 + 20)
        assert_eq!(inc.churn().weight, 1_670);
    }

    #[test]
    fn take_churn_resets_and_structural_flags_propagate() {
        let mut inc = IncrementalGraph::new();
        inc.apply(&add("A"));
        inc.apply(&add("B"));
        let c = inc.take_churn();
        assert!(c.structural);
        assert_eq!(c.deltas, 2);
        assert_eq!(inc.churn(), ChurnSummary::default());

        inc.apply(&interact(0, 1, 1, 99));
        let c = inc.take_churn();
        assert!(!c.structural);
        assert_eq!(c.weight, 100);
    }

    #[test]
    fn set_pinned_is_structural_only_when_it_changes() {
        let mut inc = IncrementalGraph::new();
        inc.apply(&add("A"));
        inc.take_churn();
        inc.apply(&GraphDelta::SetPinned {
            node: NodeId(0),
            pinned: None,
        });
        assert!(!inc.churn().structural, "no-op pin change is not churn");
        inc.apply(&GraphDelta::SetPinned {
            node: NodeId(0),
            pinned: Some(PinReason::Explicit),
        });
        assert!(inc.churn().structural);
        assert!(inc.graph().node(NodeId(0)).is_pinned());
    }

    #[test]
    fn remove_node_tombstones_and_fixes_strengths() {
        let mut inc = IncrementalGraph::new();
        inc.apply_all(&[
            add("A"),
            add("B"),
            add("C"),
            interact(0, 1, 0, 100),
            interact(1, 2, 0, 40),
            interact(0, 2, 0, 7),
        ]);
        inc.apply(&GraphDelta::RemoveNode { node: NodeId(1) });
        assert_eq!(inc.graph().node_count(), 3, "ids stay dense");
        assert_eq!(inc.graph().edge_count(), 1);
        assert_eq!(inc.strengths(), &[7, 0, 7]);
        assert!(inc.strengths_consistent());
    }

    #[test]
    fn self_interactions_are_ignored() {
        let mut inc = IncrementalGraph::new();
        inc.apply(&add("A"));
        inc.take_churn();
        inc.apply(&interact(0, 0, 5, 500));
        assert_eq!(inc.graph().edge_count(), 0);
        assert_eq!(inc.strengths(), &[0]);
        assert_eq!(inc.churn().weight, 0);
    }

    #[test]
    fn from_graph_seeds_the_strength_cache() {
        let mut g = ExecutionGraph::new();
        let a = g.add_node(NodeInfo::new("A"));
        let b = g.add_node(NodeInfo::new("B"));
        g.record_interaction(a, b, EdgeInfo::new(2, 98));
        let inc = IncrementalGraph::from_graph(g);
        assert_eq!(inc.strengths(), &[100, 100]);
    }

    #[test]
    fn deltas_round_trip_through_serde() {
        let deltas = vec![
            add("A"),
            GraphDelta::SetPinned {
                node: NodeId(0),
                pinned: Some(PinReason::NativeMethods),
            },
            interact(0, 1, 9, 91),
            GraphDelta::UpdateNode {
                node: NodeId(0),
                memory_bytes: 1,
                cpu_micros: 2,
                live_objects: 3,
            },
            GraphDelta::RemoveNode { node: NodeId(0) },
        ];
        let json = serde_json::to_string(&deltas).unwrap();
        let back: Vec<GraphDelta> = serde_json::from_str(&json).unwrap();
        assert_eq!(deltas, back);
    }
}
