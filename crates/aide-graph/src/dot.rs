//! Graphviz DOT export of execution graphs (used to regenerate Figure 5).

use std::fmt::Write as _;

use crate::graph::ExecutionGraph;
use crate::partition::{Partitioning, Side};

/// Renders `graph` in Graphviz DOT format.
///
/// When `partitioning` is provided, client-side nodes are drawn as boxes and
/// offloaded nodes as ellipses, and edges crossing the cut are dashed —
/// matching the presentation of Figure 5b, where "dotted edges represent
/// remote interactions".
///
/// # Examples
///
/// ```
/// use aide_graph::{ExecutionGraph, NodeInfo, EdgeInfo, to_dot};
///
/// let mut g = ExecutionGraph::new();
/// let a = g.add_node(NodeInfo::new("A"));
/// let b = g.add_node(NodeInfo::new("B"));
/// g.record_interaction(a, b, EdgeInfo::new(1, 10));
/// let dot = to_dot(&g, None);
/// assert!(dot.contains("graph execution"));
/// ```
pub fn to_dot(graph: &ExecutionGraph, partitioning: Option<&Partitioning>) -> String {
    render(graph, partitioning, false, &[])
}

/// Like [`to_dot`], with richer per-node labels (CPU time and live-object
/// counts alongside memory) and a caller-supplied annotation block rendered
/// as the graph's bottom label — typically run-level telemetry such as RPC
/// latency or offload counts. The caller resolves the metric values; this
/// crate stays measurement-free.
///
/// # Examples
///
/// ```
/// use aide_graph::{ExecutionGraph, NodeInfo, EdgeInfo, to_dot_annotated};
///
/// let mut g = ExecutionGraph::new();
/// let a = g.add_node(NodeInfo::new("A"));
/// let b = g.add_node(NodeInfo::new("B"));
/// g.record_interaction(a, b, EdgeInfo::new(1, 10));
/// let dot = to_dot_annotated(&g, None, &[("rpc.requests".into(), "42".into())]);
/// assert!(dot.contains("rpc.requests = 42"));
/// ```
pub fn to_dot_annotated(
    graph: &ExecutionGraph,
    partitioning: Option<&Partitioning>,
    annotations: &[(String, String)],
) -> String {
    render(graph, partitioning, true, annotations)
}

fn render(
    graph: &ExecutionGraph,
    partitioning: Option<&Partitioning>,
    detailed: bool,
    annotations: &[(String, String)],
) -> String {
    let mut out = String::new();
    out.push_str("graph execution {\n");
    out.push_str("  node [fontsize=8];\n");
    for (id, node) in graph.iter() {
        let shape = match partitioning {
            Some(p) if p.side(id) == Side::Surrogate => "ellipse",
            Some(_) => "box",
            None => "circle",
        };
        let pin = if node.is_pinned() { " (pinned)" } else { "" };
        if detailed {
            let _ = writeln!(
                out,
                "  {} [label=\"{}{}\\n{} B / {} us / {} obj\", shape={}];",
                id, node.label, pin, node.memory_bytes, node.cpu_micros, node.live_objects, shape
            );
        } else {
            let _ = writeln!(
                out,
                "  {} [label=\"{}{}\\n{} B\", shape={}];",
                id, node.label, pin, node.memory_bytes, shape
            );
        }
    }
    for ((a, b), e) in graph.edges() {
        let style = match partitioning {
            Some(p) if p.side(a) != p.side(b) => ", style=dashed",
            _ => "",
        };
        let _ = writeln!(
            out,
            "  {} -- {} [label=\"{}x/{}B\"{}];",
            a, b, e.interactions, e.bytes, style
        );
    }
    if !annotations.is_empty() {
        out.push_str("  graph [labelloc=b, fontsize=8, label=\"");
        for (key, value) in annotations {
            let _ = write!(
                out,
                "{} = {}\\l",
                key.replace('"', "\\\""),
                value.replace('"', "\\\"")
            );
        }
        out.push_str("\"];\n");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeInfo, NodeInfo, PinReason};

    fn graph() -> (ExecutionGraph, Partitioning) {
        let mut g = ExecutionGraph::new();
        let a = g.add_node(NodeInfo::pinned("Gui", PinReason::NativeMethods));
        let b = g.add_node(NodeInfo::new("Doc"));
        g.record_interaction(a, b, EdgeInfo::new(2, 20));
        let mut p = Partitioning::all_client(&g);
        p.set_side(b, Side::Surrogate);
        (g, p)
    }

    #[test]
    fn plain_export_lists_all_nodes_and_edges() {
        let (g, _) = graph();
        let dot = to_dot(&g, None);
        assert!(dot.contains("Gui"));
        assert!(dot.contains("Doc"));
        assert!(dot.contains("n0 -- n1"));
        assert!(dot.contains("2x/20B"));
        assert!(!dot.contains("dashed"));
    }

    #[test]
    fn partitioned_export_marks_remote_edges_dashed() {
        let (g, p) = graph();
        let dot = to_dot(&g, Some(&p));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("(pinned)"));
    }

    #[test]
    fn annotated_export_carries_metric_labels_and_node_detail() {
        let (mut g, p) = graph();
        g.node_mut(crate::graph::NodeId(1)).cpu_micros = 1_500;
        g.node_mut(crate::graph::NodeId(1)).live_objects = 3;
        let annotations = vec![
            ("rpc.latency.p50".to_string(), "2400us".to_string()),
            ("offloads".to_string(), "1".to_string()),
        ];
        let dot = to_dot_annotated(&g, Some(&p), &annotations);
        assert!(dot.contains("1500 us / 3 obj"), "{dot}");
        assert!(dot.contains("rpc.latency.p50 = 2400us"));
        assert!(dot.contains("offloads = 1"));
        assert!(dot.contains("labelloc=b"));
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn annotated_export_without_annotations_adds_no_label_block() {
        let (g, _) = graph();
        let dot = to_dot_annotated(&g, None, &[]);
        assert!(!dot.contains("labelloc"));
    }

    #[test]
    fn export_is_balanced_dot_syntax() {
        let (g, p) = graph();
        let dot = to_dot(&g, Some(&p));
        assert!(dot.starts_with("graph execution {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
