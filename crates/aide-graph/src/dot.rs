//! Graphviz DOT export of execution graphs (used to regenerate Figure 5).

use std::fmt::Write as _;

use crate::graph::ExecutionGraph;
use crate::partition::{Partitioning, Side};

/// Renders `graph` in Graphviz DOT format.
///
/// When `partitioning` is provided, client-side nodes are drawn as boxes and
/// offloaded nodes as ellipses, and edges crossing the cut are dashed —
/// matching the presentation of Figure 5b, where "dotted edges represent
/// remote interactions".
///
/// # Examples
///
/// ```
/// use aide_graph::{ExecutionGraph, NodeInfo, EdgeInfo, to_dot};
///
/// let mut g = ExecutionGraph::new();
/// let a = g.add_node(NodeInfo::new("A"));
/// let b = g.add_node(NodeInfo::new("B"));
/// g.record_interaction(a, b, EdgeInfo::new(1, 10));
/// let dot = to_dot(&g, None);
/// assert!(dot.contains("graph execution"));
/// ```
pub fn to_dot(graph: &ExecutionGraph, partitioning: Option<&Partitioning>) -> String {
    let mut out = String::new();
    out.push_str("graph execution {\n");
    out.push_str("  node [fontsize=8];\n");
    for (id, node) in graph.iter() {
        let shape = match partitioning {
            Some(p) if p.side(id) == Side::Surrogate => "ellipse",
            Some(_) => "box",
            None => "circle",
        };
        let pin = if node.is_pinned() { " (pinned)" } else { "" };
        let _ = writeln!(
            out,
            "  {} [label=\"{}{}\\n{} B\", shape={}];",
            id, node.label, pin, node.memory_bytes, shape
        );
    }
    for ((a, b), e) in graph.edges() {
        let style = match partitioning {
            Some(p) if p.side(a) != p.side(b) => ", style=dashed",
            _ => "",
        };
        let _ = writeln!(
            out,
            "  {} -- {} [label=\"{}x/{}B\"{}];",
            a, b, e.interactions, e.bytes, style
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeInfo, NodeInfo, PinReason};

    fn graph() -> (ExecutionGraph, Partitioning) {
        let mut g = ExecutionGraph::new();
        let a = g.add_node(NodeInfo::pinned("Gui", PinReason::NativeMethods));
        let b = g.add_node(NodeInfo::new("Doc"));
        g.record_interaction(a, b, EdgeInfo::new(2, 20));
        let mut p = Partitioning::all_client(&g);
        p.set_side(b, Side::Surrogate);
        (g, p)
    }

    #[test]
    fn plain_export_lists_all_nodes_and_edges() {
        let (g, _) = graph();
        let dot = to_dot(&g, None);
        assert!(dot.contains("Gui"));
        assert!(dot.contains("Doc"));
        assert!(dot.contains("n0 -- n1"));
        assert!(dot.contains("2x/20B"));
        assert!(!dot.contains("dashed"));
    }

    #[test]
    fn partitioned_export_marks_remote_edges_dashed() {
        let (g, p) = graph();
        let dot = to_dot(&g, Some(&p));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("(pinned)"));
    }

    #[test]
    fn export_is_balanced_dot_syntax() {
        let (g, p) = graph();
        let dot = to_dot(&g, Some(&p));
        assert!(dot.starts_with("graph execution {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
