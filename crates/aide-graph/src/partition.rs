//! Two-way partitionings of an execution graph and their summary statistics.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::graph::{EdgeInfo, ExecutionGraph, NodeId};

/// Which device a class (or object) is placed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The resource-constrained client device.
    Client,
    /// The nearby surrogate server.
    Surrogate,
}

impl Side {
    /// Returns the opposite side.
    #[inline]
    pub fn other(self) -> Side {
        match self {
            Side::Client => Side::Surrogate,
            Side::Surrogate => Side::Client,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Client => f.write_str("client"),
            Side::Surrogate => f.write_str("surrogate"),
        }
    }
}

/// A two-way partitioning of the nodes of an [`ExecutionGraph`].
///
/// Every node is placed on exactly one [`Side`]. The partitioning stores a
/// dense side vector indexed by [`NodeId`]; it is only meaningful for the
/// graph it was derived from.
///
/// # Examples
///
/// ```
/// use aide_graph::{ExecutionGraph, NodeInfo, EdgeInfo, Partitioning, Side};
///
/// let mut g = ExecutionGraph::new();
/// let a = g.add_node(NodeInfo::new("A"));
/// let b = g.add_node(NodeInfo::new("B"));
/// g.record_interaction(a, b, EdgeInfo::new(1, 100));
///
/// let mut p = Partitioning::all_client(&g);
/// p.set_side(b, Side::Surrogate);
/// assert_eq!(p.side(a), Side::Client);
/// assert_eq!(p.offloaded_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partitioning {
    sides: Vec<Side>,
}

impl Partitioning {
    /// Creates a partitioning with every node of `graph` on the client.
    pub fn all_client(graph: &ExecutionGraph) -> Self {
        Partitioning {
            sides: vec![Side::Client; graph.node_count()],
        }
    }

    /// Creates a partitioning from an explicit side assignment.
    pub fn from_sides(sides: Vec<Side>) -> Self {
        Partitioning { sides }
    }

    /// Number of nodes covered by this partitioning.
    #[inline]
    pub fn len(&self) -> usize {
        self.sides.len()
    }

    /// Returns `true` if the partitioning covers no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sides.is_empty()
    }

    /// The side node `id` is placed on.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the partitioned graph.
    #[inline]
    pub fn side(&self, id: NodeId) -> Side {
        self.sides[id.index()]
    }

    /// Places node `id` on `side`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the partitioned graph.
    #[inline]
    pub fn set_side(&mut self, id: NodeId, side: Side) {
        self.sides[id.index()] = side;
    }

    /// Returns `true` if node `id` stays on the client.
    #[inline]
    pub fn is_client(&self, id: NodeId) -> bool {
        self.side(id) == Side::Client
    }

    /// Iterates over the nodes placed on `side`.
    pub fn nodes_on(&self, side: Side) -> impl Iterator<Item = NodeId> + '_ {
        self.sides
            .iter()
            .enumerate()
            .filter(move |(_, &s)| s == side)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Number of nodes offloaded to the surrogate.
    pub fn offloaded_count(&self) -> usize {
        self.sides.iter().filter(|&&s| s == Side::Surrogate).count()
    }

    /// Returns `true` if no node is offloaded (the identity placement).
    pub fn is_all_client(&self) -> bool {
        self.sides.iter().all(|&s| s == Side::Client)
    }

    /// Computes summary statistics of this partitioning against `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the partitioning does not cover exactly the nodes of
    /// `graph`.
    pub fn stats(&self, graph: &ExecutionGraph) -> PartitionStats {
        assert_eq!(
            self.sides.len(),
            graph.node_count(),
            "partitioning covers {} nodes but graph has {}",
            self.sides.len(),
            graph.node_count()
        );
        let mut stats = PartitionStats::default();
        for (id, node) in graph.iter() {
            match self.side(id) {
                Side::Client => {
                    stats.client_memory_bytes += node.memory_bytes;
                    stats.client_cpu_micros += node.cpu_micros;
                }
                Side::Surrogate => {
                    stats.offloaded_memory_bytes += node.memory_bytes;
                    stats.offloaded_cpu_micros += node.cpu_micros;
                    stats.offloaded_nodes += 1;
                }
            }
        }
        stats.cut = graph.cut_traffic(|n| self.is_client(n));
        stats
    }
}

/// Aggregate description of a [`Partitioning`] against a specific graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionStats {
    /// Heap bytes that remain on the client.
    pub client_memory_bytes: u64,
    /// Heap bytes moved to the surrogate.
    pub offloaded_memory_bytes: u64,
    /// Exclusive CPU time of classes that remain on the client (µs).
    pub client_cpu_micros: u64,
    /// Exclusive CPU time of offloaded classes (µs).
    pub offloaded_cpu_micros: u64,
    /// Number of classes offloaded.
    pub offloaded_nodes: usize,
    /// Historical traffic crossing the cut.
    pub cut: EdgeInfo,
}

impl PartitionStats {
    /// Fraction of graph-attributed memory that the partitioning offloads.
    ///
    /// Returns `0.0` for an empty graph.
    pub fn offloaded_memory_fraction(&self) -> f64 {
        let total = self.client_memory_bytes + self.offloaded_memory_bytes;
        if total == 0 {
            0.0
        } else {
            self.offloaded_memory_bytes as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeInfo;

    fn graph() -> (ExecutionGraph, NodeId, NodeId, NodeId) {
        let mut g = ExecutionGraph::new();
        let a = g.add_node(NodeInfo::new("A"));
        let b = g.add_node(NodeInfo::new("B"));
        let c = g.add_node(NodeInfo::new("C"));
        g.node_mut(a).memory_bytes = 100;
        g.node_mut(b).memory_bytes = 200;
        g.node_mut(c).memory_bytes = 700;
        g.node_mut(a).cpu_micros = 10;
        g.node_mut(b).cpu_micros = 20;
        g.node_mut(c).cpu_micros = 70;
        g.record_interaction(a, b, EdgeInfo::new(5, 500));
        g.record_interaction(b, c, EdgeInfo::new(2, 20));
        g.record_interaction(a, c, EdgeInfo::new(1, 1));
        (g, a, b, c)
    }

    #[test]
    fn all_client_is_identity() {
        let (g, ..) = graph();
        let p = Partitioning::all_client(&g);
        assert!(p.is_all_client());
        assert_eq!(p.offloaded_count(), 0);
        let s = p.stats(&g);
        assert_eq!(s.offloaded_memory_bytes, 0);
        assert_eq!(s.cut, EdgeInfo::default());
    }

    #[test]
    fn set_side_moves_nodes() {
        let (g, _, b, c) = graph();
        let mut p = Partitioning::all_client(&g);
        p.set_side(b, Side::Surrogate);
        p.set_side(c, Side::Surrogate);
        assert_eq!(p.offloaded_count(), 2);
        let offloaded: Vec<NodeId> = p.nodes_on(Side::Surrogate).collect();
        assert_eq!(offloaded, vec![b, c]);
    }

    #[test]
    fn stats_split_memory_and_cpu() {
        let (g, _, b, c) = graph();
        let mut p = Partitioning::all_client(&g);
        p.set_side(b, Side::Surrogate);
        p.set_side(c, Side::Surrogate);
        let s = p.stats(&g);
        assert_eq!(s.client_memory_bytes, 100);
        assert_eq!(s.offloaded_memory_bytes, 900);
        assert_eq!(s.client_cpu_micros, 10);
        assert_eq!(s.offloaded_cpu_micros, 90);
        assert_eq!(s.offloaded_nodes, 2);
        // Crossing edges: a-b (5,500) and a-c (1,1).
        assert_eq!(s.cut.interactions, 6);
        assert_eq!(s.cut.bytes, 501);
        assert!((s.offloaded_memory_fraction() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn side_other_flips() {
        assert_eq!(Side::Client.other(), Side::Surrogate);
        assert_eq!(Side::Surrogate.other(), Side::Client);
    }

    #[test]
    #[should_panic(expected = "partitioning covers")]
    fn stats_panics_on_size_mismatch() {
        let (g, ..) = graph();
        let p = Partitioning::from_sides(vec![Side::Client; 2]);
        let _ = p.stats(&g);
    }

    #[test]
    fn offloaded_memory_fraction_of_empty_graph_is_zero() {
        let g = ExecutionGraph::new();
        let p = Partitioning::all_client(&g);
        assert_eq!(p.stats(&g).offloaded_memory_fraction(), 0.0);
    }
}
