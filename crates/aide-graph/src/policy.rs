//! Partitioning policies: which candidate partitioning (if any) to apply.
//!
//! A policy receives the execution graph, a snapshot of the client's
//! resources, and the candidate sequence produced by the modified-MINCUT
//! heuristic. It filters the candidates for *feasibility* (e.g. "frees at
//! least 20% of the Java heap"), scores the feasible ones with a cost
//! function, and — crucially — only selects a partitioning when offloading
//! is *beneficial* (paper §2, "Beneficial offloading").
//!
//! # Evaluation strategies and determinism
//!
//! Candidate evaluation can fan out across a scoped-thread pool
//! ([`EvalStrategy::Parallel`]). The result is **bit-identical** to the
//! sequential pass regardless of thread count: worker threads only *score*
//! candidates (each score is a pure function of the graph, the candidate and
//! its integer [`PartitionStats`]), and the winner is chosen by a single
//! sequential fold over the per-candidate results in candidate order. The
//! fold is not parallelised because `f64` comparison with possible NaN
//! scores is not associative — reducing per-chunk winners could disagree
//! with the sequential pass, while the index-ordered fold cannot.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cost::{CostFunction, CutBytes, PredictedTime};
use crate::graph::{ExecutionGraph, NodeId};
use crate::heuristic::{CandidatePlan, CandidateSequence};
use crate::partition::{PartitionStats, Partitioning, Side};

/// A snapshot of the client device's resources at policy-evaluation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceSnapshot {
    /// Total capacity of the client's Java heap, in bytes.
    pub heap_capacity: u64,
    /// Bytes of the client heap currently occupied by live objects.
    pub heap_used: u64,
}

impl ResourceSnapshot {
    /// Creates a snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `heap_used > heap_capacity`.
    pub fn new(heap_capacity: u64, heap_used: u64) -> Self {
        assert!(
            heap_used <= heap_capacity,
            "heap_used ({heap_used}) exceeds capacity ({heap_capacity})"
        );
        ResourceSnapshot {
            heap_capacity,
            heap_used,
        }
    }

    /// Bytes of heap currently free.
    #[inline]
    pub fn heap_free(&self) -> u64 {
        self.heap_capacity - self.heap_used
    }

    /// Fraction of the heap currently free, in `[0, 1]`.
    pub fn free_fraction(&self) -> f64 {
        if self.heap_capacity == 0 {
            0.0
        } else {
            self.heap_free() as f64 / self.heap_capacity as f64
        }
    }
}

/// How a policy evaluates the candidate sweep.
///
/// The strategy affects wall-clock time only — every strategy produces a
/// bit-identical [`SelectedPartition`] (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvalStrategy {
    /// Score candidates one after another on the calling thread.
    #[default]
    Sequential,
    /// Score candidates on a scoped-thread pool, then pick the winner with a
    /// deterministic sequential fold over the per-candidate scores.
    Parallel {
        /// Number of worker threads; `0` means "one per available core"
        /// (`std::thread::available_parallelism`).
        threads: usize,
    },
}

impl EvalStrategy {
    /// The number of worker threads this strategy resolves to (at least 1).
    pub fn resolved_threads(self) -> usize {
        match self {
            EvalStrategy::Sequential => 1,
            EvalStrategy::Parallel { threads: 0 } => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            EvalStrategy::Parallel { threads } => threads,
        }
    }
}

/// The partitioning a policy selected, with its statistics and score.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectedPartition {
    /// The chosen placement.
    pub partitioning: Partitioning,
    /// Precomputed statistics of the placement.
    pub stats: PartitionStats,
    /// The cost-function score of the placement (lower was better).
    pub score: f64,
}

/// Decides whether and how to offload, given candidate partitionings.
///
/// Implementors provide [`score_candidate`](PartitionPolicy::score_candidate)
/// (feasibility gate + cost) and optionally
/// [`admit`](PartitionPolicy::admit) (a final beneficial-offloading gate on
/// the winner); the provided `select*` methods drive the sweep with either
/// evaluation strategy.
pub trait PartitionPolicy: Send + Sync {
    /// A short name for reports.
    fn name(&self) -> &str;

    /// Scores one candidate: `None` if the candidate is infeasible under
    /// this policy, otherwise its cost (lower is better). Must be a pure
    /// function of its arguments — the parallel evaluation strategy calls it
    /// from worker threads and relies on purity for determinism.
    fn score_candidate(
        &self,
        graph: &ExecutionGraph,
        snapshot: ResourceSnapshot,
        candidate: &Partitioning,
        stats: &PartitionStats,
    ) -> Option<f64>;

    /// Final gate on the best-scoring candidate: return `false` to refuse
    /// offloading altogether (e.g. the paper's beneficial-offloading test).
    /// The default admits every winner.
    fn admit(
        &self,
        _graph: &ExecutionGraph,
        _snapshot: ResourceSnapshot,
        _best: &SelectedPartition,
    ) -> bool {
        true
    }

    /// Evaluates `candidates` and returns the best feasible, beneficial
    /// partitioning, or `None` when the application should not be
    /// partitioned (no feasible candidate, or offloading is not beneficial).
    fn select(
        &self,
        graph: &ExecutionGraph,
        snapshot: ResourceSnapshot,
        candidates: &CandidateSequence,
    ) -> Option<SelectedPartition> {
        self.select_with(graph, snapshot, candidates, EvalStrategy::Sequential)
    }

    /// Like [`select`](PartitionPolicy::select), with an explicit evaluation
    /// strategy. The winner is bit-identical across strategies.
    fn select_with(
        &self,
        graph: &ExecutionGraph,
        snapshot: ResourceSnapshot,
        candidates: &CandidateSequence,
        strategy: EvalStrategy,
    ) -> Option<SelectedPartition> {
        let score = |cand: &Partitioning, stats: &PartitionStats| {
            self.score_candidate(graph, snapshot, cand, stats)
        };
        let best = pick_from_sequence(graph, candidates, strategy, &score)?;
        self.admit(graph, snapshot, &best).then_some(best)
    }

    /// Like [`select_with`](PartitionPolicy::select_with), but sweeps a
    /// [`CandidatePlan`] directly: per-candidate statistics are updated
    /// incrementally in O(degree) per move instead of O(V + E) per
    /// candidate, and no O(V²) candidate sequence is materialized. Produces
    /// exactly the selection `select` would make on
    /// [`CandidatePlan::materialize`].
    fn select_plan(
        &self,
        graph: &ExecutionGraph,
        snapshot: ResourceSnapshot,
        plan: &CandidatePlan,
        strategy: EvalStrategy,
    ) -> Option<SelectedPartition> {
        let score = |cand: &Partitioning, stats: &PartitionStats| {
            self.score_candidate(graph, snapshot, cand, stats)
        };
        let best = pick_from_plan(graph, plan, strategy, &score)?;
        self.admit(graph, snapshot, &best).then_some(best)
    }
}

/// Shared shape of the per-candidate scoring callback.
type ScoreFn<'a> = &'a (dyn Fn(&Partitioning, &PartitionStats) -> Option<f64> + Sync);

/// The deterministic reduction: a single in-order fold over per-candidate
/// results, preserving the classic `score < best.score` strict-improvement
/// rule (first of equal scores wins; NaN scores never displace a winner).
fn fold_results(
    results: Vec<Option<(f64, PartitionStats)>>,
) -> Option<(usize, PartitionStats, f64)> {
    let mut best: Option<(usize, PartitionStats, f64)> = None;
    for (i, r) in results.into_iter().enumerate() {
        if let Some((score, stats)) = r {
            if best.as_ref().is_none_or(|&(_, _, b)| score < b) {
                best = Some((i, stats, score));
            }
        }
    }
    best
}

/// Scores every candidate of a materialized sequence (optionally on a
/// scoped-thread pool) and folds the results in candidate order.
fn pick_from_sequence(
    graph: &ExecutionGraph,
    candidates: &CandidateSequence,
    strategy: EvalStrategy,
    score: ScoreFn<'_>,
) -> Option<SelectedPartition> {
    let cands = candidates.candidates();
    if cands.is_empty() {
        return None;
    }
    let threads = strategy.resolved_threads().clamp(1, cands.len());
    let mut results: Vec<Option<(f64, PartitionStats)>> = vec![None; cands.len()];
    let fill = |start: usize, chunk: &mut [Option<(f64, PartitionStats)>]| {
        for (off, slot) in chunk.iter_mut().enumerate() {
            let cand = &cands[start + off];
            let stats = cand.stats(graph);
            *slot = score(cand, &stats).map(|s| (s, stats));
        }
    };
    if threads <= 1 {
        fill(0, &mut results);
    } else {
        let chunk_size = cands.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (ci, chunk) in results.chunks_mut(chunk_size).enumerate() {
                let fill = &fill;
                scope.spawn(move || fill(ci * chunk_size, chunk));
            }
        });
    }
    fold_results(results).map(|(i, stats, score)| SelectedPartition {
        partitioning: cands[i].clone(),
        stats,
        score,
    })
}

/// Scores every candidate described by a [`CandidatePlan`] without
/// materializing the sequence. Each worker reconstructs its chunk's starting
/// placement (O(V + E)), then advances candidate-by-candidate with
/// O(degree) incremental statistics updates. All statistics are integer
/// sums, so the incremental values equal the from-scratch values exactly.
fn pick_from_plan(
    graph: &ExecutionGraph,
    plan: &CandidatePlan,
    strategy: EvalStrategy,
    score: ScoreFn<'_>,
) -> Option<SelectedPartition> {
    let len = plan.len();
    if len == 0 {
        return None;
    }
    let threads = strategy.resolved_threads().clamp(1, len);
    let mut results: Vec<Option<(f64, PartitionStats)>> = vec![None; len];
    let fill = |start: usize, chunk: &mut [Option<(f64, PartitionStats)>]| {
        let mut current = plan.candidate(start);
        let mut stats = current.stats(graph);
        for (off, slot) in chunk.iter_mut().enumerate() {
            if off > 0 {
                advance_candidate(
                    graph,
                    &mut current,
                    &mut stats,
                    plan.moves()[start + off - 1],
                );
            }
            *slot = score(&current, &stats).map(|s| (s, stats));
        }
    };
    if threads <= 1 {
        fill(0, &mut results);
    } else {
        let chunk_size = len.div_ceil(threads);
        std::thread::scope(|scope| {
            for (ci, chunk) in results.chunks_mut(chunk_size).enumerate() {
                let fill = &fill;
                scope.spawn(move || fill(ci * chunk_size, chunk));
            }
        });
    }
    fold_results(results).map(|(i, stats, score)| SelectedPartition {
        partitioning: plan.candidate(i),
        stats,
        score,
    })
}

/// Pulls `v` from the surrogate back to the client, updating `stats` in
/// place: node annotations switch columns and v's incident edges toggle
/// their cut contribution.
fn advance_candidate(
    graph: &ExecutionGraph,
    current: &mut Partitioning,
    stats: &mut PartitionStats,
    v: NodeId,
) {
    debug_assert!(!current.is_client(v), "move target already on client");
    current.set_side(v, Side::Client);
    let node = graph.node(v);
    stats.offloaded_memory_bytes -= node.memory_bytes;
    stats.client_memory_bytes += node.memory_bytes;
    stats.offloaded_cpu_micros -= node.cpu_micros;
    stats.client_cpu_micros += node.cpu_micros;
    stats.offloaded_nodes -= 1;
    for (nb, e) in graph.neighbors(v) {
        if current.is_client(nb) {
            // v–nb used to cross the cut; both ends are on the client now.
            stats.cut.interactions -= e.interactions;
            stats.cut.bytes -= e.bytes;
        } else {
            // v–nb stayed within the surrogate before; it crosses now.
            stats.cut.interactions += e.interactions;
            stats.cut.bytes += e.bytes;
        }
    }
}

/// The paper's memory-relief policy (§5.1): any acceptable partitioning must
/// free at least `min_free_fraction` of the Java heap; among those, minimize
/// the historical bytes crossing the cut.
///
/// # Examples
///
/// ```
/// use aide_graph::{MemoryPolicy, PartitionPolicy, ResourceSnapshot};
/// use aide_graph::{ExecutionGraph, NodeInfo, EdgeInfo, PinReason};
/// use aide_graph::candidate_partitionings;
///
/// let mut g = ExecutionGraph::new();
/// let ui = g.add_node(NodeInfo::pinned("Ui", PinReason::NativeMethods));
/// let doc = g.add_node(NodeInfo::new("Document"));
/// g.node_mut(doc).memory_bytes = 5_000_000;
/// g.record_interaction(ui, doc, EdgeInfo::new(10, 1_000));
///
/// let policy = MemoryPolicy::new(0.20);
/// let snapshot = ResourceSnapshot::new(6_000_000, 5_900_000);
/// let candidates = candidate_partitionings(&g);
/// let chosen = policy.select(&g, snapshot, &candidates).expect("feasible");
/// assert!(chosen.stats.offloaded_memory_bytes >= 1_200_000);
/// ```
pub struct MemoryPolicy {
    min_free_fraction: f64,
    cost: Box<dyn CostFunction>,
}

impl fmt::Debug for MemoryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryPolicy")
            .field("min_free_fraction", &self.min_free_fraction)
            .field("cost", &self.cost.name())
            .finish()
    }
}

impl MemoryPolicy {
    /// Creates the policy with the paper's default cost function
    /// ([`CutBytes`]).
    ///
    /// # Panics
    ///
    /// Panics if `min_free_fraction` is outside `(0, 1]`.
    pub fn new(min_free_fraction: f64) -> Self {
        MemoryPolicy::with_cost(min_free_fraction, Box::new(CutBytes))
    }

    /// Creates the policy with a custom cost function.
    ///
    /// # Panics
    ///
    /// Panics if `min_free_fraction` is outside `(0, 1]`.
    pub fn with_cost(min_free_fraction: f64, cost: Box<dyn CostFunction>) -> Self {
        assert!(
            min_free_fraction > 0.0 && min_free_fraction <= 1.0,
            "min_free_fraction must be in (0, 1], got {min_free_fraction}"
        );
        MemoryPolicy {
            min_free_fraction,
            cost,
        }
    }

    /// The minimum fraction of the heap a partitioning must free.
    pub fn min_free_fraction(&self) -> f64 {
        self.min_free_fraction
    }

    /// Heap bytes a candidate must offload to be feasible under `snapshot`.
    fn required_bytes(&self, snapshot: ResourceSnapshot) -> u64 {
        (snapshot.heap_capacity as f64 * self.min_free_fraction).ceil() as u64
    }
}

impl PartitionPolicy for MemoryPolicy {
    fn name(&self) -> &str {
        "memory"
    }

    fn score_candidate(
        &self,
        graph: &ExecutionGraph,
        snapshot: ResourceSnapshot,
        candidate: &Partitioning,
        stats: &PartitionStats,
    ) -> Option<f64> {
        if stats.offloaded_memory_bytes < self.required_bytes(snapshot) {
            return None;
        }
        Some(self.cost.cost(graph, candidate, stats))
    }
}

/// The processing-relief policy (§5.2): pick the candidate with the lowest
/// *predicted completion time* and offload only if that prediction beats
/// running the whole application on the client ("beneficial offloading").
///
/// This is the gate that correctly refuses to offload Biomer in Figure 10
/// (predicted 790 s vs. 750 s unpartitioned).
#[derive(Debug, Clone, PartialEq)]
pub struct CpuPolicy {
    predictor: PredictedTime,
    /// Required fractional improvement before offloading (0 = any win).
    margin: f64,
}

impl CpuPolicy {
    /// Creates the policy from a completion-time predictor.
    pub fn new(predictor: PredictedTime) -> Self {
        CpuPolicy {
            predictor,
            margin: 0.0,
        }
    }

    /// Requires predictions to beat local execution by `margin` (e.g. `0.05`
    /// = at least 5% faster) before offloading.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is not in `[0, 1)`.
    pub fn with_margin(mut self, margin: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&margin),
            "margin must be in [0, 1), got {margin}"
        );
        self.margin = margin;
        self
    }

    /// The completion-time predictor in use.
    pub fn predictor(&self) -> &PredictedTime {
        &self.predictor
    }
}

impl Default for CpuPolicy {
    fn default() -> Self {
        CpuPolicy::new(PredictedTime::default())
    }
}

impl PartitionPolicy for CpuPolicy {
    fn name(&self) -> &str {
        "cpu"
    }

    fn score_candidate(
        &self,
        _graph: &ExecutionGraph,
        _snapshot: ResourceSnapshot,
        _candidate: &Partitioning,
        stats: &PartitionStats,
    ) -> Option<f64> {
        Some(self.predictor.predicted_seconds(stats))
    }

    /// Beneficial-offloading gate: refuse if the best prediction does not
    /// beat local execution by the required margin.
    fn admit(
        &self,
        graph: &ExecutionGraph,
        _snapshot: ResourceSnapshot,
        best: &SelectedPartition,
    ) -> bool {
        best.score < self.predictor.unpartitioned_seconds(graph) * (1.0 - self.margin)
    }
}

/// A combined policy (paper §8 future work): relieve memory pressure first
/// and, among memory-feasible candidates, minimize predicted completion
/// time. Falls back to pure time minimization when no candidate satisfies
/// the memory requirement but the heap is not yet critical.
#[derive(Debug)]
pub struct CombinedPolicy {
    memory: MemoryPolicy,
    cpu: CpuPolicy,
}

impl CombinedPolicy {
    /// Creates a combined policy from its two halves.
    pub fn new(memory: MemoryPolicy, cpu: CpuPolicy) -> Self {
        CombinedPolicy { memory, cpu }
    }
}

impl PartitionPolicy for CombinedPolicy {
    fn name(&self) -> &str {
        "combined"
    }

    fn score_candidate(
        &self,
        _graph: &ExecutionGraph,
        snapshot: ResourceSnapshot,
        _candidate: &Partitioning,
        stats: &PartitionStats,
    ) -> Option<f64> {
        if stats.offloaded_memory_bytes < self.memory.required_bytes(snapshot) {
            return None;
        }
        Some(self.cpu.predictor().predicted_seconds(stats))
    }

    fn select_with(
        &self,
        graph: &ExecutionGraph,
        snapshot: ResourceSnapshot,
        candidates: &CandidateSequence,
        strategy: EvalStrategy,
    ) -> Option<SelectedPartition> {
        let score = |cand: &Partitioning, stats: &PartitionStats| {
            self.score_candidate(graph, snapshot, cand, stats)
        };
        // No memory-feasible candidate: fall back to a pure CPU decision.
        pick_from_sequence(graph, candidates, strategy, &score)
            .or_else(|| self.cpu.select_with(graph, snapshot, candidates, strategy))
    }

    fn select_plan(
        &self,
        graph: &ExecutionGraph,
        snapshot: ResourceSnapshot,
        plan: &CandidatePlan,
        strategy: EvalStrategy,
    ) -> Option<SelectedPartition> {
        let score = |cand: &Partitioning, stats: &PartitionStats| {
            self.score_candidate(graph, snapshot, cand, stats)
        };
        pick_from_plan(graph, plan, strategy, &score)
            .or_else(|| self.cpu.select_plan(graph, snapshot, plan, strategy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeInfo, NodeInfo, PinReason};
    use crate::heuristic::{candidate_partitionings, plan_candidates};

    /// A pinned UI class plus a chain of memory-bearing classes.
    fn memory_graph() -> ExecutionGraph {
        let mut g = ExecutionGraph::new();
        let ui = g.add_node(NodeInfo::pinned("Ui", PinReason::NativeMethods));
        let doc = g.add_node(NodeInfo::new("Document"));
        let idx = g.add_node(NodeInfo::new("Index"));
        let fmt = g.add_node(NodeInfo::new("Formatter"));
        g.node_mut(doc).memory_bytes = 3_000_000;
        g.node_mut(idx).memory_bytes = 1_000_000;
        g.node_mut(fmt).memory_bytes = 500_000;
        g.record_interaction(ui, fmt, EdgeInfo::new(1_000, 200_000));
        g.record_interaction(fmt, doc, EdgeInfo::new(500, 100_000));
        g.record_interaction(doc, idx, EdgeInfo::new(50, 10_000));
        g
    }

    #[test]
    fn snapshot_free_accounting() {
        let s = ResourceSnapshot::new(6_000_000, 5_700_000);
        assert_eq!(s.heap_free(), 300_000);
        assert!((s.free_fraction() - 0.05).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn snapshot_rejects_overfull_heap() {
        let _ = ResourceSnapshot::new(100, 200);
    }

    #[test]
    fn zero_capacity_snapshot_has_zero_free_fraction() {
        assert_eq!(ResourceSnapshot::new(0, 0).free_fraction(), 0.0);
    }

    #[test]
    fn memory_policy_frees_required_amount() {
        let g = memory_graph();
        let candidates = candidate_partitionings(&g);
        let policy = MemoryPolicy::new(0.20);
        let snapshot = ResourceSnapshot::new(6_000_000, 5_900_000);
        let chosen = policy.select(&g, snapshot, &candidates).expect("feasible");
        assert!(chosen.stats.offloaded_memory_bytes >= 1_200_000);
    }

    #[test]
    fn memory_policy_minimizes_cut_bytes_among_feasible() {
        let g = memory_graph();
        let candidates = candidate_partitionings(&g);
        let policy = MemoryPolicy::new(0.20);
        let snapshot = ResourceSnapshot::new(6_000_000, 5_900_000);
        let chosen = policy.select(&g, snapshot, &candidates).unwrap();
        // Verify optimality against brute-force over the candidates.
        let required = 1_200_000;
        let best_cost = candidates
            .iter()
            .map(|c| c.stats(&g))
            .filter(|s| s.offloaded_memory_bytes >= required)
            .map(|s| s.cut.bytes)
            .min()
            .unwrap();
        assert_eq!(chosen.stats.cut.bytes, best_cost);
    }

    #[test]
    fn memory_policy_returns_none_when_nothing_frees_enough() {
        let g = memory_graph();
        let candidates = candidate_partitionings(&g);
        // Demand that 100% of a huge heap be freed: impossible.
        let policy = MemoryPolicy::new(1.0);
        let snapshot = ResourceSnapshot::new(1_000_000_000, 900_000_000);
        assert!(policy.select(&g, snapshot, &candidates).is_none());
    }

    #[test]
    #[should_panic(expected = "min_free_fraction must be in")]
    fn memory_policy_rejects_zero_fraction() {
        let _ = MemoryPolicy::new(0.0);
    }

    /// A compute-heavy offloadable cluster weakly coupled to the pinned UI.
    fn cpu_graph(comm_heavy: bool) -> ExecutionGraph {
        let mut g = ExecutionGraph::new();
        let ui = g.add_node(NodeInfo::pinned("Ui", PinReason::NativeMethods));
        let engine = g.add_node(NodeInfo::new("Engine"));
        let math = g.add_node(NodeInfo::new("Math"));
        g.node_mut(ui).cpu_micros = 1_000_000; // 1 s
        g.node_mut(engine).cpu_micros = 60_000_000; // 60 s
        g.node_mut(math).cpu_micros = 40_000_000; // 40 s
                                                  // In the chatty variant, every edge is so interaction-heavy that
                                                  // any cut costs more round trips than offloading could ever save.
        let (count, bytes) = if comm_heavy {
            (2_000_000, 400_000_000)
        } else {
            (100, 10_000)
        };
        let (inner_count, inner_bytes) = if comm_heavy {
            (2_000_000, 50_000_000)
        } else {
            (10_000, 1_000_000)
        };
        g.record_interaction(ui, engine, EdgeInfo::new(count, bytes));
        g.record_interaction(engine, math, EdgeInfo::new(inner_count, inner_bytes));
        g
    }

    #[test]
    fn cpu_policy_offloads_compute_heavy_low_comm_apps() {
        let g = cpu_graph(false);
        let candidates = candidate_partitionings(&g);
        let policy = CpuPolicy::default();
        let snapshot = ResourceSnapshot::new(8_000_000, 1_000_000);
        let chosen = policy
            .select(&g, snapshot, &candidates)
            .expect("beneficial");
        let baseline = policy.predictor().unpartitioned_seconds(&g);
        assert!(chosen.score < baseline);
        // Both compute classes should leave the client.
        assert!(chosen.stats.offloaded_cpu_micros >= 100_000_000);
    }

    #[test]
    fn cpu_policy_refuses_non_beneficial_offload() {
        let g = cpu_graph(true);
        let candidates = candidate_partitionings(&g);
        let policy = CpuPolicy::default();
        let snapshot = ResourceSnapshot::new(8_000_000, 1_000_000);
        // Chatty edges make every candidate slower than local execution.
        assert!(policy.select(&g, snapshot, &candidates).is_none());
    }

    #[test]
    fn cpu_policy_margin_tightens_the_gate() {
        let g = cpu_graph(false);
        let candidates = candidate_partitionings(&g);
        let snapshot = ResourceSnapshot::new(8_000_000, 1_000_000);
        let loose = CpuPolicy::default();
        let tight = CpuPolicy::default().with_margin(0.99);
        assert!(loose.select(&g, snapshot, &candidates).is_some());
        assert!(tight.select(&g, snapshot, &candidates).is_none());
    }

    #[test]
    #[should_panic(expected = "margin must be in")]
    fn cpu_policy_rejects_bad_margin() {
        let _ = CpuPolicy::default().with_margin(1.0);
    }

    #[test]
    fn combined_policy_prefers_memory_feasible_time_optimal() {
        let mut g = memory_graph();
        // Give the classes CPU weight so time matters.
        for id in g.node_ids().collect::<Vec<_>>() {
            g.node_mut(id).cpu_micros = 10_000_000;
        }
        let candidates = candidate_partitionings(&g);
        let policy = CombinedPolicy::new(MemoryPolicy::new(0.20), CpuPolicy::default());
        let snapshot = ResourceSnapshot::new(6_000_000, 5_900_000);
        let chosen = policy.select(&g, snapshot, &candidates).expect("feasible");
        assert!(chosen.stats.offloaded_memory_bytes >= 1_200_000);
    }

    #[test]
    fn combined_policy_falls_back_to_cpu_when_memory_infeasible() {
        let g = cpu_graph(false);
        let candidates = candidate_partitionings(&g);
        // Memory requirement impossible (no memory annotations at all).
        let policy = CombinedPolicy::new(MemoryPolicy::new(0.5), CpuPolicy::default());
        let snapshot = ResourceSnapshot::new(8_000_000, 7_000_000);
        let chosen = policy.select(&g, snapshot, &candidates);
        assert!(chosen.is_some(), "should fall back to CPU policy");
    }

    #[test]
    fn policies_are_object_safe() {
        let policies: Vec<Box<dyn PartitionPolicy>> = vec![
            Box::new(MemoryPolicy::new(0.2)),
            Box::new(CpuPolicy::default()),
            Box::new(CombinedPolicy::new(
                MemoryPolicy::new(0.2),
                CpuPolicy::default(),
            )),
        ];
        for p in &policies {
            assert!(!p.name().is_empty());
        }
    }

    /// Every (policy, snapshot) pair used by the strategy-equivalence tests.
    fn equivalence_cases() -> Vec<(ExecutionGraph, Box<dyn PartitionPolicy>, ResourceSnapshot)> {
        let mut cases: Vec<(ExecutionGraph, Box<dyn PartitionPolicy>, ResourceSnapshot)> = vec![
            (
                memory_graph(),
                Box::new(MemoryPolicy::new(0.20)),
                ResourceSnapshot::new(6_000_000, 5_900_000),
            ),
            (
                memory_graph(),
                Box::new(MemoryPolicy::new(1.0)),
                ResourceSnapshot::new(1_000_000_000, 900_000_000),
            ),
            (
                cpu_graph(false),
                Box::new(CpuPolicy::default()),
                ResourceSnapshot::new(8_000_000, 1_000_000),
            ),
            (
                cpu_graph(true),
                Box::new(CpuPolicy::default()),
                ResourceSnapshot::new(8_000_000, 1_000_000),
            ),
            (
                cpu_graph(false),
                Box::new(CombinedPolicy::new(
                    MemoryPolicy::new(0.5),
                    CpuPolicy::default(),
                )),
                ResourceSnapshot::new(8_000_000, 7_000_000),
            ),
        ];
        let mut busy = memory_graph();
        for id in busy.node_ids().collect::<Vec<_>>() {
            busy.node_mut(id).cpu_micros = 10_000_000;
        }
        cases.push((
            busy,
            Box::new(CombinedPolicy::new(
                MemoryPolicy::new(0.20),
                CpuPolicy::default(),
            )),
            ResourceSnapshot::new(6_000_000, 5_900_000),
        ));
        cases
    }

    #[test]
    fn parallel_selection_is_bit_identical_to_sequential() {
        for (g, policy, snapshot) in equivalence_cases() {
            let candidates = candidate_partitionings(&g);
            let sequential =
                policy.select_with(&g, snapshot, &candidates, EvalStrategy::Sequential);
            for threads in [1, 2, 3, 8] {
                let parallel = policy.select_with(
                    &g,
                    snapshot,
                    &candidates,
                    EvalStrategy::Parallel { threads },
                );
                assert_eq!(
                    sequential,
                    parallel,
                    "policy {}, {threads} threads",
                    policy.name()
                );
                if let (Some(s), Some(p)) = (&sequential, &parallel) {
                    assert_eq!(s.score.to_bits(), p.score.to_bits());
                }
            }
        }
    }

    #[test]
    fn plan_selection_matches_sequence_selection() {
        for (g, policy, snapshot) in equivalence_cases() {
            let plan = plan_candidates(&g);
            let candidates = plan.materialize();
            let classic = policy.select(&g, snapshot, &candidates);
            for strategy in [
                EvalStrategy::Sequential,
                EvalStrategy::Parallel { threads: 2 },
                EvalStrategy::Parallel { threads: 0 },
            ] {
                let planned = policy.select_plan(&g, snapshot, &plan, strategy);
                assert_eq!(classic, planned, "policy {}, {strategy:?}", policy.name());
            }
        }
    }

    #[test]
    fn plan_sweep_stats_match_from_scratch_stats() {
        let g = memory_graph();
        let plan = plan_candidates(&g);
        let mut current = plan.candidate(0);
        let mut stats = current.stats(&g);
        for (i, &v) in plan.moves().iter().enumerate() {
            advance_candidate(&g, &mut current, &mut stats, v);
            assert_eq!(current, plan.candidate(i + 1));
            assert_eq!(stats, current.stats(&g), "incremental stats after move {i}");
        }
    }

    #[test]
    fn eval_strategy_defaults_and_resolves() {
        assert_eq!(EvalStrategy::default(), EvalStrategy::Sequential);
        assert_eq!(EvalStrategy::Sequential.resolved_threads(), 1);
        assert_eq!(EvalStrategy::Parallel { threads: 4 }.resolved_threads(), 4);
        assert!(EvalStrategy::Parallel { threads: 0 }.resolved_threads() >= 1);
    }

    #[test]
    fn eval_strategy_serde_round_trips() {
        for strategy in [
            EvalStrategy::Sequential,
            EvalStrategy::Parallel { threads: 0 },
            EvalStrategy::Parallel { threads: 8 },
        ] {
            let json = serde_json::to_string(&strategy).unwrap();
            let back: EvalStrategy = serde_json::from_str(&json).unwrap();
            assert_eq!(strategy, back);
        }
    }
}
