//! Partitioning policies: which candidate partitioning (if any) to apply.
//!
//! A policy receives the execution graph, a snapshot of the client's
//! resources, and the candidate sequence produced by the modified-MINCUT
//! heuristic. It filters the candidates for *feasibility* (e.g. "frees at
//! least 20% of the Java heap"), scores the feasible ones with a cost
//! function, and — crucially — only selects a partitioning when offloading
//! is *beneficial* (paper §2, "Beneficial offloading").

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cost::{CostFunction, CutBytes, PredictedTime};
use crate::graph::ExecutionGraph;
use crate::heuristic::CandidateSequence;
use crate::partition::{PartitionStats, Partitioning};

/// A snapshot of the client device's resources at policy-evaluation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceSnapshot {
    /// Total capacity of the client's Java heap, in bytes.
    pub heap_capacity: u64,
    /// Bytes of the client heap currently occupied by live objects.
    pub heap_used: u64,
}

impl ResourceSnapshot {
    /// Creates a snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `heap_used > heap_capacity`.
    pub fn new(heap_capacity: u64, heap_used: u64) -> Self {
        assert!(
            heap_used <= heap_capacity,
            "heap_used ({heap_used}) exceeds capacity ({heap_capacity})"
        );
        ResourceSnapshot {
            heap_capacity,
            heap_used,
        }
    }

    /// Bytes of heap currently free.
    #[inline]
    pub fn heap_free(&self) -> u64 {
        self.heap_capacity - self.heap_used
    }

    /// Fraction of the heap currently free, in `[0, 1]`.
    pub fn free_fraction(&self) -> f64 {
        if self.heap_capacity == 0 {
            0.0
        } else {
            self.heap_free() as f64 / self.heap_capacity as f64
        }
    }
}

/// The partitioning a policy selected, with its statistics and score.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectedPartition {
    /// The chosen placement.
    pub partitioning: Partitioning,
    /// Precomputed statistics of the placement.
    pub stats: PartitionStats,
    /// The cost-function score of the placement (lower was better).
    pub score: f64,
}

/// Decides whether and how to offload, given candidate partitionings.
pub trait PartitionPolicy: Send + Sync {
    /// A short name for reports.
    fn name(&self) -> &str;

    /// Evaluates `candidates` and returns the best feasible, beneficial
    /// partitioning, or `None` when the application should not be
    /// partitioned (no feasible candidate, or offloading is not beneficial).
    fn select(
        &self,
        graph: &ExecutionGraph,
        snapshot: ResourceSnapshot,
        candidates: &CandidateSequence,
    ) -> Option<SelectedPartition>;
}

/// The paper's memory-relief policy (§5.1): any acceptable partitioning must
/// free at least `min_free_fraction` of the Java heap; among those, minimize
/// the historical bytes crossing the cut.
///
/// # Examples
///
/// ```
/// use aide_graph::{MemoryPolicy, PartitionPolicy, ResourceSnapshot};
/// use aide_graph::{ExecutionGraph, NodeInfo, EdgeInfo, PinReason};
/// use aide_graph::candidate_partitionings;
///
/// let mut g = ExecutionGraph::new();
/// let ui = g.add_node(NodeInfo::pinned("Ui", PinReason::NativeMethods));
/// let doc = g.add_node(NodeInfo::new("Document"));
/// g.node_mut(doc).memory_bytes = 5_000_000;
/// g.record_interaction(ui, doc, EdgeInfo::new(10, 1_000));
///
/// let policy = MemoryPolicy::new(0.20);
/// let snapshot = ResourceSnapshot::new(6_000_000, 5_900_000);
/// let candidates = candidate_partitionings(&g);
/// let chosen = policy.select(&g, snapshot, &candidates).expect("feasible");
/// assert!(chosen.stats.offloaded_memory_bytes >= 1_200_000);
/// ```
pub struct MemoryPolicy {
    min_free_fraction: f64,
    cost: Box<dyn CostFunction>,
}

impl fmt::Debug for MemoryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryPolicy")
            .field("min_free_fraction", &self.min_free_fraction)
            .field("cost", &self.cost.name())
            .finish()
    }
}

impl MemoryPolicy {
    /// Creates the policy with the paper's default cost function
    /// ([`CutBytes`]).
    ///
    /// # Panics
    ///
    /// Panics if `min_free_fraction` is outside `(0, 1]`.
    pub fn new(min_free_fraction: f64) -> Self {
        MemoryPolicy::with_cost(min_free_fraction, Box::new(CutBytes))
    }

    /// Creates the policy with a custom cost function.
    ///
    /// # Panics
    ///
    /// Panics if `min_free_fraction` is outside `(0, 1]`.
    pub fn with_cost(min_free_fraction: f64, cost: Box<dyn CostFunction>) -> Self {
        assert!(
            min_free_fraction > 0.0 && min_free_fraction <= 1.0,
            "min_free_fraction must be in (0, 1], got {min_free_fraction}"
        );
        MemoryPolicy {
            min_free_fraction,
            cost,
        }
    }

    /// The minimum fraction of the heap a partitioning must free.
    pub fn min_free_fraction(&self) -> f64 {
        self.min_free_fraction
    }
}

impl PartitionPolicy for MemoryPolicy {
    fn name(&self) -> &str {
        "memory"
    }

    fn select(
        &self,
        graph: &ExecutionGraph,
        snapshot: ResourceSnapshot,
        candidates: &CandidateSequence,
    ) -> Option<SelectedPartition> {
        let required = (snapshot.heap_capacity as f64 * self.min_free_fraction).ceil() as u64;
        let mut best: Option<SelectedPartition> = None;
        for cand in candidates.iter() {
            let stats = cand.stats(graph);
            if stats.offloaded_memory_bytes < required {
                continue;
            }
            let score = self.cost.cost(graph, cand, &stats);
            if best.as_ref().is_none_or(|b| score < b.score) {
                best = Some(SelectedPartition {
                    partitioning: cand.clone(),
                    stats,
                    score,
                });
            }
        }
        best
    }
}

/// The processing-relief policy (§5.2): pick the candidate with the lowest
/// *predicted completion time* and offload only if that prediction beats
/// running the whole application on the client ("beneficial offloading").
///
/// This is the gate that correctly refuses to offload Biomer in Figure 10
/// (predicted 790 s vs. 750 s unpartitioned).
#[derive(Debug, Clone, PartialEq)]
pub struct CpuPolicy {
    predictor: PredictedTime,
    /// Required fractional improvement before offloading (0 = any win).
    margin: f64,
}

impl CpuPolicy {
    /// Creates the policy from a completion-time predictor.
    pub fn new(predictor: PredictedTime) -> Self {
        CpuPolicy {
            predictor,
            margin: 0.0,
        }
    }

    /// Requires predictions to beat local execution by `margin` (e.g. `0.05`
    /// = at least 5% faster) before offloading.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is not in `[0, 1)`.
    pub fn with_margin(mut self, margin: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&margin),
            "margin must be in [0, 1), got {margin}"
        );
        self.margin = margin;
        self
    }

    /// The completion-time predictor in use.
    pub fn predictor(&self) -> &PredictedTime {
        &self.predictor
    }
}

impl Default for CpuPolicy {
    fn default() -> Self {
        CpuPolicy::new(PredictedTime::default())
    }
}

impl PartitionPolicy for CpuPolicy {
    fn name(&self) -> &str {
        "cpu"
    }

    fn select(
        &self,
        graph: &ExecutionGraph,
        _snapshot: ResourceSnapshot,
        candidates: &CandidateSequence,
    ) -> Option<SelectedPartition> {
        let baseline = self.predictor.unpartitioned_seconds(graph);
        let mut best: Option<SelectedPartition> = None;
        for cand in candidates.iter() {
            let stats = cand.stats(graph);
            let score = self.predictor.predicted_seconds(&stats);
            if best.as_ref().is_none_or(|b| score < b.score) {
                best = Some(SelectedPartition {
                    partitioning: cand.clone(),
                    stats,
                    score,
                });
            }
        }
        // Beneficial-offloading gate: refuse if the best prediction does not
        // beat local execution by the required margin.
        best.filter(|b| b.score < baseline * (1.0 - self.margin))
    }
}

/// A combined policy (paper §8 future work): relieve memory pressure first
/// and, among memory-feasible candidates, minimize predicted completion
/// time. Falls back to pure time minimization when no candidate satisfies
/// the memory requirement but the heap is not yet critical.
#[derive(Debug)]
pub struct CombinedPolicy {
    memory: MemoryPolicy,
    cpu: CpuPolicy,
}

impl CombinedPolicy {
    /// Creates a combined policy from its two halves.
    pub fn new(memory: MemoryPolicy, cpu: CpuPolicy) -> Self {
        CombinedPolicy { memory, cpu }
    }
}

impl PartitionPolicy for CombinedPolicy {
    fn name(&self) -> &str {
        "combined"
    }

    fn select(
        &self,
        graph: &ExecutionGraph,
        snapshot: ResourceSnapshot,
        candidates: &CandidateSequence,
    ) -> Option<SelectedPartition> {
        let required =
            (snapshot.heap_capacity as f64 * self.memory.min_free_fraction()).ceil() as u64;
        let predictor = self.cpu.predictor();
        let mut best: Option<SelectedPartition> = None;
        for cand in candidates.iter() {
            let stats = cand.stats(graph);
            if stats.offloaded_memory_bytes < required {
                continue;
            }
            let score = predictor.predicted_seconds(&stats);
            if best.as_ref().is_none_or(|b| score < b.score) {
                best = Some(SelectedPartition {
                    partitioning: cand.clone(),
                    stats,
                    score,
                });
            }
        }
        if best.is_some() {
            return best;
        }
        // No memory-feasible candidate: fall back to a pure CPU decision.
        self.cpu.select(graph, snapshot, candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeInfo, NodeInfo, PinReason};
    use crate::heuristic::candidate_partitionings;

    /// A pinned UI class plus a chain of memory-bearing classes.
    fn memory_graph() -> ExecutionGraph {
        let mut g = ExecutionGraph::new();
        let ui = g.add_node(NodeInfo::pinned("Ui", PinReason::NativeMethods));
        let doc = g.add_node(NodeInfo::new("Document"));
        let idx = g.add_node(NodeInfo::new("Index"));
        let fmt = g.add_node(NodeInfo::new("Formatter"));
        g.node_mut(doc).memory_bytes = 3_000_000;
        g.node_mut(idx).memory_bytes = 1_000_000;
        g.node_mut(fmt).memory_bytes = 500_000;
        g.record_interaction(ui, fmt, EdgeInfo::new(1_000, 200_000));
        g.record_interaction(fmt, doc, EdgeInfo::new(500, 100_000));
        g.record_interaction(doc, idx, EdgeInfo::new(50, 10_000));
        g
    }

    #[test]
    fn snapshot_free_accounting() {
        let s = ResourceSnapshot::new(6_000_000, 5_700_000);
        assert_eq!(s.heap_free(), 300_000);
        assert!((s.free_fraction() - 0.05).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn snapshot_rejects_overfull_heap() {
        let _ = ResourceSnapshot::new(100, 200);
    }

    #[test]
    fn zero_capacity_snapshot_has_zero_free_fraction() {
        assert_eq!(ResourceSnapshot::new(0, 0).free_fraction(), 0.0);
    }

    #[test]
    fn memory_policy_frees_required_amount() {
        let g = memory_graph();
        let candidates = candidate_partitionings(&g);
        let policy = MemoryPolicy::new(0.20);
        let snapshot = ResourceSnapshot::new(6_000_000, 5_900_000);
        let chosen = policy.select(&g, snapshot, &candidates).expect("feasible");
        assert!(chosen.stats.offloaded_memory_bytes >= 1_200_000);
    }

    #[test]
    fn memory_policy_minimizes_cut_bytes_among_feasible() {
        let g = memory_graph();
        let candidates = candidate_partitionings(&g);
        let policy = MemoryPolicy::new(0.20);
        let snapshot = ResourceSnapshot::new(6_000_000, 5_900_000);
        let chosen = policy.select(&g, snapshot, &candidates).unwrap();
        // Verify optimality against brute-force over the candidates.
        let required = 1_200_000;
        let best_cost = candidates
            .iter()
            .map(|c| c.stats(&g))
            .filter(|s| s.offloaded_memory_bytes >= required)
            .map(|s| s.cut.bytes)
            .min()
            .unwrap();
        assert_eq!(chosen.stats.cut.bytes, best_cost);
    }

    #[test]
    fn memory_policy_returns_none_when_nothing_frees_enough() {
        let g = memory_graph();
        let candidates = candidate_partitionings(&g);
        // Demand that 100% of a huge heap be freed: impossible.
        let policy = MemoryPolicy::new(1.0);
        let snapshot = ResourceSnapshot::new(1_000_000_000, 900_000_000);
        assert!(policy.select(&g, snapshot, &candidates).is_none());
    }

    #[test]
    #[should_panic(expected = "min_free_fraction must be in")]
    fn memory_policy_rejects_zero_fraction() {
        let _ = MemoryPolicy::new(0.0);
    }

    /// A compute-heavy offloadable cluster weakly coupled to the pinned UI.
    fn cpu_graph(comm_heavy: bool) -> ExecutionGraph {
        let mut g = ExecutionGraph::new();
        let ui = g.add_node(NodeInfo::pinned("Ui", PinReason::NativeMethods));
        let engine = g.add_node(NodeInfo::new("Engine"));
        let math = g.add_node(NodeInfo::new("Math"));
        g.node_mut(ui).cpu_micros = 1_000_000; // 1 s
        g.node_mut(engine).cpu_micros = 60_000_000; // 60 s
        g.node_mut(math).cpu_micros = 40_000_000; // 40 s
        // In the chatty variant, every edge is so interaction-heavy that
        // any cut costs more round trips than offloading could ever save.
        let (count, bytes) = if comm_heavy {
            (2_000_000, 400_000_000)
        } else {
            (100, 10_000)
        };
        let (inner_count, inner_bytes) = if comm_heavy {
            (2_000_000, 50_000_000)
        } else {
            (10_000, 1_000_000)
        };
        g.record_interaction(ui, engine, EdgeInfo::new(count, bytes));
        g.record_interaction(engine, math, EdgeInfo::new(inner_count, inner_bytes));
        g
    }

    #[test]
    fn cpu_policy_offloads_compute_heavy_low_comm_apps() {
        let g = cpu_graph(false);
        let candidates = candidate_partitionings(&g);
        let policy = CpuPolicy::default();
        let snapshot = ResourceSnapshot::new(8_000_000, 1_000_000);
        let chosen = policy.select(&g, snapshot, &candidates).expect("beneficial");
        let baseline = policy.predictor().unpartitioned_seconds(&g);
        assert!(chosen.score < baseline);
        // Both compute classes should leave the client.
        assert!(chosen.stats.offloaded_cpu_micros >= 100_000_000);
    }

    #[test]
    fn cpu_policy_refuses_non_beneficial_offload() {
        let g = cpu_graph(true);
        let candidates = candidate_partitionings(&g);
        let policy = CpuPolicy::default();
        let snapshot = ResourceSnapshot::new(8_000_000, 1_000_000);
        // Chatty edges make every candidate slower than local execution.
        assert!(policy.select(&g, snapshot, &candidates).is_none());
    }

    #[test]
    fn cpu_policy_margin_tightens_the_gate() {
        let g = cpu_graph(false);
        let candidates = candidate_partitionings(&g);
        let snapshot = ResourceSnapshot::new(8_000_000, 1_000_000);
        let loose = CpuPolicy::default();
        let tight = CpuPolicy::default().with_margin(0.99);
        assert!(loose.select(&g, snapshot, &candidates).is_some());
        assert!(tight.select(&g, snapshot, &candidates).is_none());
    }

    #[test]
    #[should_panic(expected = "margin must be in")]
    fn cpu_policy_rejects_bad_margin() {
        let _ = CpuPolicy::default().with_margin(1.0);
    }

    #[test]
    fn combined_policy_prefers_memory_feasible_time_optimal() {
        let mut g = memory_graph();
        // Give the classes CPU weight so time matters.
        for id in g.node_ids().collect::<Vec<_>>() {
            g.node_mut(id).cpu_micros = 10_000_000;
        }
        let candidates = candidate_partitionings(&g);
        let policy = CombinedPolicy::new(MemoryPolicy::new(0.20), CpuPolicy::default());
        let snapshot = ResourceSnapshot::new(6_000_000, 5_900_000);
        let chosen = policy.select(&g, snapshot, &candidates).expect("feasible");
        assert!(chosen.stats.offloaded_memory_bytes >= 1_200_000);
    }

    #[test]
    fn combined_policy_falls_back_to_cpu_when_memory_infeasible() {
        let g = cpu_graph(false);
        let candidates = candidate_partitionings(&g);
        // Memory requirement impossible (no memory annotations at all).
        let policy = CombinedPolicy::new(MemoryPolicy::new(0.5), CpuPolicy::default());
        let snapshot = ResourceSnapshot::new(8_000_000, 7_000_000);
        let chosen = policy.select(&g, snapshot, &candidates);
        assert!(chosen.is_some(), "should fall back to CPU policy");
    }

    #[test]
    fn policies_are_object_safe() {
        let policies: Vec<Box<dyn PartitionPolicy>> = vec![
            Box::new(MemoryPolicy::new(0.2)),
            Box::new(CpuPolicy::default()),
            Box::new(CombinedPolicy::new(
                MemoryPolicy::new(0.2),
                CpuPolicy::default(),
            )),
        ];
        for p in &policies {
            assert!(!p.name().is_empty());
        }
    }
}
