//! An alternative partitioning heuristic (paper §8: "We also plan to study
//! additional partitioning heuristics besides the modified MINCUT approach
//! that is currently being used").
//!
//! The *memory-density* heuristic greedily offloads the node with the best
//! ratio of memory freed to communication added: at each step it moves the
//! unpinned node whose `memory_bytes / (marginal cut weight + 1)` is
//! largest, recording every intermediate partitioning. Where the modified
//! MINCUT sweep orders nodes by connectivity to the *client* (pulling hot
//! nodes home), density ordering chases memory directly — it reaches
//! memory-feasible candidates in fewer moves but may cut hotter edges.
//! `ablate_mincut` compares the two on JavaNote's graph.

use crate::graph::{ExecutionGraph, NodeId};
use crate::heuristic::CandidateSequence;
use crate::partition::{Partitioning, Side};

/// Runs the memory-density heuristic over `graph`.
///
/// Candidates are emitted from least-offloaded (one node) to
/// most-offloaded (every unpinned node), mirroring the greedy order in
/// which nodes are chosen. Pinned nodes always stay on the client.
///
/// # Examples
///
/// ```
/// use aide_graph::{density_candidates, EdgeInfo, ExecutionGraph, NodeInfo, PinReason};
///
/// let mut g = ExecutionGraph::new();
/// let ui = g.add_node(NodeInfo::pinned("Ui", PinReason::NativeMethods));
/// let big = g.add_node(NodeInfo::new("BigColdBuffer"));
/// let hot = g.add_node(NodeInfo::new("HotHelper"));
/// g.node_mut(big).memory_bytes = 1_000_000;
/// g.node_mut(hot).memory_bytes = 1_000;
/// g.record_interaction(ui, hot, EdgeInfo::new(10_000, 1_000_000));
/// g.record_interaction(hot, big, EdgeInfo::new(10, 100));
///
/// let seq = density_candidates(&g);
/// // The first (single-node) candidate offloads the dense cold buffer.
/// let first = &seq.candidates()[0];
/// assert!(!first.is_client(big));
/// assert!(first.is_client(hot));
/// ```
pub fn density_candidates(graph: &ExecutionGraph) -> CandidateSequence {
    let n = graph.node_count();
    let unpinned: Vec<NodeId> = graph
        .iter()
        .filter(|(_, info)| !info.is_pinned())
        .map(|(id, _)| id)
        .collect();
    if n < 2 || unpinned.is_empty() {
        return CandidateSequence::empty();
    }

    let mut offloaded = vec![false; n];
    let mut current = Partitioning::all_client(graph);
    let mut candidates = Vec::with_capacity(unpinned.len());
    let mut move_order = Vec::with_capacity(unpinned.len());

    for _ in 0..unpinned.len() {
        // Marginal cut change if `v` moves: edges to client-side nodes are
        // added to the cut, edges to already-offloaded nodes are removed.
        let best = unpinned
            .iter()
            .filter(|v| !offloaded[v.index()])
            .map(|&v| {
                let mut added = 0i128;
                for (nb, e) in graph.neighbors(v) {
                    if offloaded[nb.index()] {
                        added -= i128::from(e.weight());
                    } else {
                        added += i128::from(e.weight());
                    }
                }
                let density = graph.node(v).memory_bytes as f64 / (added.max(0) as f64 + 1.0);
                (v, density)
            })
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("densities are finite")
                    .then_with(|| b.0.cmp(&a.0))
            })
            .map(|(v, _)| v)
            .expect("unpinned node remains");

        offloaded[best.index()] = true;
        current.set_side(best, Side::Surrogate);
        move_order.push(best);
        candidates.push(current.clone());
    }

    CandidateSequence::from_parts(candidates, move_order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeInfo, NodeInfo, PinReason};

    fn bytes(b: u64) -> EdgeInfo {
        EdgeInfo::new(0, b)
    }

    #[test]
    fn empty_and_pinned_graphs_yield_nothing() {
        let g = ExecutionGraph::new();
        assert!(density_candidates(&g).is_empty());

        let mut g = ExecutionGraph::new();
        let a = g.add_node(NodeInfo::pinned("A", PinReason::NativeMethods));
        let b = g.add_node(NodeInfo::pinned("B", PinReason::NativeMethods));
        g.record_interaction(a, b, bytes(5));
        assert!(density_candidates(&g).is_empty());
    }

    #[test]
    fn dense_cold_memory_is_offloaded_first() {
        let mut g = ExecutionGraph::new();
        let ui = g.add_node(NodeInfo::pinned("Ui", PinReason::NativeMethods));
        let cold = g.add_node(NodeInfo::new("Cold"));
        let hot = g.add_node(NodeInfo::new("Hot"));
        g.node_mut(cold).memory_bytes = 500_000;
        g.node_mut(hot).memory_bytes = 400_000;
        g.record_interaction(ui, hot, bytes(1_000_000)); // hot is expensive to move
        g.record_interaction(ui, cold, bytes(10));
        let seq = density_candidates(&g);
        assert_eq!(seq.move_order()[0], cold);
        assert_eq!(seq.move_order()[1], hot);
    }

    #[test]
    fn every_candidate_keeps_pinned_nodes_home() {
        let mut g = ExecutionGraph::new();
        let p = g.add_node(NodeInfo::pinned("P", PinReason::Explicit));
        for i in 0..6 {
            let n = g.add_node(NodeInfo::new(format!("N{i}")));
            g.node_mut(n).memory_bytes = 100 * (i + 1);
            g.record_interaction(p, n, bytes(i + 1));
        }
        let seq = density_candidates(&g);
        assert_eq!(seq.len(), 6);
        for cand in seq.iter() {
            assert!(cand.is_client(p));
        }
        // Offloaded counts grow one at a time.
        let counts: Vec<usize> = seq.iter().map(|c| c.offloaded_count()).collect();
        assert_eq!(counts, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn clustered_nodes_follow_each_other() {
        // Once half a heavy cluster moves, moving the rest REMOVES cut
        // weight, so density favors completing the cluster.
        let mut g = ExecutionGraph::new();
        let ui = g.add_node(NodeInfo::pinned("Ui", PinReason::NativeMethods));
        let a = g.add_node(NodeInfo::new("ClusterA"));
        let b = g.add_node(NodeInfo::new("ClusterB"));
        let lone = g.add_node(NodeInfo::new("Lone"));
        g.node_mut(a).memory_bytes = 1_000_000;
        g.node_mut(b).memory_bytes = 200_000;
        g.node_mut(lone).memory_bytes = 250_000;
        g.record_interaction(a, b, bytes(800_000));
        g.record_interaction(ui, b, bytes(50));
        g.record_interaction(ui, lone, bytes(40));
        let seq = density_candidates(&g);
        // The lone node is densest (tiny cut). Then A (its huge edge makes
        // it expensive, but it carries the most memory) — and once A has
        // moved, B's marginal cut is *negative* (moving it removes the A-B
        // edge), so B follows its cluster immediately.
        assert_eq!(seq.move_order(), &[lone, a, b]);
    }
}
