//! Exact global minimum cut via the Stoer–Wagner algorithm.
//!
//! The paper's partitioning heuristic (§3.3) is *derived from* Stoer and
//! Wagner's simple min-cut algorithm \[27\]. This module implements the exact
//! algorithm; it serves as the baseline the modified heuristic is compared
//! against and as a test oracle for the heuristic's candidate sequence.

use crate::graph::{ExecutionGraph, NodeId};

/// The result of an exact minimum-cut computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinCut {
    /// Total weight of edges crossing the cut.
    pub weight: u64,
    /// One side of the cut (the other side is the complement).
    pub partition: Vec<NodeId>,
}

/// Computes the exact global minimum cut of `graph` using Stoer–Wagner.
///
/// Edge weights are [`crate::EdgeInfo::weight`] (bytes plus interaction
/// count). Runs in `O(V^3)` on the dense adjacency matrix, which is ample
/// for execution graphs of a few hundred classes (JavaNote has 138).
///
/// Returns `None` if the graph has fewer than two nodes (no cut exists).
///
/// # Examples
///
/// ```
/// use aide_graph::{ExecutionGraph, NodeInfo, EdgeInfo, stoer_wagner};
///
/// let mut g = ExecutionGraph::new();
/// let a = g.add_node(NodeInfo::new("A"));
/// let b = g.add_node(NodeInfo::new("B"));
/// let c = g.add_node(NodeInfo::new("C"));
/// g.record_interaction(a, b, EdgeInfo::new(0, 10));
/// g.record_interaction(b, c, EdgeInfo::new(0, 1));
/// let cut = stoer_wagner(&g).unwrap();
/// assert_eq!(cut.weight, 1); // severing b-c is cheapest
/// ```
pub fn stoer_wagner(graph: &ExecutionGraph) -> Option<MinCut> {
    let n = graph.node_count();
    if n < 2 {
        return None;
    }

    // Dense adjacency matrix of edge weights.
    let mut w = vec![vec![0u64; n]; n];
    for ((a, b), e) in graph.edges() {
        w[a.index()][b.index()] += e.weight();
        w[b.index()][a.index()] += e.weight();
    }

    // `members[v]` tracks the original nodes merged into contracted node v.
    let mut members: Vec<Vec<NodeId>> = (0..n).map(|i| vec![NodeId(i as u32)]).collect();
    let mut active: Vec<usize> = (0..n).collect();

    let mut best_weight = u64::MAX;
    let mut best_partition: Vec<NodeId> = Vec::new();

    while active.len() > 1 {
        // Maximum-adjacency ordering phase.
        let mut in_a = vec![false; n];
        let mut weights = vec![0u64; n];
        let mut order: Vec<usize> = Vec::with_capacity(active.len());

        for _ in 0..active.len() {
            // Select the not-yet-added active vertex with maximum connectivity
            // to the growing set A.
            let &next = active
                .iter()
                .filter(|&&v| !in_a[v])
                .max_by_key(|&&v| weights[v])
                .expect("active set not exhausted");
            in_a[next] = true;
            order.push(next);
            for &v in &active {
                if !in_a[v] {
                    weights[v] += w[next][v];
                }
            }
        }

        // Cut-of-the-phase: last vertex added, separated from the rest.
        let t = *order.last().expect("order nonempty");
        let s = order[order.len() - 2];
        let cut_of_phase = {
            // weights[t] was the connectivity of t to A just before insertion.
            let mut cw = 0u64;
            for &v in &active {
                if v != t {
                    cw += w[t][v];
                }
            }
            cw
        };
        if cut_of_phase < best_weight {
            best_weight = cut_of_phase;
            best_partition = members[t].clone();
        }

        // Contract t into s.
        let t_members = std::mem::take(&mut members[t]);
        members[s].extend(t_members);
        for &v in &active {
            if v != s && v != t {
                w[s][v] += w[t][v];
                w[v][s] = w[s][v];
            }
        }
        active.retain(|&v| v != t);
    }

    best_partition.sort();
    Some(MinCut {
        weight: best_weight,
        partition: best_partition,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeInfo, NodeInfo};

    fn bytes(b: u64) -> EdgeInfo {
        EdgeInfo::new(0, b)
    }

    #[test]
    fn empty_and_singleton_graphs_have_no_cut() {
        let mut g = ExecutionGraph::new();
        assert!(stoer_wagner(&g).is_none());
        g.add_node(NodeInfo::new("only"));
        assert!(stoer_wagner(&g).is_none());
    }

    #[test]
    fn two_node_graph_cut_equals_edge_weight() {
        let mut g = ExecutionGraph::new();
        let a = g.add_node(NodeInfo::new("A"));
        let b = g.add_node(NodeInfo::new("B"));
        g.record_interaction(a, b, bytes(42));
        let cut = stoer_wagner(&g).unwrap();
        assert_eq!(cut.weight, 42);
        assert_eq!(cut.partition.len(), 1);
    }

    #[test]
    fn disconnected_graph_has_zero_cut() {
        let mut g = ExecutionGraph::new();
        let a = g.add_node(NodeInfo::new("A"));
        let b = g.add_node(NodeInfo::new("B"));
        let c = g.add_node(NodeInfo::new("C"));
        let d = g.add_node(NodeInfo::new("D"));
        g.record_interaction(a, b, bytes(100));
        g.record_interaction(c, d, bytes(100));
        let cut = stoer_wagner(&g).unwrap();
        assert_eq!(cut.weight, 0);
    }

    #[test]
    fn path_graph_cuts_weakest_link() {
        let mut g = ExecutionGraph::new();
        let ids: Vec<NodeId> = (0..5)
            .map(|i| g.add_node(NodeInfo::new(format!("N{i}"))))
            .collect();
        let weights = [50, 30, 7, 90];
        for (i, &w) in weights.iter().enumerate() {
            g.record_interaction(ids[i], ids[i + 1], bytes(w));
        }
        let cut = stoer_wagner(&g).unwrap();
        assert_eq!(cut.weight, 7);
    }

    #[test]
    fn two_clusters_with_weak_bridge() {
        // Two triangles of heavy edges joined by one light edge.
        let mut g = ExecutionGraph::new();
        let n: Vec<NodeId> = (0..6)
            .map(|i| g.add_node(NodeInfo::new(format!("N{i}"))))
            .collect();
        for &(i, j) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.record_interaction(n[i], n[j], bytes(100));
        }
        g.record_interaction(n[2], n[3], bytes(3));
        let cut = stoer_wagner(&g).unwrap();
        assert_eq!(cut.weight, 3);
        // The returned partition must be one of the triangles.
        let mut p = cut.partition.clone();
        p.sort();
        assert!(p == vec![n[0], n[1], n[2]] || p == vec![n[3], n[4], n[5]]);
    }

    #[test]
    fn star_graph_cuts_single_leaf() {
        let mut g = ExecutionGraph::new();
        let hub = g.add_node(NodeInfo::new("hub"));
        let leaves: Vec<NodeId> = (0..4)
            .map(|i| g.add_node(NodeInfo::new(format!("L{i}"))))
            .collect();
        for (i, &l) in leaves.iter().enumerate() {
            g.record_interaction(hub, l, bytes(10 + i as u64));
        }
        let cut = stoer_wagner(&g).unwrap();
        assert_eq!(cut.weight, 10);
        assert_eq!(cut.partition, vec![leaves[0]]);
    }

    #[test]
    fn result_weight_matches_cut_weight_recomputation() {
        let mut g = ExecutionGraph::new();
        let n: Vec<NodeId> = (0..7)
            .map(|i| g.add_node(NodeInfo::new(format!("N{i}"))))
            .collect();
        let edges = [
            (0, 1, 4),
            (1, 2, 9),
            (2, 3, 2),
            (3, 4, 8),
            (4, 5, 5),
            (5, 6, 6),
            (6, 0, 3),
            (1, 4, 7),
            (2, 5, 1),
        ];
        for &(i, j, w) in &edges {
            g.record_interaction(n[i], n[j], bytes(w));
        }
        let cut = stoer_wagner(&g).unwrap();
        let side: std::collections::HashSet<NodeId> = cut.partition.iter().copied().collect();
        let recomputed = g.cut_weight(|v| side.contains(&v));
        assert_eq!(cut.weight, recomputed);
    }
}
