//! Golden-fixture regression tests for the full decision pipeline.
//!
//! Each fixture in `tests/fixtures/*.json` describes a small hand-traced
//! graph plus the exact heuristic and policy outcome it must produce:
//! move order, candidate shape, winner index, score, and cut statistics.
//! Unlike the property tests (which compare two implementations against
//! each other), these pin the *absolute* behavior, so a bug that changes
//! both pipelines in lockstep still trips a fixture.
//!
//! On mismatch the failure lists every diverging field side by side. To
//! re-bless after an intentional behavior change, run with `AIDE_BLESS=1`
//! and review the fixture diff in version control.

use std::path::PathBuf;

use aide_graph::{
    candidate_partitionings, EdgeInfo, ExecutionGraph, MemoryPolicy, NodeId, NodeInfo,
    PartitionPolicy, PinReason, ResourceSnapshot,
};
use serde::{Deserialize, Serialize};

#[derive(Debug, Deserialize)]
struct FixtureNode {
    label: String,
    pinned: Option<PinReason>,
    memory_bytes: u64,
}

#[derive(Debug, Deserialize)]
struct Fixture {
    name: String,
    #[allow(dead_code)]
    description: String,
    nodes: Vec<FixtureNode>,
    /// `[a, b, interactions, bytes]` per edge.
    edges: Vec<(u32, u32, u64, u64)>,
    min_free_fraction: f64,
    heap_capacity: u64,
    heap_used: u64,
    expected: Expected,
}

/// The hand-traced outcome a fixture pins down.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Expected {
    move_order: Vec<u32>,
    candidate_offloaded_counts: Vec<usize>,
    winner_index: usize,
    winner_score: f64,
    offloaded_memory_bytes: u64,
    offloaded_nodes: usize,
    cut_bytes: u64,
    cut_interactions: u64,
}

fn fixture_path(stem: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{stem}.json"))
}

fn load(stem: &str) -> Fixture {
    let path = fixture_path(stem);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("parsing fixture {}: {e}", path.display()))
}

fn build_graph(fixture: &Fixture) -> ExecutionGraph {
    let mut g = ExecutionGraph::new();
    for node in &fixture.nodes {
        let id = match node.pinned {
            Some(reason) => g.add_node(NodeInfo::pinned(node.label.clone(), reason)),
            None => g.add_node(NodeInfo::new(node.label.clone())),
        };
        g.node_mut(id).memory_bytes = node.memory_bytes;
    }
    for &(a, b, interactions, bytes) in &fixture.edges {
        g.record_interaction(NodeId(a), NodeId(b), EdgeInfo::new(interactions, bytes));
    }
    g
}

/// Runs the pipeline and captures the outcome in the fixture's terms.
fn run_pipeline(fixture: &Fixture) -> Expected {
    let g = build_graph(fixture);
    let candidates = candidate_partitionings(&g);
    let policy = MemoryPolicy::new(fixture.min_free_fraction);
    let snapshot = ResourceSnapshot::new(fixture.heap_capacity, fixture.heap_used);
    let selection = policy
        .select(&g, snapshot, &candidates)
        .unwrap_or_else(|| panic!("fixture '{}' must select a winner", fixture.name));
    let winner_index = candidates
        .iter()
        .position(|c| *c == selection.partitioning)
        .expect("winner is one of the candidates");
    Expected {
        move_order: candidates.move_order().iter().map(|n| n.0).collect(),
        candidate_offloaded_counts: candidates.iter().map(|c| c.offloaded_count()).collect(),
        winner_index,
        winner_score: selection.score,
        offloaded_memory_bytes: selection.stats.offloaded_memory_bytes,
        offloaded_nodes: selection.stats.offloaded_nodes,
        cut_bytes: selection.stats.cut.bytes,
        cut_interactions: selection.stats.cut.interactions,
    }
}

/// Compares field by field, reporting every divergence at once.
fn check(stem: &str) {
    let fixture = load(stem);
    let actual = run_pipeline(&fixture);
    let expected = &fixture.expected;

    if std::env::var_os("AIDE_BLESS").is_some() {
        bless(stem, &actual);
        return;
    }

    let mut diffs: Vec<String> = Vec::new();
    macro_rules! diff_field {
        ($field:ident) => {
            if actual.$field != expected.$field {
                diffs.push(format!(
                    "  {:<28} expected {:?}, got {:?}",
                    stringify!($field),
                    expected.$field,
                    actual.$field
                ));
            }
        };
    }
    diff_field!(move_order);
    diff_field!(candidate_offloaded_counts);
    diff_field!(winner_index);
    diff_field!(offloaded_memory_bytes);
    diff_field!(offloaded_nodes);
    diff_field!(cut_bytes);
    diff_field!(cut_interactions);
    if actual.winner_score.to_bits() != expected.winner_score.to_bits() {
        diffs.push(format!(
            "  {:<28} expected {:?}, got {:?}",
            "winner_score", expected.winner_score, actual.winner_score
        ));
    }

    assert!(
        diffs.is_empty(),
        "golden fixture '{stem}' diverged:\n{}\n\
         (intentional change? re-bless with AIDE_BLESS=1 and review the diff)",
        diffs.join("\n")
    );
}

/// Rewrites the fixture's `expected` block with the actual pipeline
/// outcome, preserving the input sections.
fn bless(stem: &str, actual: &Expected) {
    let path = fixture_path(stem);
    let text = std::fs::read_to_string(&path).expect("fixture exists");
    let mut value: serde_json::Value = serde_json::from_str(&text).expect("fixture parses");
    value["expected"] = serde_json::to_value(actual).expect("expected serializes");
    let pretty = serde_json::to_string_pretty(&value).expect("fixture re-serializes");
    std::fs::write(&path, pretty + "\n").expect("fixture rewrites");
    eprintln!("blessed fixture {}", path.display());
}

#[test]
fn golden_editor_pipeline() {
    check("editor");
}

#[test]
fn golden_chain_pipeline() {
    check("chain");
}

#[test]
fn golden_mesh_pipeline() {
    check("mesh");
}

/// The plan-based sweep reproduces every golden outcome too — the golden
/// values pin both pipelines, not just the classic one.
#[test]
fn golden_fixtures_hold_on_the_plan_path() {
    for stem in ["editor", "chain", "mesh"] {
        let fixture = load(stem);
        let g = build_graph(&fixture);
        let plan = aide_graph::plan_candidates(&g);
        let policy = MemoryPolicy::new(fixture.min_free_fraction);
        let snapshot = ResourceSnapshot::new(fixture.heap_capacity, fixture.heap_used);
        for strategy in [
            aide_graph::EvalStrategy::Sequential,
            aide_graph::EvalStrategy::Parallel { threads: 2 },
        ] {
            let selection = policy
                .select_plan(&g, snapshot, &plan, strategy)
                .unwrap_or_else(|| panic!("fixture '{stem}' must select under {strategy:?}"));
            assert_eq!(
                selection.score.to_bits(),
                fixture.expected.winner_score.to_bits(),
                "fixture '{stem}' plan-path score under {strategy:?}"
            );
            assert_eq!(
                selection.partitioning,
                plan.candidate(fixture.expected.winner_index),
                "fixture '{stem}' plan-path winner under {strategy:?}"
            );
        }
    }
}
