//! Property-based tests over graph construction, exact mincut, and the
//! modified-MINCUT candidate sequence.

use std::collections::HashSet;

use aide_graph::{
    candidate_partitionings, density_candidates, stoer_wagner, CpuPolicy, EdgeInfo, ExecutionGraph,
    MemoryPolicy, NodeId, NodeInfo, PartitionPolicy, Partitioning, PinReason, ResourceSnapshot,
    Side,
};
use proptest::prelude::*;

/// Strategy: a connected random graph with `n` nodes, random weights, and a
/// random subset of pinned nodes.
fn arb_graph(
    max_nodes: usize,
    pin_some: bool,
) -> impl Strategy<Value = (ExecutionGraph, Vec<(usize, usize, u64)>)> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            let pins = proptest::collection::vec(
                if pin_some {
                    any::<bool>().boxed()
                } else {
                    Just(false).boxed()
                },
                n,
            );
            // A spanning chain guarantees connectivity; extra random edges.
            let chain = proptest::collection::vec(1u64..1_000, n - 1);
            let extras = proptest::collection::vec((0..n, 0..n, 1u64..1_000), 0..n * 2);
            (Just(n), pins, chain, extras)
        })
        .prop_map(|(n, pins, chain, extras)| {
            let mut g = ExecutionGraph::new();
            let ids: Vec<NodeId> = (0..n)
                .map(|i| {
                    if pins[i] && i > 0 {
                        g.add_node(NodeInfo::pinned(format!("C{i}"), PinReason::NativeMethods))
                    } else {
                        g.add_node(NodeInfo::new(format!("C{i}")))
                    }
                })
                .collect();
            let mut edges = Vec::new();
            for (i, &w) in chain.iter().enumerate() {
                g.record_interaction(ids[i], ids[i + 1], EdgeInfo::new(1, w));
                edges.push((i, i + 1, w + 1));
            }
            for &(a, b, w) in &extras {
                if a != b {
                    g.record_interaction(ids[a], ids[b], EdgeInfo::new(1, w));
                    edges.push((a.min(b), a.max(b), w + 1));
                }
            }
            (g, edges)
        })
}

proptest! {
    /// The exact mincut weight is a lower bound on every random cut.
    #[test]
    fn stoer_wagner_is_minimal((g, _) in arb_graph(10, false), mask in any::<u32>()) {
        let exact = stoer_wagner(&g).unwrap();
        let n = g.node_count();
        // Build a random nontrivial cut from the mask bits.
        let side: HashSet<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        prop_assume!(!side.is_empty() && side.len() < n);
        let random_cut = g.cut_weight(|v| side.contains(&v.index()));
        prop_assert!(exact.weight <= random_cut,
            "exact {} > random {}", exact.weight, random_cut);
    }

    /// The reported mincut weight matches recomputation over its partition.
    #[test]
    fn stoer_wagner_weight_is_consistent((g, _) in arb_graph(12, false)) {
        let exact = stoer_wagner(&g).unwrap();
        let side: HashSet<NodeId> = exact.partition.iter().copied().collect();
        prop_assert!(!side.is_empty());
        prop_assert!(side.len() < g.node_count());
        let recomputed = g.cut_weight(|v| side.contains(&v));
        prop_assert_eq!(exact.weight, recomputed);
    }

    /// Every candidate is a complete two-partition that keeps pinned nodes
    /// on the client and offloads at least one node.
    #[test]
    fn candidates_are_valid_partitionings((g, _) in arb_graph(14, true)) {
        let seq = candidate_partitionings(&g);
        let pinned: Vec<NodeId> = g.pinned_nodes().collect();
        for cand in seq.iter() {
            prop_assert_eq!(cand.len(), g.node_count());
            prop_assert!(cand.offloaded_count() >= 1);
            for &p in &pinned {
                prop_assert!(cand.is_client(p));
            }
        }
    }

    /// Candidate offloaded-counts strictly decrease by one.
    #[test]
    fn candidate_sequence_shrinks_monotonically((g, _) in arb_graph(14, true)) {
        let seq = candidate_partitionings(&g);
        let counts: Vec<usize> = seq.iter().map(|c| c.offloaded_count()).collect();
        for w in counts.windows(2) {
            prop_assert_eq!(w[0], w[1] + 1);
        }
        if let Some(&last) = counts.last() {
            prop_assert_eq!(last, 1);
        }
    }

    /// The move order visits each unpinned node at most once and the union
    /// of moved nodes plus the final offloaded node covers all unpinned.
    #[test]
    fn move_order_is_a_permutation_prefix((g, _) in arb_graph(12, true)) {
        let seq = candidate_partitionings(&g);
        prop_assume!(!seq.is_empty());
        let moved: HashSet<NodeId> = seq.move_order().iter().copied().collect();
        prop_assert_eq!(moved.len(), seq.move_order().len(), "duplicate move");
        for &m in seq.move_order() {
            prop_assert!(!g.node(m).is_pinned(), "pinned node moved");
        }
    }

    /// On unpinned graphs, the best candidate cut is at least the exact
    /// mincut (the heuristic cannot beat the optimum) and the heuristic's
    /// sweep often touches it.
    #[test]
    fn heuristic_never_beats_exact_mincut((g, _) in arb_graph(10, false)) {
        let exact = stoer_wagner(&g).unwrap().weight;
        let seq = candidate_partitionings(&g);
        prop_assume!(!seq.is_empty());
        let best = seq.iter()
            .map(|c| g.cut_weight(|v| c.is_client(v)))
            .min()
            .unwrap();
        prop_assert!(best >= exact);
    }

    /// Partition stats conserve totals: client + offloaded memory equals the
    /// graph total, for every candidate.
    #[test]
    fn partition_stats_conserve_memory((g, _) in arb_graph(12, true), mem in proptest::collection::vec(0u64..1_000_000, 14)) {
        let mut g = g;
        for (i, id) in g.node_ids().collect::<Vec<_>>().into_iter().enumerate() {
            g.node_mut(id).memory_bytes = mem[i % mem.len()];
        }
        let total = g.total_memory();
        for cand in candidate_partitionings(&g).iter() {
            let s = cand.stats(&g);
            prop_assert_eq!(s.client_memory_bytes + s.offloaded_memory_bytes, total);
        }
    }

    /// Graph serde round-trips losslessly.
    #[test]
    fn graph_serde_round_trip((g, _) in arb_graph(8, true)) {
        let json = serde_json::to_string(&g).unwrap();
        let back: ExecutionGraph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(g, back);
    }

    /// cut_weight over a Partitioning equals the sum over edges recomputed
    /// from the raw edge list.
    #[test]
    fn cut_weight_matches_manual_sum((g, edges) in arb_graph(10, false), mask in any::<u16>()) {
        let n = g.node_count();
        let sides: Vec<Side> = (0..n)
            .map(|i| if mask & (1 << i) != 0 { Side::Surrogate } else { Side::Client })
            .collect();
        let p = Partitioning::from_sides(sides.clone());
        let from_graph = g.cut_weight(|v| p.is_client(v));
        let mut manual = 0u64;
        for &(a, b, w) in &edges {
            if sides[a] != sides[b] {
                manual += w;
            }
        }
        prop_assert_eq!(from_graph, manual);
    }

    /// The memory policy's selection is optimal: no other feasible
    /// candidate has lower cut bytes.
    #[test]
    fn memory_policy_selects_the_optimal_feasible_candidate(
        (g, _) in arb_graph(12, true),
        mem in proptest::collection::vec(0u64..500_000, 14),
        min_free in 1u32..60,
    ) {
        let mut g = g;
        for (i, id) in g.node_ids().collect::<Vec<_>>().into_iter().enumerate() {
            g.node_mut(id).memory_bytes = mem[i % mem.len()];
        }
        let candidates = candidate_partitionings(&g);
        prop_assume!(!candidates.is_empty());
        let heap = 1_000_000u64;
        let policy = MemoryPolicy::new(f64::from(min_free) / 100.0);
        let snapshot = ResourceSnapshot::new(heap, heap - heap / 100);
        let required = (heap as f64 * f64::from(min_free) / 100.0).ceil() as u64;
        match policy.select(&g, snapshot, &candidates) {
            Some(sel) => {
                prop_assert!(sel.stats.offloaded_memory_bytes >= required);
                for cand in candidates.iter() {
                    let stats = cand.stats(&g);
                    if stats.offloaded_memory_bytes >= required {
                        prop_assert!(sel.stats.cut.bytes <= stats.cut.bytes);
                    }
                }
            }
            None => {
                for cand in candidates.iter() {
                    prop_assert!(cand.stats(&g).offloaded_memory_bytes < required);
                }
            }
        }
    }

    /// The CPU policy never selects a candidate predicted slower than
    /// local execution (the beneficial-offloading gate).
    #[test]
    fn cpu_policy_gate_is_sound(
        (g, _) in arb_graph(12, true),
        cpu in proptest::collection::vec(0u64..50_000_000, 14),
    ) {
        let mut g = g;
        for (i, id) in g.node_ids().collect::<Vec<_>>().into_iter().enumerate() {
            g.node_mut(id).cpu_micros = cpu[i % cpu.len()];
        }
        let candidates = candidate_partitionings(&g);
        prop_assume!(!candidates.is_empty());
        let policy = CpuPolicy::default();
        let snapshot = ResourceSnapshot::new(1 << 20, 1 << 19);
        if let Some(sel) = policy.select(&g, snapshot, &candidates) {
            let baseline = policy.predictor().unpartitioned_seconds(&g);
            prop_assert!(sel.score < baseline,
                "selected {} must beat baseline {}", sel.score, baseline);
        }
    }

    /// The density heuristic produces valid candidates too: complete
    /// two-partitions that keep pinned nodes home and grow one node at a
    /// time.
    #[test]
    fn density_candidates_are_valid((g, _) in arb_graph(14, true)) {
        let seq = density_candidates(&g);
        let pinned: Vec<NodeId> = g.pinned_nodes().collect();
        let mut prev = 0usize;
        for cand in seq.iter() {
            prop_assert_eq!(cand.len(), g.node_count());
            for &p in &pinned {
                prop_assert!(cand.is_client(p));
            }
            prop_assert_eq!(cand.offloaded_count(), prev + 1);
            prev = cand.offloaded_count();
        }
    }
}
