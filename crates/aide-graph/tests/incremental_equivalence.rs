//! Equivalence properties locking the incremental execution graph to the
//! classic from-scratch pipeline.
//!
//! For arbitrary delta streams, the incrementally maintained graph must be
//! *indistinguishable* from a graph rebuilt from scratch out of the same
//! history: same nodes, edges, and annotations; a consistent strength
//! cache; identical candidate sequences out of the heuristic; and the same
//! policy winner. These tests are the contract that lets the platform adopt
//! O(delta) maintenance without re-validating every decision downstream.

use aide_graph::{
    candidate_partitionings, plan_candidates_cached, EdgeInfo, ExecutionGraph, GraphDelta,
    IncrementalGraph, MemoryPolicy, NodeId, NodeInfo, PartitionPolicy, PinReason, ResourceSnapshot,
};
use proptest::prelude::*;

/// An abstract graph operation before node ids are resolved. Raw indices
/// are mapped into the live id range at materialization time, so any
/// generated script is valid.
#[derive(Debug, Clone)]
enum RawOp {
    Add {
        pinned: bool,
        mem: u64,
        cpu: u64,
        objs: u64,
    },
    Update {
        node: usize,
        mem: u64,
        cpu: u64,
        objs: u64,
    },
    Pin {
        node: usize,
        pinned: bool,
    },
    Interact {
        a: usize,
        b: usize,
        interactions: u64,
        bytes: u64,
    },
    Remove {
        node: usize,
    },
}

fn arb_op() -> impl Strategy<Value = RawOp> {
    prop_oneof![
        3 => (any::<bool>(), 0u64..1_000_000, 0u64..100_000, 0u64..100)
            .prop_map(|(pinned, mem, cpu, objs)| RawOp::Add { pinned, mem, cpu, objs }),
        3 => (0usize..64, 0u64..1_000_000, 0u64..100_000, 0u64..100)
            .prop_map(|(node, mem, cpu, objs)| RawOp::Update { node, mem, cpu, objs }),
        1 => (0usize..64, any::<bool>()).prop_map(|(node, pinned)| RawOp::Pin { node, pinned }),
        6 => (0usize..64, 0usize..64, 0u64..1_000, 0u64..100_000)
            .prop_map(|(a, b, interactions, bytes)| RawOp::Interact { a, b, interactions, bytes }),
        1 => (0usize..64,).prop_map(|(node,)| RawOp::Remove { node }),
    ]
}

/// Resolves a raw script into a valid delta stream: indices wrap into the
/// node count as it evolves, and node-referencing ops before the first add
/// are dropped.
fn materialize(script: &[RawOp]) -> Vec<GraphDelta> {
    let mut deltas = Vec::with_capacity(script.len());
    let mut count = 0usize;
    for op in script {
        match *op {
            RawOp::Add {
                pinned,
                mem,
                cpu,
                objs,
            } => {
                deltas.push(GraphDelta::AddNode {
                    label: format!("C{count}"),
                    pinned: pinned.then_some(PinReason::NativeMethods),
                    memory_bytes: mem,
                    cpu_micros: cpu,
                    live_objects: objs,
                });
                count += 1;
            }
            RawOp::Update {
                node,
                mem,
                cpu,
                objs,
            } if count > 0 => deltas.push(GraphDelta::UpdateNode {
                node: NodeId((node % count) as u32),
                memory_bytes: mem,
                cpu_micros: cpu,
                live_objects: objs,
            }),
            RawOp::Pin { node, pinned } if count > 0 => deltas.push(GraphDelta::SetPinned {
                node: NodeId((node % count) as u32),
                pinned: pinned.then_some(PinReason::Explicit),
            }),
            RawOp::Interact {
                a,
                b,
                interactions,
                bytes,
            } if count > 0 => deltas.push(GraphDelta::Interaction {
                a: NodeId((a % count) as u32),
                b: NodeId((b % count) as u32),
                delta: EdgeInfo::new(interactions, bytes),
            }),
            RawOp::Remove { node } if count > 0 => deltas.push(GraphDelta::RemoveNode {
                node: NodeId((node % count) as u32),
            }),
            _ => {}
        }
    }
    deltas
}

fn arb_deltas() -> impl Strategy<Value = Vec<GraphDelta>> {
    proptest::collection::vec(arb_op(), 0..80).prop_map(|script| materialize(&script))
}

/// The reference: replay the same history into an [`ExecutionGraph`]
/// through its direct mutation API, with no incremental bookkeeping.
fn rebuild_from_scratch(deltas: &[GraphDelta]) -> ExecutionGraph {
    let mut g = ExecutionGraph::new();
    for d in deltas {
        match d {
            GraphDelta::AddNode {
                label,
                pinned,
                memory_bytes,
                cpu_micros,
                live_objects,
            } => {
                let id = match pinned {
                    Some(reason) => g.add_node(NodeInfo::pinned(label.clone(), *reason)),
                    None => g.add_node(NodeInfo::new(label.clone())),
                };
                let info = g.node_mut(id);
                info.memory_bytes = *memory_bytes;
                info.cpu_micros = *cpu_micros;
                info.live_objects = *live_objects;
            }
            GraphDelta::UpdateNode {
                node,
                memory_bytes,
                cpu_micros,
                live_objects,
            } => {
                let info = g.node_mut(*node);
                info.memory_bytes = *memory_bytes;
                info.cpu_micros = *cpu_micros;
                info.live_objects = *live_objects;
            }
            GraphDelta::SetPinned { node, pinned } => {
                g.node_mut(*node).pinned = *pinned;
            }
            GraphDelta::Interaction { a, b, delta } => {
                g.record_interaction(*a, *b, *delta);
            }
            GraphDelta::RemoveNode { node } => {
                let _ = g.clear_node(*node);
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The incremental graph equals a from-scratch rebuild of the same
    /// history, and its strength cache matches a fresh O(V+E) recount.
    #[test]
    fn incremental_graph_equals_from_scratch_rebuild(deltas in arb_deltas()) {
        let mut inc = IncrementalGraph::new();
        inc.apply_all(&deltas);
        let reference = rebuild_from_scratch(&deltas);
        prop_assert_eq!(inc.graph(), &reference);
        prop_assert!(inc.strengths_consistent(), "stale strength cache");
    }

    /// The heuristic fed the warm strength cache produces exactly the
    /// candidate sequence (placements AND move order) of the classic
    /// from-scratch pipeline.
    #[test]
    fn cached_plan_produces_identical_candidate_sequences(deltas in arb_deltas()) {
        let mut inc = IncrementalGraph::new();
        inc.apply_all(&deltas);
        let reference = rebuild_from_scratch(&deltas);

        let plan = plan_candidates_cached(inc.graph(), inc.strengths());
        let classic = candidate_partitionings(&reference);

        prop_assert_eq!(plan.move_order(), classic.move_order());
        let materialized = plan.materialize();
        prop_assert_eq!(materialized.candidates(), classic.candidates());
    }

    /// Random per-candidate reconstruction: `plan.candidate(i)` matches the
    /// i-th materialized placement, so chunked parallel evaluation sees the
    /// same candidates a sequential sweep does.
    #[test]
    fn plan_candidate_reconstruction_matches_materialization(
        deltas in arb_deltas(),
        pick in any::<u32>(),
    ) {
        let mut inc = IncrementalGraph::new();
        inc.apply_all(&deltas);
        let plan = plan_candidates_cached(inc.graph(), inc.strengths());
        prop_assume!(!plan.is_empty());
        let i = pick as usize % plan.len();
        let materialized = plan.materialize();
        prop_assert_eq!(&plan.candidate(i), &materialized.candidates()[i]);
    }

    /// The policy winner over the incremental plan is the winner over the
    /// classic sequence — same placement, same stats, bit-identical score.
    #[test]
    fn policy_winner_is_identical_on_both_pipelines(
        deltas in arb_deltas(),
        min_free in 1u32..60,
        heap in 500_000u64..4_000_000,
    ) {
        let mut inc = IncrementalGraph::new();
        inc.apply_all(&deltas);
        let reference = rebuild_from_scratch(&deltas);

        let policy = MemoryPolicy::new(f64::from(min_free) / 100.0);
        let snapshot = ResourceSnapshot::new(heap, heap - heap / 20);

        let plan = plan_candidates_cached(inc.graph(), inc.strengths());
        let from_plan = policy.select_plan(
            inc.graph(),
            snapshot,
            &plan,
            aide_graph::EvalStrategy::Sequential,
        );
        let classic = policy.select(&reference, snapshot, &candidate_partitionings(&reference));

        prop_assert_eq!(&from_plan, &classic);
        if let (Some(a), Some(b)) = (&from_plan, &classic) {
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }
}
