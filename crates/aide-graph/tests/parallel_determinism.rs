//! Determinism properties for parallel candidate evaluation.
//!
//! The platform's determinism contract: the winning partitioning is a pure
//! function of (graph, snapshot, policy) — never of the evaluation
//! strategy, thread count, or scheduling. These properties pin the
//! contract down by comparing winners bit-for-bit across thread counts,
//! for every policy family, on both the materialized-sequence and the
//! plan-sweep paths. A permutation-invariance property for the exact
//! Stoer-Wagner cut rides along: relabeling nodes must not change the
//! minimum cut weight.

use std::collections::HashSet;

use aide_graph::{
    candidate_partitionings, plan_candidates, stoer_wagner, CombinedPolicy, CommParams, CpuPolicy,
    EdgeInfo, EvalStrategy, ExecutionGraph, MemoryPolicy, NodeId, NodeInfo, PartitionPolicy,
    PinReason, PredictedTime, ResourceSnapshot,
};
use proptest::prelude::*;

/// Strategy: a connected graph with random memory/CPU annotations and a
/// random subset of pinned nodes.
fn arb_annotated_graph(max_nodes: usize) -> impl Strategy<Value = ExecutionGraph> {
    (2..=max_nodes)
        .prop_flat_map(|n| {
            let pins = proptest::collection::vec(any::<bool>(), n);
            let mems = proptest::collection::vec(0u64..2_000_000, n);
            let cpus = proptest::collection::vec(0u64..20_000_000, n);
            let chain = proptest::collection::vec((1u64..500, 1u64..100_000), n - 1);
            let extras =
                proptest::collection::vec((0..n, 0..n, 1u64..500, 1u64..100_000), 0..n * 2);
            (Just(n), pins, mems, cpus, chain, extras)
        })
        .prop_map(|(n, pins, mems, cpus, chain, extras)| {
            let mut g = ExecutionGraph::new();
            let ids: Vec<NodeId> = (0..n)
                .map(|i| {
                    // Keep node 0 unpinned so at least one candidate exists.
                    if pins[i] && i > 0 {
                        g.add_node(NodeInfo::pinned(format!("C{i}"), PinReason::NativeMethods))
                    } else {
                        g.add_node(NodeInfo::new(format!("C{i}")))
                    }
                })
                .collect();
            for (i, &id) in ids.iter().enumerate() {
                g.node_mut(id).memory_bytes = mems[i];
                g.node_mut(id).cpu_micros = cpus[i];
            }
            for (i, &(inter, bytes)) in chain.iter().enumerate() {
                g.record_interaction(ids[i], ids[i + 1], EdgeInfo::new(inter, bytes));
            }
            for &(a, b, inter, bytes) in &extras {
                if a != b {
                    g.record_interaction(ids[a], ids[b], EdgeInfo::new(inter, bytes));
                }
            }
            g
        })
}

/// Every policy family the platform can run.
fn policies() -> Vec<(&'static str, Box<dyn PartitionPolicy>)> {
    let predictor = PredictedTime::new(CommParams::WAVELAN, 3.5);
    vec![
        (
            "memory",
            Box::new(MemoryPolicy::new(0.2)) as Box<dyn PartitionPolicy>,
        ),
        ("cpu", Box::new(CpuPolicy::new(predictor))),
        (
            "combined",
            Box::new(CombinedPolicy::new(
                MemoryPolicy::new(0.2),
                CpuPolicy::new(predictor),
            )),
        ),
    ]
}

const STRATEGIES: &[EvalStrategy] = &[
    EvalStrategy::Sequential,
    EvalStrategy::Parallel { threads: 1 },
    EvalStrategy::Parallel { threads: 2 },
    EvalStrategy::Parallel { threads: 8 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The materialized-sequence winner is bit-identical across thread
    /// counts 1, 2, and 8, for every policy family.
    #[test]
    fn sequence_winner_is_invariant_under_thread_count(g in arb_annotated_graph(12)) {
        let candidates = candidate_partitionings(&g);
        let snapshot = ResourceSnapshot::new(4_000_000, 3_800_000);
        for (name, policy) in policies() {
            let baseline = policy.select_with(&g, snapshot, &candidates, EvalStrategy::Sequential);
            for &strategy in STRATEGIES {
                let got = policy.select_with(&g, snapshot, &candidates, strategy);
                prop_assert_eq!(&got, &baseline,
                    "policy {} diverged under {:?}", name, strategy);
                if let (Some(a), Some(b)) = (&got, &baseline) {
                    prop_assert_eq!(a.score.to_bits(), b.score.to_bits(),
                        "policy {} score bits diverged under {:?}", name, strategy);
                }
            }
        }
    }

    /// The plan-sweep winner (incremental stats, chunked reconstruction) is
    /// bit-identical across thread counts too, and matches the
    /// materialized-sequence winner.
    #[test]
    fn plan_winner_is_invariant_under_thread_count(g in arb_annotated_graph(12)) {
        let plan = plan_candidates(&g);
        let candidates = candidate_partitionings(&g);
        let snapshot = ResourceSnapshot::new(4_000_000, 3_800_000);
        for (name, policy) in policies() {
            let baseline = policy.select_with(&g, snapshot, &candidates, EvalStrategy::Sequential);
            for &strategy in STRATEGIES {
                let got = policy.select_plan(&g, snapshot, &plan, strategy);
                prop_assert_eq!(&got, &baseline,
                    "policy {} plan sweep diverged under {:?}", name, strategy);
                if let (Some(a), Some(b)) = (&got, &baseline) {
                    prop_assert_eq!(a.score.to_bits(), b.score.to_bits(),
                        "policy {} plan score bits diverged under {:?}", name, strategy);
                }
            }
        }
    }

    /// `Parallel { threads: 0 }` (all available cores) agrees with the
    /// sequential winner as well — whatever parallelism the host offers.
    #[test]
    fn all_cores_strategy_matches_sequential(g in arb_annotated_graph(10)) {
        let candidates = candidate_partitionings(&g);
        let snapshot = ResourceSnapshot::new(4_000_000, 3_800_000);
        let policy = MemoryPolicy::new(0.2);
        let seq = policy.select_with(&g, snapshot, &candidates, EvalStrategy::Sequential);
        let par = policy.select_with(&g, snapshot, &candidates,
            EvalStrategy::Parallel { threads: 0 });
        prop_assert_eq!(&par, &seq);
    }

    /// Relabeling nodes (any permutation) leaves the exact minimum cut
    /// weight unchanged.
    #[test]
    fn stoer_wagner_is_permutation_invariant(
        spec in (3usize..10).prop_flat_map(|n| {
            let chain = proptest::collection::vec(1u64..1_000, n - 1);
            let extras = proptest::collection::vec((0..n, 0..n, 1u64..1_000), 0..n * 2);
            let perm = Just((0..n).collect::<Vec<usize>>()).prop_shuffle();
            (Just(n), chain, extras, perm)
        }),
    ) {
        let (n, chain, extras, perm) = spec;
        // Collect the edge multiset once, then build the graph twice: with
        // identity labels and with permuted labels.
        let mut edges: Vec<(usize, usize, u64)> = chain
            .iter()
            .enumerate()
            .map(|(i, &w)| (i, i + 1, w))
            .collect();
        edges.extend(extras.iter().filter(|&&(a, b, _)| a != b).copied());

        let build = |map: &dyn Fn(usize) -> usize| {
            let mut g = ExecutionGraph::new();
            let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(NodeInfo::new(format!("C{i}")))).collect();
            for &(a, b, w) in &edges {
                g.record_interaction(ids[map(a)], ids[map(b)], EdgeInfo::new(0, w));
            }
            g
        };
        let identity = build(&|i| i);
        let permuted = build(&|i| perm[i]);

        let cut_a = stoer_wagner(&identity).unwrap();
        let cut_b = stoer_wagner(&permuted).unwrap();
        prop_assert_eq!(cut_a.weight, cut_b.weight,
            "permutation changed the minimum cut weight");

        // And each reported weight is consistent with its own partition.
        for (g, cut) in [(&identity, &cut_a), (&permuted, &cut_b)] {
            let side: HashSet<NodeId> = cut.partition.iter().copied().collect();
            prop_assert_eq!(cut.weight, g.cut_weight(|v| side.contains(&v)));
        }
    }
}
