//! The surrogate daemon: a long-running process that lends its memory and
//! cycles to resource-constrained clients.
//!
//! The daemon listens on TCP and serves any number of concurrent client
//! sessions. Each accepted connection is a multiplexed carrier
//! ([`aide_rpc::TcpMuxListener`]) over which the client opens any number of
//! logical sessions; each logical session gets its own surrogate VM,
//! export/import tables, dispatcher, and RPC endpoint — sessions are fully
//! isolated, exactly as the paper's surrogate hosts one platform instance
//! per client application, but they share one socket instead of one socket
//! each. A session ends when the client closes it (or the carrier dies);
//! the daemon itself runs until [`SurrogateDaemon::shutdown`].
//!
//! For failover and chaos testing the daemon can be configured to
//! misbehave deliberately: [`DaemonConfig::fail_after_requests`] arms a
//! fault injector whose behaviour is chosen by [`DaemonConfig::fault_mode`].
//! The default, [`FaultMode::Crash`], severs the session's socket after
//! serving a fixed number of application requests, which the client
//! observes as a dead surrogate (disconnected transport), not as a polite
//! error reply. The reply-level modes ([`FaultMode::DropReplies`],
//! [`FaultMode::DelayReplies`], [`FaultMode::CorruptReplies`]) keep the
//! session alive but sabotage its outbound frames through the chaos layer,
//! exercising the client's retry and checksum paths instead of failover.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use aide_core::{RefTables, VmDispatcher};
use aide_graph::CommParams;
use aide_rpc::{
    chaos_wrap, nudge, Acceptor, ChaosSchedule, ConnKiller, Dispatcher, Endpoint, EndpointConfig,
    NetClock, Reply, Request, TcpMuxListener,
};
use aide_vm::{Machine, Program, VmConfig};
use parking_lot::Mutex;

use crate::beacon::{spawn_announcer, Announcement, BeaconConfig};
use crate::shard::{SessionParts, ShardConfig, ShardPool};

/// How the daemon turns accepted mux sessions into served sessions.
#[derive(Debug, Clone, Copy)]
pub enum ServingMode {
    /// One [`Endpoint`] (receiver + worker pool) per logical session:
    /// maximum isolation, a few hundred sessions per process.
    Threaded,
    /// A bounded sharded worker pool over mux bus events: one process
    /// holds tens of thousands of logical sessions, with admission
    /// control answering [`Reply::Busy`](aide_rpc::Reply::Busy) at the
    /// limit. Reply-level fault modes are not supported here (they wrap a
    /// per-session transport); [`FaultMode::Crash`] is.
    Sharded(ShardConfig),
}

/// Configuration for a [`SurrogateDaemon`].
#[derive(Clone)]
pub struct DaemonConfig {
    /// Address to listen on; use port 0 to let the OS pick (the bound
    /// address is available from [`SurrogateDaemon::local_addr`]).
    pub addr: SocketAddr,
    /// Name announced over the beacon and reported to registries.
    pub name: String,
    /// Heap capacity granted to *each* client session's surrogate VM, and
    /// advertised over the beacon.
    pub capacity_bytes: u64,
    /// The program this surrogate serves. Client and surrogate must run
    /// the same program: object migration ships records whose class and
    /// method identifiers are resolved against it.
    pub program: Arc<Program>,
    /// Simulated-link parameters charged by each session's endpoint.
    pub params: CommParams,
    /// Per-session endpoint tuning.
    pub endpoint: EndpointConfig,
    /// Fault injection: arm [`fault_mode`](DaemonConfig::fault_mode) after
    /// this budget is spent. For [`FaultMode::Crash`] the budget counts
    /// application requests (`Ping` health probes and `Stats` scrapes are
    /// not counted, so the crash point stays deterministic under
    /// heartbeating); `Some(0)` kills the very first request — typically
    /// the client's initial `Migrate` — exercising mid-offload rollback.
    /// For the reply-level modes the budget counts outbound frames
    /// (including probe replies), since those faults live in the transport.
    pub fail_after_requests: Option<u64>,
    /// What the armed fault injector does; ignored while
    /// [`fail_after_requests`](DaemonConfig::fail_after_requests) is `None`.
    pub fault_mode: FaultMode,
    /// Optional beacon announcing this daemon; `None` means clients must
    /// register the daemon's address statically.
    pub beacon: Option<BeaconConfig>,
    /// How often the daemon's sweeper advances each session's lease clock
    /// by the wall time elapsed and reclaims expired-lease exports. The
    /// clock only moves on these ticks, so tests that drive sessions
    /// manually stay deterministic.
    pub lease_sweep_interval: Duration,
    /// Lease TTL granted to each session's exports; renewed by any stamped
    /// frame the session receives. `None` keeps the table default.
    pub lease_ttl_ms: Option<u64>,
    /// Thread-per-session or sharded-pool serving; see [`ServingMode`].
    pub serving: ServingMode,
}

impl DaemonConfig {
    /// A daemon on an OS-assigned localhost port with WaveLAN link timing
    /// and a 64 MiB per-session heap.
    pub fn new(name: &str, program: Arc<Program>) -> Self {
        DaemonConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            name: name.to_string(),
            capacity_bytes: 64 << 20,
            program,
            params: CommParams::WAVELAN,
            endpoint: EndpointConfig::default(),
            fail_after_requests: None,
            fault_mode: FaultMode::Crash,
            beacon: None,
            lease_sweep_interval: Duration::from_millis(500),
            lease_ttl_ms: None,
            serving: ServingMode::Threaded,
        }
    }

    /// Switches the daemon to sharded serving (see [`ServingMode::Sharded`]).
    pub fn sharded(mut self, shard: ShardConfig) -> Self {
        self.serving = ServingMode::Sharded(shard);
        self
    }
}

impl std::fmt::Debug for DaemonConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonConfig")
            .field("addr", &self.addr)
            .field("name", &self.name)
            .field("capacity_bytes", &self.capacity_bytes)
            .field("fail_after_requests", &self.fail_after_requests)
            .field("fault_mode", &self.fault_mode)
            .field("beacon", &self.beacon)
            .field("serving", &self.serving)
            .finish_non_exhaustive()
    }
}

/// How an armed fault injector misbehaves once its budget is spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Sever the session socket: the client sees a dead surrogate and
    /// fails over. The budget counts application requests.
    Crash,
    /// Serve every request but silently discard the reply frames: the
    /// client's retries go unanswered and its at-most-once cache absorbs
    /// the re-executions. The budget counts outbound frames.
    DropReplies,
    /// Hold each reply back for up to the given duration before
    /// delivering it, surfacing late replies and retry races.
    DelayReplies(Duration),
    /// Flip one bit in each reply frame; the client's CRC check rejects
    /// the frame and a retry fetches the memoized reply.
    CorruptReplies,
}

/// Severs the session's carrier after a budget of served requests, so the
/// client experiences a surrogate *crash* (dead link) rather than an error
/// reply — error replies are application-level and must not trigger
/// failover.
struct FaultInjector {
    inner: VmDispatcher,
    remaining: AtomicI64,
    killer: ConnKiller,
}

impl Dispatcher for FaultInjector {
    fn dispatch(&self, request: Request) -> Result<Reply, String> {
        if matches!(request, Request::Ping | Request::Stats) {
            // Health probes and telemetry scrapes ride for free: neither
            // heartbeat cadence nor an observer polling `STATS` may perturb
            // the configured crash point.
            return self.inner.dispatch(request);
        }
        if self.remaining.fetch_sub(1, Ordering::SeqCst) <= 0 {
            self.killer.kill();
            return Err("injected surrogate crash".to_string());
        }
        self.inner.dispatch(request)
    }
}

/// Counts every request a session serves into the daemon's metrics
/// registry, then forwards to the real dispatcher.
struct CountingDispatcher {
    inner: Arc<dyn Dispatcher>,
    requests: Arc<aide_telemetry::Counter>,
}

impl Dispatcher for CountingDispatcher {
    fn dispatch(&self, request: Request) -> Result<Reply, String> {
        self.requests.inc();
        self.inner.dispatch(request)
    }
}

/// One live client session kept for stats and teardown, plus the killer of
/// the carrier it rides on (shared by every session on that carrier). The
/// `gc` dispatcher shares the session's VM and tables so the daemon's
/// sweeper thread can reclaim expired-lease exports without going through
/// the wire.
struct LiveSession {
    endpoint: Arc<Endpoint>,
    killer: ConnKiller,
    gc: Arc<VmDispatcher>,
}

/// A running surrogate daemon; dropping the handle does *not* stop it —
/// call [`shutdown`](SurrogateDaemon::shutdown).
pub struct SurrogateDaemon {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    beacon_thread: Mutex<Option<JoinHandle<()>>>,
    sweep_thread: Mutex<Option<JoinHandle<()>>>,
    sessions: Arc<Mutex<Vec<LiveSession>>>,
    sessions_accepted: Arc<AtomicU64>,
    pool: Option<Arc<ShardPool>>,
}

impl SurrogateDaemon {
    /// Binds the listener, spawns the accept loop (and the beacon, if
    /// configured), and returns immediately.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding the TCP listener or the beacon's
    /// UDP socket.
    pub fn start(config: DaemonConfig) -> std::io::Result<SurrogateDaemon> {
        let listener = TcpMuxListener::bind(config.addr)?;
        let addr = listener.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let sessions: Arc<Mutex<Vec<LiveSession>>> = Arc::new(Mutex::new(Vec::new()));
        let sessions_accepted = Arc::new(AtomicU64::new(0));

        let beacon_thread = match &config.beacon {
            Some(beacon) => Some(spawn_announcer(
                Announcement {
                    name: config.name.clone(),
                    port: addr.port(),
                    capacity_bytes: config.capacity_bytes,
                },
                *beacon,
                stop.clone(),
            )?),
            None => None,
        };

        let sweep_interval = config.lease_sweep_interval;

        // Sharded serving builds its worker pool up front; each accepted
        // carrier is then switched into mux bus mode instead of getting a
        // dedicated thread.
        let pool = match config.serving {
            ServingMode::Sharded(shard) => {
                let factory_config = config.clone();
                Some(Arc::new(ShardPool::start(
                    &config.name,
                    shard,
                    Box::new(move |killer| session_parts(&factory_config, killer)),
                )))
            }
            ServingMode::Threaded => None,
        };

        let accept_thread = {
            let stop = stop.clone();
            let sessions = sessions.clone();
            let sessions_accepted = sessions_accepted.clone();
            let pool = pool.clone();
            std::thread::Builder::new()
                .name(format!("aide-surrogate-{}", config.name))
                .spawn(move || {
                    let mut next_conn: u64 = 1;
                    loop {
                        let conn = match listener.accept() {
                            _ if stop.load(Ordering::SeqCst) => break,
                            Ok(conn) => conn,
                            Err(_) => continue, // a broken accept hurts no one else
                        };
                        if let Some(pool) = &pool {
                            // Register the carrier's sender first, then
                            // switch it onto the bus: no event can reach a
                            // shard worker before the worker can reply.
                            let conn_id = next_conn;
                            next_conn += 1;
                            pool.attach_carrier(conn_id, conn.bus_sender(conn_id));
                            conn.route_accepts_to(conn_id, pool.bus());
                            // Dropping `conn` is safe: live sessions keep
                            // the carrier's writer alive through the pool's
                            // sender clone.
                            continue;
                        }
                        // One carrier per client process; every logical session
                        // the client opens over it gets its own surrogate VM.
                        let config = config.clone();
                        let sessions = sessions.clone();
                        let sessions_accepted = sessions_accepted.clone();
                        let spawned = std::thread::Builder::new()
                            .name("aide-surrogate-conn".into())
                            .spawn(move || {
                                // Everything this carrier spawns (session
                                // endpoints and their workers) inherits the
                                // surrogate trace lane.
                                aide_trace::set_thread_track("surrogate");
                                let killer = conn.killer();
                                while let Ok(session) = conn.accept() {
                                    let live = start_session(session, killer.clone(), &config);
                                    sessions_accepted.fetch_add(1, Ordering::SeqCst);
                                    sessions.lock().push(live);
                                }
                            });
                        let _ = spawned;
                    }
                })
                .expect("spawn surrogate accept loop")
        };

        // Lease sweeper: the only mover of session GC clocks. Each tick
        // advances every live session's clock by the wall time elapsed and
        // hands expired-lease exports back to that session's collector —
        // a client that died without releasing cannot strand pins forever.
        let sweep_thread = {
            let stop = stop.clone();
            let sessions = sessions.clone();
            let pool = pool.clone();
            let interval = sweep_interval;
            std::thread::Builder::new()
                .name("aide-surrogate-gc".into())
                .spawn(move || {
                    let mut last = std::time::Instant::now();
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(interval);
                        let elapsed = u64::try_from(last.elapsed().as_millis()).unwrap_or(u64::MAX);
                        last = std::time::Instant::now();
                        for session in sessions.lock().iter() {
                            session.gc.tables().exports.clock().advance_ms(elapsed);
                            session.gc.sweep_expired_exports();
                        }
                        if let Some(pool) = &pool {
                            for gc in pool.gc_handles() {
                                gc.tables().exports.clock().advance_ms(elapsed);
                                gc.sweep_expired_exports();
                            }
                        }
                    }
                })
                .expect("spawn surrogate lease sweeper")
        };

        Ok(SurrogateDaemon {
            addr,
            stop,
            accept_thread: Mutex::new(Some(accept_thread)),
            beacon_thread: Mutex::new(beacon_thread),
            sweep_thread: Mutex::new(Some(sweep_thread)),
            sessions,
            sessions_accepted,
            pool,
        })
    }

    /// The address the daemon is actually listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of client sessions accepted so far (including finished ones).
    /// In sharded mode this counts admitted sessions; rejected ones are in
    /// [`sessions_rejected`](SurrogateDaemon::sessions_rejected).
    pub fn sessions_accepted(&self) -> u64 {
        self.sessions_accepted.load(Ordering::SeqCst)
            + self.pool.as_ref().map_or(0, |p| p.sessions_admitted())
    }

    /// Sessions currently live (sharded mode only; threaded sessions stay
    /// registered until shutdown).
    pub fn live_sessions(&self) -> usize {
        self.pool
            .as_ref()
            .map_or_else(|| self.sessions.lock().len(), |p| p.live_sessions())
    }

    /// Sessions refused admission with a `Busy` reply (sharded mode).
    pub fn sessions_rejected(&self) -> u64 {
        self.pool.as_ref().map_or(0, |p| p.sessions_rejected())
    }

    /// Total application requests served across all sessions.
    pub fn requests_served(&self) -> u64 {
        let threaded: u64 = self
            .sessions
            .lock()
            .iter()
            .map(|s| s.endpoint.requests_served())
            .sum();
        threaded + self.pool.as_ref().map_or(0, |p| p.requests_served())
    }

    /// Blocks until the daemon is shut down (from another thread). This is
    /// what the `aide-surrogate` binary parks on.
    pub fn join(&self) {
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting, tears down every live session, and joins the
    /// daemon's threads.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        nudge(self.addr);
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.beacon_thread.lock().take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.sweep_thread.lock().take() {
            let _ = handle.join();
        }
        let sessions = std::mem::take(&mut *self.sessions.lock());
        aide_telemetry::global()
            .gauge(aide_telemetry::names::SURROGATE_ACTIVE_SESSIONS)
            .add(-(sessions.len() as i64));
        for session in &sessions {
            session.endpoint.shutdown();
        }
        for session in &sessions {
            session.endpoint.join();
            // Sever the carrier so its per-connection accept thread exits
            // even if the client never closes its side.
            session.killer.kill();
        }
        if let Some(pool) = &self.pool {
            pool.shutdown();
        }
    }
}

/// Builds the per-session machinery: a fresh surrogate VM over the daemon's
/// program, its own reference tables and dispatcher, and an endpoint
/// bridging them to the accepted logical session. `killer` severs the whole
/// carrier the session rides on (used by [`FaultMode::Crash`]).
fn start_session(
    session: aide_rpc::Session,
    killer: ConnKiller,
    config: &DaemonConfig,
) -> LiveSession {
    let mut session_span = aide_trace::span(aide_trace::names::DAEMON_SESSION, "surrogate");
    session_span.arg("daemon", &config.name);
    let telemetry = aide_telemetry::global();
    telemetry
        .counter(aide_telemetry::names::SURROGATE_SESSIONS)
        .inc();
    telemetry
        .gauge(aide_telemetry::names::SURROGATE_ACTIVE_SESSIONS)
        .add(1);
    let SessionParts {
        dispatcher,
        tables,
        gc,
    } = session_parts(config, killer.clone());
    // Reply-level fault modes sabotage the session's *outbound* frames via
    // the chaos layer; the dispatcher itself stays honest.
    let session = match (config.fail_after_requests, config.fault_mode) {
        (Some(budget), FaultMode::DropReplies) => {
            let schedule = ChaosSchedule {
                drop: 1.0,
                after_frames: budget,
                ..ChaosSchedule::seeded(0xFA01 ^ budget)
            };
            chaos_wrap(session, schedule).0
        }
        (Some(budget), FaultMode::DelayReplies(max_delay)) => {
            let schedule = ChaosSchedule {
                delay: 1.0,
                max_delay,
                after_frames: budget,
                ..ChaosSchedule::seeded(0xFA01 ^ budget)
            };
            chaos_wrap(session, schedule).0
        }
        (Some(budget), FaultMode::CorruptReplies) => {
            let schedule = ChaosSchedule {
                corrupt: 1.0,
                after_frames: budget,
                ..ChaosSchedule::seeded(0xFA01 ^ budget)
            };
            chaos_wrap(session, schedule).0
        }
        _ => session,
    };
    let endpoint = Endpoint::start(
        session,
        config.params,
        Arc::new(NetClock::new()),
        dispatcher,
        config.endpoint,
    );
    // Lease piggybacking: stamped client traffic renews this session's
    // exports; our replies advertise the session's import epoch back.
    tables.attach_to(&endpoint);
    LiveSession {
        endpoint,
        killer,
        gc,
    }
}

/// Builds one session's VM, reference tables, and dispatcher chain — the
/// part of session setup shared by the threaded path and the sharded
/// pool's session factory. `killer` severs the carrier the session rides
/// on, which is what an armed [`FaultMode::Crash`] injector pulls; the
/// reply-level fault modes live in the transport and only apply to the
/// threaded path.
fn session_parts(config: &DaemonConfig, killer: ConnKiller) -> SessionParts {
    let machine = Machine::new(
        config.program.clone(),
        VmConfig::surrogate(config.capacity_bytes),
    );
    let tables = Arc::new(RefTables::new());
    if let Some(ttl) = config.lease_ttl_ms {
        tables.exports.set_ttl_ms(ttl);
    }
    let gc = Arc::new(VmDispatcher::new(machine.clone(), tables.clone()));
    let inner = VmDispatcher::new(machine, tables.clone());
    let dispatcher: Arc<dyn Dispatcher> = match (config.fail_after_requests, config.fault_mode) {
        (Some(budget), FaultMode::Crash) => Arc::new(FaultInjector {
            inner,
            remaining: AtomicI64::new(i64::try_from(budget).unwrap_or(i64::MAX)),
            killer,
        }),
        _ => Arc::new(inner),
    };
    let dispatcher: Arc<dyn Dispatcher> = Arc::new(CountingDispatcher {
        inner: dispatcher,
        requests: aide_telemetry::global().counter(aide_telemetry::names::SURROGATE_REQUESTS),
    });
    SessionParts {
        dispatcher,
        tables,
        gc,
    }
}
