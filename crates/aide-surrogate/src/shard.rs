//! Sharded serving: a bounded worker pool holding thousands of logical
//! sessions per daemon process.
//!
//! The daemon's classic serving path spawns an [`Endpoint`] per logical
//! session — a receiver thread plus a worker pool each, which is perfect
//! isolation but caps a process at a few hundred sessions. The sharded
//! pool inverts that: every carrier is switched into mux *bus mode*
//! ([`aide_rpc::MuxConn::route_accepts_to`]), so all sessions of all
//! carriers feed one event stream, and a fixed set of shard workers serves
//! them. Sessions keep their own surrogate VM, reference tables, and
//! dispatcher (the isolation the paper's per-client platform instances
//! require); only the *threads* are shared.
//!
//! A router thread hashes `(carrier, session)` onto a shard; each shard is
//! served by exactly one worker, so frames of one session are processed in
//! arrival order without any per-session locking. The worker replicates
//! the endpoint's serving semantics: lease renewal from stamped frames,
//! at-most-once dedup with memoized reply frames, and replies stamped with
//! the session's advertised import epoch.
//!
//! Admission control bounds the pool: once `max_sessions` sessions are
//! live, new sessions are answered with [`Reply::Busy`] and closed instead
//! of silently queued — the client backs off or fails over to another
//! surrogate while this one stays healthy for the sessions it already
//! carries.
//!
//! [`Endpoint`]: aide_rpc::Endpoint

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use aide_core::{RefTables, VmDispatcher};
use aide_rpc::{BusEvent, Dispatcher, Frame, Message, MuxSender, Reply, Request};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

/// Tuning for a [`ShardPool`].
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Number of shard workers. Each worker owns its sessions outright, so
    /// throughput scales with shards while per-session ordering is free.
    pub shards: usize,
    /// Admission limit: the pool-wide number of concurrently live
    /// sessions. Sessions beyond it are answered [`Reply::Busy`].
    pub max_sessions: usize,
    /// The `retry_after_ms` hint stamped into [`Reply::Busy`] replies.
    pub busy_retry_ms: u32,
    /// Per-session capacity of the memoized-reply (at-most-once) cache.
    pub dedup_capacity: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            max_sessions: 16_384,
            busy_retry_ms: 25,
            dedup_capacity: 128,
        }
    }
}

/// The per-session machinery a [`SessionFactory`] builds: the session's
/// serving dispatcher (fault injectors and counters already layered in),
/// its reference tables, and a GC-side dispatcher sharing the same VM so
/// the daemon's lease sweeper can reclaim expired exports out-of-band.
pub struct SessionParts {
    /// Serves the session's requests.
    pub dispatcher: Arc<dyn Dispatcher>,
    /// The session's export/import tables (lease renewal and reply
    /// stamping read these).
    pub tables: Arc<RefTables>,
    /// Shares the session's VM and tables; used by the lease sweeper.
    pub gc: Arc<VmDispatcher>,
}

/// Builds a fresh session's VM, tables, and dispatcher chain. The
/// [`aide_rpc::ConnKiller`] severs the whole carrier the session rides on,
/// which is what a [`FaultMode::Crash`](crate::FaultMode::Crash) injector
/// pulls.
pub type SessionFactory = dyn Fn(aide_rpc::ConnKiller) -> SessionParts + Send + Sync;

/// One live session owned by a shard worker: its machinery plus the
/// memoized replies of its at-most-once cache, keyed by `(client, seq)`.
struct ShardSession {
    parts: SessionParts,
    replies: HashMap<(u64, u64), Frame>,
    reply_order: VecDeque<(u64, u64)>,
}

/// State shared by the router, the shard workers, and the daemon.
struct PoolShared {
    name: String,
    config: ShardConfig,
    stop: AtomicBool,
    /// Live sessions across all shards (the admission gate).
    live: AtomicUsize,
    /// Sessions ever admitted (the daemon's `sessions_accepted`).
    admitted: AtomicU64,
    /// Sessions refused admission.
    rejected: AtomicU64,
    /// Requests dispatched across all shards.
    served: AtomicU64,
    /// Outbound handles by carrier id; registered before the carrier is
    /// switched into bus mode, so no worker sees an unknown carrier.
    carriers: Mutex<HashMap<u64, MuxSender>>,
    /// GC dispatchers of every live session, for the daemon's sweeper and
    /// the per-session lease-age stats lines.
    gc_sessions: Mutex<HashMap<(u64, u32), Arc<VmDispatcher>>>,
    /// Shard inputs; kept here so queue depth is observable (`len` on a
    /// crossbeam sender counts messages in flight).
    shard_txs: Vec<Sender<BusEvent>>,
    factory: Box<SessionFactory>,
}

/// A running sharded serving pool; create with [`ShardPool::start`], feed
/// with [`bus`](ShardPool::bus) + [`attach_carrier`](ShardPool::attach_carrier),
/// stop with [`shutdown`](ShardPool::shutdown).
pub struct ShardPool {
    shared: Arc<PoolShared>,
    bus_tx: Sender<BusEvent>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("name", &self.shared.name)
            .field("shards", &self.shared.config.shards)
            .field("live", &self.shared.live.load(Ordering::Relaxed))
            .finish()
    }
}

impl ShardPool {
    /// Spawns the router and the shard workers. `name` labels the per-
    /// daemon stats lines; `factory` builds each admitted session's VM and
    /// dispatcher chain.
    pub fn start(name: &str, config: ShardConfig, factory: Box<SessionFactory>) -> ShardPool {
        let shards = config.shards.max(1);
        let (bus_tx, bus_rx) = unbounded::<BusEvent>();
        let mut shard_txs = Vec::with_capacity(shards);
        let mut shard_rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = unbounded::<BusEvent>();
            shard_txs.push(tx);
            shard_rxs.push(rx);
        }
        let shared = Arc::new(PoolShared {
            name: name.to_string(),
            config,
            stop: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            served: AtomicU64::new(0),
            carriers: Mutex::new(HashMap::new()),
            gc_sessions: Mutex::new(HashMap::new()),
            shard_txs,
            factory,
        });

        let mut threads = Vec::with_capacity(shards + 1);
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("aide-shard-router-{name}"))
                    .spawn(move || router_loop(&shared, &bus_rx))
                    .expect("spawn shard router"),
            );
        }
        for (i, rx) in shard_rxs.into_iter().enumerate() {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("aide-shard-{name}-{i}"))
                    .spawn(move || {
                        aide_trace::set_thread_track("surrogate");
                        worker_loop(&shared, &rx);
                        aide_trace::flush_thread();
                    })
                    .expect("spawn shard worker"),
            );
        }

        ShardPool {
            shared,
            bus_tx,
            threads: Mutex::new(threads),
        }
    }

    /// The event bus to hand to [`aide_rpc::MuxConn::route_accepts_to`].
    pub fn bus(&self) -> Sender<BusEvent> {
        self.bus_tx.clone()
    }

    /// Registers a carrier's outbound handle. Must be called *before* the
    /// carrier is switched into bus mode (see
    /// [`aide_rpc::MuxConn::bus_sender`]), or early frames find no way to
    /// reply.
    pub fn attach_carrier(&self, conn: u64, sender: MuxSender) {
        self.shared.carriers.lock().insert(conn, sender);
    }

    /// Sessions currently live across all shards.
    pub fn live_sessions(&self) -> usize {
        self.shared.live.load(Ordering::SeqCst)
    }

    /// Sessions ever admitted.
    pub fn sessions_admitted(&self) -> u64 {
        self.shared.admitted.load(Ordering::SeqCst)
    }

    /// Sessions refused admission with a [`Reply::Busy`].
    pub fn sessions_rejected(&self) -> u64 {
        self.shared.rejected.load(Ordering::SeqCst)
    }

    /// Requests dispatched across all shards.
    pub fn requests_served(&self) -> u64 {
        self.shared.served.load(Ordering::SeqCst)
    }

    /// GC dispatchers of every live session, for the lease sweeper.
    pub fn gc_handles(&self) -> Vec<Arc<VmDispatcher>> {
        self.shared.gc_sessions.lock().values().cloned().collect()
    }

    /// Stops the pool: severs every carrier, joins the router and the
    /// workers, and drops all session state.
    pub fn shutdown(&self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        for sender in self.shared.carriers.lock().values() {
            sender.killer().kill();
        }
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
        self.shared.carriers.lock().clear();
        self.shared.gc_sessions.lock().clear();
    }
}

/// Deterministic shard assignment: sessions of one carrier spread across
/// shards, and the same `(conn, session)` always lands on the same worker.
fn shard_of(conn: u64, session: u32, shards: usize) -> usize {
    let mixed = (conn ^ (u64::from(session) << 32) ^ u64::from(session))
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (mixed >> 32) as usize % shards
}

fn router_loop(shared: &PoolShared, bus_rx: &Receiver<BusEvent>) {
    let shards = shared.shard_txs.len();
    loop {
        let event = match bus_rx.recv_timeout(Duration::from_millis(25)) {
            Ok(event) => event,
            Err(RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match &event {
            BusEvent::Opened { conn, session }
            | BusEvent::Data { conn, session, .. }
            | BusEvent::Closed { conn, session } => {
                let _ = shared.shard_txs[shard_of(*conn, *session, shards)].send(event);
            }
            BusEvent::CarrierClosed { conn } => {
                // The carrier's sessions may live on any shard: everyone
                // hears about the death. The event is the last the reader
                // emits for this conn, so all its data already routed.
                let conn = *conn;
                shared.carriers.lock().remove(&conn);
                for tx in &shared.shard_txs {
                    let _ = tx.send(BusEvent::CarrierClosed { conn });
                }
            }
        }
    }
}

fn worker_loop(shared: &PoolShared, rx: &Receiver<BusEvent>) {
    let telemetry = aide_telemetry::global();
    let active = telemetry.gauge(aide_telemetry::names::SURROGATE_ACTIVE_SESSIONS);
    let fleet_live = telemetry.gauge(aide_telemetry::names::FLEET_LIVE_SESSIONS);
    let accepted = telemetry.counter(aide_telemetry::names::SURROGATE_SESSIONS);
    let fleet_rejected = telemetry.counter(aide_telemetry::names::FLEET_SESSIONS_REJECTED);

    let mut sessions: HashMap<(u64, u32), ShardSession> = HashMap::new();
    let mut rejected: HashSet<(u64, u32)> = HashSet::new();

    let close_session = |sessions: &mut HashMap<(u64, u32), ShardSession>,
                         rejected: &mut HashSet<(u64, u32)>,
                         key: (u64, u32)| {
        rejected.remove(&key);
        if sessions.remove(&key).is_some() {
            shared.live.fetch_sub(1, Ordering::SeqCst);
            shared.gc_sessions.lock().remove(&key);
            active.add(-1);
            fleet_live.add(-1);
        }
    };

    loop {
        let event = match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(event) => event,
            Err(RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match event {
            BusEvent::Opened { conn, session } => {
                let key = (conn, session);
                if sessions.contains_key(&key) || rejected.contains(&key) {
                    continue; // duplicate OPEN: idempotent
                }
                admit(shared, &mut sessions, &mut rejected, key);
                if sessions.contains_key(&key) {
                    accepted.inc();
                    active.add(1);
                    fleet_live.add(1);
                } else {
                    fleet_rejected.inc();
                }
            }
            BusEvent::Data {
                conn,
                session,
                frame,
            } => {
                let key = (conn, session);
                let Some(sender) = shared.carriers.lock().get(&conn).cloned() else {
                    continue; // carrier already torn down: drop
                };
                if !sessions.contains_key(&key) && !rejected.contains(&key) {
                    // Data racing ahead of its OPEN: implicit open.
                    admit(shared, &mut sessions, &mut rejected, key);
                    if sessions.contains_key(&key) {
                        accepted.inc();
                        active.add(1);
                        fleet_live.add(1);
                    } else {
                        fleet_rejected.inc();
                    }
                }
                if rejected.contains(&key) {
                    reply_busy(&sender, session, &frame, shared.config.busy_retry_ms);
                    continue;
                }
                let closed = serve(shared, &sender, &mut sessions, key, &frame);
                if closed {
                    close_session(&mut sessions, &mut rejected, key);
                    sender.close(session);
                }
            }
            BusEvent::Closed { conn, session } => {
                close_session(&mut sessions, &mut rejected, (conn, session));
            }
            BusEvent::CarrierClosed { conn } => {
                let keys: Vec<(u64, u32)> = sessions
                    .keys()
                    .chain(rejected.iter())
                    .filter(|(c, _)| *c == conn)
                    .copied()
                    .collect();
                for key in keys {
                    close_session(&mut sessions, &mut rejected, key);
                }
            }
        }
    }

    // Worker exit: whatever is still live leaves the gauges with it.
    let remaining = sessions.len() as i64;
    if remaining > 0 {
        active.add(-remaining);
        fleet_live.add(-remaining);
    }
    shared.live.fetch_sub(sessions.len(), Ordering::SeqCst);
}

/// Admits `key` if the pool is under its session limit, building the
/// session's VM and dispatcher chain; otherwise parks it in the rejected
/// set (its data frames are answered `Busy`).
fn admit(
    shared: &PoolShared,
    sessions: &mut HashMap<(u64, u32), ShardSession>,
    rejected: &mut HashSet<(u64, u32)>,
    key: (u64, u32),
) {
    let limit = shared.config.max_sessions;
    let won = shared
        .live
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |live| {
            (live < limit).then_some(live + 1)
        })
        .is_ok();
    if !won {
        shared.rejected.fetch_add(1, Ordering::SeqCst);
        rejected.insert(key);
        return;
    }
    let killer = shared
        .carriers
        .lock()
        .get(&key.0)
        .map(|s| s.killer())
        .unwrap_or_else(aide_rpc::ConnKiller::noop);
    let parts = (shared.factory)(killer);
    shared.gc_sessions.lock().insert(key, parts.gc.clone());
    shared.admitted.fetch_add(1, Ordering::SeqCst);
    sessions.insert(
        key,
        ShardSession {
            parts,
            replies: HashMap::new(),
            reply_order: VecDeque::new(),
        },
    );
}

/// Answers a frame on a rejected session with [`Reply::Busy`] and closes
/// the session — the client's failover layer treats it like saturation,
/// backing off or moving to another surrogate.
fn reply_busy(sender: &MuxSender, session: u32, frame: &Frame, retry_after_ms: u32) {
    if let Ok((Message::Request { seq, .. }, _, _)) = Message::decode_stamped(frame) {
        let reply = Message::Reply {
            seq,
            result: Ok(Reply::Busy { retry_after_ms }),
        }
        .encode_pooled();
        let _ = sender.send(session, reply);
    }
    sender.close(session);
}

/// Serves one data frame on a live session, replicating the endpoint's
/// semantics: lease renewal, at-most-once dedup with memoized replies, and
/// epoch-stamped responses. Returns `true` when the session asked to shut
/// down.
fn serve(
    shared: &PoolShared,
    sender: &MuxSender,
    sessions: &mut HashMap<(u64, u32), ShardSession>,
    key: (u64, u32),
    frame: &Frame,
) -> bool {
    let Some(sess) = sessions.get_mut(&key) else {
        return false;
    };
    let Ok((message, ctx, lease)) = Message::decode_stamped(frame) else {
        return false; // corrupt frame: the client's retry will re-send
    };
    if let Some(epoch) = lease {
        // Stamped traffic renews this session's export leases, exactly as
        // the endpoint's receiver loop does.
        sess.parts.tables.exports.renew(epoch);
    }
    let Message::Request { seq, client, body } = message else {
        return false; // a stray reply has no business here
    };
    if matches!(body, Request::Shutdown) {
        return true;
    }
    // Idempotent health/introspection traffic bypasses the at-most-once
    // cache (same exemptions as the endpoint worker).
    let dedupable = !matches!(
        body,
        Request::Ping | Request::Stats | Request::GcRenew { .. }
    );
    if dedupable {
        if let Some(memo) = sess.replies.get(&(client, seq)) {
            let _ = sender.send(key.1, memo.clone());
            return false;
        }
    }
    let is_stats = matches!(body, Request::Stats);
    let mut span = aide_trace::child_of(ctx, aide_trace::names::RPC_SERVE, "rpc");
    span.arg("kind", body.kind());
    span.arg("seq", seq);
    let mut result = sess.parts.dispatcher.dispatch(body);
    shared.served.fetch_add(1, Ordering::Relaxed);
    if is_stats {
        // STATS answers get the pool's per-daemon lines appended, so one
        // scrape shows fleet load even with many daemons in one process.
        if let Ok(Reply::Text(text)) = &mut result {
            append_stats(shared, text);
        }
    }
    let stamp = Some(sess.parts.tables.imports.advertised_epoch());
    let reply = Message::Reply { seq, result }.encode_pooled_stamped(stamp);
    drop(span);
    if dedupable {
        if sess.reply_order.len() >= shared.config.dedup_capacity.max(1) {
            if let Some(oldest) = sess.reply_order.pop_front() {
                sess.replies.remove(&oldest);
            }
        }
        sess.replies.insert((client, seq), reply.clone());
        sess.reply_order.push_back((client, seq));
    }
    let _ = sender.send(key.1, reply);
    false
}

/// Appends the pool's per-daemon Prometheus lines to a `STATS` scrape:
/// live-session and queue-depth gauges, the admission limit, rejected
/// sessions, and each live session's oldest lease age. Labelled by daemon
/// name because the process-global registry cannot tell co-hosted daemons
/// apart.
fn append_stats(shared: &PoolShared, text: &mut String) {
    text.push_str(&fleet_snapshot(shared).render());
}

/// The pool's current load as a typed [`aide_telemetry::FleetSnapshot`]
/// — the same struct registries parse back out of the scrape, so the
/// exposition format is pinned by its round-trip test.
fn fleet_snapshot(shared: &PoolShared) -> aide_telemetry::FleetSnapshot {
    let leases = shared
        .gc_sessions
        .lock()
        .iter()
        .map(|(&(conn, session), gc)| aide_telemetry::SessionLease {
            conn,
            session,
            age_ms: gc
                .tables()
                .exports
                .lease_ages_ms()
                .into_iter()
                .max()
                .unwrap_or(0),
        })
        .collect();
    aide_telemetry::FleetSnapshot {
        daemon: shared.name.clone(),
        live_sessions: shared.live.load(Ordering::SeqCst) as u64,
        session_limit: shared.config.max_sessions as u64,
        queue_depth: shared.shard_txs.iter().map(Sender::len).sum::<usize>() as u64,
        sessions_rejected_total: shared.rejected.load(Ordering::SeqCst),
        leases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for conn in 0..8u64 {
                for session in 0..64u32 {
                    let a = shard_of(conn, session, shards);
                    let b = shard_of(conn, session, shards);
                    assert_eq!(a, b);
                    assert!(a < shards);
                }
            }
        }
    }

    #[test]
    fn sessions_of_one_carrier_spread_across_shards() {
        let shards = 4;
        let hit: HashSet<usize> = (0..256u32).map(|s| shard_of(1, s, shards)).collect();
        assert_eq!(hit.len(), shards, "256 sessions must reach every shard");
    }
}
