//! Client-side surrogate discovery, health probing, and ranking.
//!
//! The registry is the client's view of the surrogate population: entries
//! arrive by UDP-beacon discovery ([`SurrogateRegistry::discover`]) or by
//! static registration (the fallback when no beacon reaches the client),
//! are health-checked with a null-RPC probe that measures real round-trip
//! time (the paper reports 2.4 ms for this on WaveLAN), and are ranked by
//! `RTT / capacity` — prefer the fastest link, break ties toward the
//! biggest surrogate. The registry implements
//! [`SurrogateProvider`], so `Platform::with_surrogates` can lease the
//! best-ranked live surrogate and fail over down the ranking as surrogates
//! die.

use std::collections::HashSet;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use aide_core::{ProviderContext, SurrogateLease, SurrogateProvider};
use aide_graph::CommParams;
use aide_rpc::{tcp_transport, Dispatcher, Endpoint, EndpointConfig, NetClock, Reply, Request};
use parking_lot::Mutex;

/// One known surrogate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurrogateInfo {
    /// Name (unique key within the registry).
    pub name: String,
    /// RPC listener address.
    pub addr: SocketAddr,
    /// Advertised heap capacity in bytes.
    pub capacity_bytes: u64,
    /// Last measured null-RPC round-trip time; `None` until probed.
    pub rtt: Option<Duration>,
}

impl SurrogateInfo {
    /// Ranking score: measured RTT weighted by advertised capacity (lower
    /// is better). Unprobed surrogates rank after every probed one.
    pub fn rank_score(&self) -> f64 {
        match self.rtt {
            Some(rtt) => rtt.as_secs_f64() / self.capacity_bytes.max(1) as f64,
            None => f64::INFINITY,
        }
    }
}

/// Registry tuning.
#[derive(Debug, Clone, Copy)]
pub struct RegistryConfig {
    /// Simulated-link parameters for endpoints the registry builds.
    pub params: CommParams,
    /// TCP connect timeout when probing or leasing.
    pub connect_timeout: Duration,
    /// Null-RPC reply deadline for health probes.
    pub probe_timeout: Duration,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            params: CommParams::WAVELAN,
            connect_timeout: Duration::from_millis(500),
            probe_timeout: Duration::from_secs(1),
        }
    }
}

/// Probe endpoints only send; they never serve their peer.
struct ProbeDispatcher;

impl Dispatcher for ProbeDispatcher {
    fn dispatch(&self, _request: Request) -> Result<Reply, String> {
        Err("probe endpoint serves no requests".to_string())
    }
}

/// The client's surrogate directory: discovery, liveness, ranking, and the
/// [`SurrogateProvider`] the platform leases from.
#[derive(Debug)]
pub struct SurrogateRegistry {
    config: RegistryConfig,
    entries: Mutex<Vec<SurrogateInfo>>,
    dead: Mutex<HashSet<String>>,
}

impl SurrogateRegistry {
    /// An empty registry.
    pub fn new(config: RegistryConfig) -> Self {
        SurrogateRegistry {
            config,
            entries: Mutex::new(Vec::new()),
            dead: Mutex::new(HashSet::new()),
        }
    }

    /// Statically registers a surrogate — the fallback for segments the
    /// beacon cannot reach. Re-registering a name updates its entry and
    /// clears its death mark.
    pub fn add_static(&self, name: &str, addr: SocketAddr, capacity_bytes: u64) {
        self.upsert(SurrogateInfo {
            name: name.to_string(),
            addr,
            capacity_bytes,
            rtt: None,
        });
    }

    /// Listens for beacon announcements on `listen` for `wait` and merges
    /// everything heard. Returns how many distinct surrogates were added
    /// or updated.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the UDP listener.
    pub fn discover(&self, listen: SocketAddr, wait: Duration) -> std::io::Result<usize> {
        let heard = crate::beacon::listen_for_announcements(listen, wait)?;
        let mut merged = HashSet::new();
        for (source, announcement) in heard {
            merged.insert(announcement.name.clone());
            self.upsert(SurrogateInfo {
                name: announcement.name,
                addr: SocketAddr::new(source.ip(), announcement.port),
                capacity_bytes: announcement.capacity_bytes,
                rtt: None,
            });
        }
        Ok(merged.len())
    }

    fn upsert(&self, info: SurrogateInfo) {
        self.dead.lock().remove(&info.name);
        let mut entries = self.entries.lock();
        match entries.iter_mut().find(|e| e.name == info.name) {
            Some(existing) => *existing = info,
            None => entries.push(info),
        }
    }

    /// Probes every non-dead surrogate with a null RPC, recording measured
    /// RTTs. Surrogates that cannot be reached are marked dead.
    pub fn probe_all(&self) {
        let snapshot = self.ranked();
        for info in snapshot {
            match self.probe_one(info.addr) {
                Some(rtt) => {
                    if let Some(entry) =
                        self.entries.lock().iter_mut().find(|e| e.name == info.name)
                    {
                        entry.rtt = Some(rtt);
                    }
                }
                None => {
                    self.dead.lock().insert(info.name);
                }
            }
        }
    }

    /// One health probe: connect, send a null RPC, measure the real RTT,
    /// tear the probe session down.
    fn probe_one(&self, addr: SocketAddr) -> Option<Duration> {
        let endpoint = self.connect(addr, std::sync::Arc::new(ProbeDispatcher))?;
        let rtt = endpoint.probe(self.config.probe_timeout).ok();
        endpoint.shutdown();
        endpoint.join();
        rtt
    }

    fn connect(
        &self,
        addr: SocketAddr,
        dispatcher: std::sync::Arc<dyn Dispatcher>,
    ) -> Option<std::sync::Arc<Endpoint>> {
        self.connect_with(addr, dispatcher, None, EndpointConfig::default())
    }

    fn connect_with(
        &self,
        addr: SocketAddr,
        dispatcher: std::sync::Arc<dyn Dispatcher>,
        clock: Option<std::sync::Arc<NetClock>>,
        endpoint_config: EndpointConfig,
    ) -> Option<std::sync::Arc<Endpoint>> {
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout).ok()?;
        stream.set_nodelay(true).ok()?;
        let transport = tcp_transport(stream).ok()?;
        Some(Endpoint::start(
            transport,
            self.config.params,
            clock.unwrap_or_else(|| std::sync::Arc::new(NetClock::new())),
            dispatcher,
            endpoint_config,
        ))
    }

    /// Live (non-dead) surrogates, best-ranked first.
    pub fn ranked(&self) -> Vec<SurrogateInfo> {
        let dead = self.dead.lock();
        let mut live: Vec<SurrogateInfo> = self
            .entries
            .lock()
            .iter()
            .filter(|e| !dead.contains(&e.name))
            .cloned()
            .collect();
        // Stable: unprobed entries (all +inf) keep registration order.
        live.sort_by(|a, b| {
            a.rank_score()
                .partial_cmp(&b.rank_score())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        live
    }

    /// Names currently marked dead.
    pub fn dead_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.dead.lock().iter().cloned().collect();
        names.sort();
        names
    }
}

impl SurrogateProvider for SurrogateRegistry {
    /// Leases the best-ranked live surrogate: connects, builds a session
    /// endpoint wired to the platform's dispatcher and clock, and verifies
    /// the session with one null RPC. Surrogates that fail to connect or
    /// to answer the probe are marked dead and the next candidate is
    /// tried.
    fn acquire(&self, ctx: &ProviderContext) -> Option<SurrogateLease> {
        for info in self.ranked() {
            let Some(endpoint) = self.connect_with(
                info.addr,
                ctx.dispatcher.clone(),
                Some(ctx.clock.clone()),
                ctx.endpoint_config,
            ) else {
                self.dead.lock().insert(info.name);
                continue;
            };
            if endpoint.probe(self.config.probe_timeout).is_err() {
                endpoint.shutdown();
                endpoint.join();
                self.dead.lock().insert(info.name);
                continue;
            }
            return Some(SurrogateLease {
                name: info.name,
                endpoint,
            });
        }
        None
    }

    fn report_failure(&self, name: &str) {
        self.dead.lock().insert(name.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(name: &str, capacity: u64, rtt_micros: Option<u64>) -> SurrogateInfo {
        SurrogateInfo {
            name: name.to_string(),
            addr: "127.0.0.1:1".parse().unwrap(),
            capacity_bytes: capacity,
            rtt: rtt_micros.map(Duration::from_micros),
        }
    }

    #[test]
    fn ranking_prefers_fast_links_then_big_surrogates() {
        let registry = SurrogateRegistry::new(RegistryConfig::default());
        // Same capacity: the 2.4 ms link beats the 9 ms one.
        registry.upsert(info("slow", 64 << 20, Some(9_000)));
        registry.upsert(info("fast", 64 << 20, Some(2_400)));
        // Equal RTT to "fast", but 4x the memory: ranks first.
        registry.upsert(info("big", 256 << 20, Some(2_400)));
        // Never probed: last.
        registry.upsert(info("unknown", 1 << 30, None));
        let order: Vec<&str> = registry.ranked().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(order, ["big", "fast", "slow", "unknown"]);
    }

    #[test]
    fn dead_surrogates_leave_the_ranking_until_reregistered() {
        let registry = SurrogateRegistry::new(RegistryConfig::default());
        registry.upsert(info("a", 1, Some(100)));
        registry.upsert(info("b", 1, Some(200)));
        registry.report_failure("a");
        let order: Vec<&str> = registry.ranked().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(order, ["b"]);
        assert_eq!(registry.dead_names(), ["a"]);
        // Hearing from the surrogate again (beacon or static) revives it.
        registry.upsert(info("a", 1, Some(100)));
        assert!(registry.dead_names().is_empty());
        assert_eq!(registry.ranked().len(), 2);
    }

    #[test]
    fn unprobed_entries_keep_registration_order() {
        let registry = SurrogateRegistry::new(RegistryConfig::default());
        registry.add_static("first", "127.0.0.1:1".parse().unwrap(), 1);
        registry.add_static("second", "127.0.0.1:2".parse().unwrap(), 1 << 30);
        let order: Vec<&str> = registry.ranked().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(order, ["first", "second"]);
    }
}
