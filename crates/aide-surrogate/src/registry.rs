//! Client-side surrogate discovery, health probing, and ranking.
//!
//! The registry is the client's view of the surrogate population: entries
//! arrive by UDP-beacon discovery ([`SurrogateRegistry::discover`]) or by
//! static registration (the fallback when no beacon reaches the client),
//! are health-checked with a null-RPC probe that measures real round-trip
//! time (the paper reports 2.4 ms for this on WaveLAN), and are ranked by
//! `RTT / capacity` — prefer the fastest link, break ties toward the
//! biggest surrogate. The registry implements
//! [`SurrogateProvider`], so `Platform::with_surrogates` can lease the
//! best-ranked live surrogate and fail over down the ranking as surrogates
//! die.

use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use aide_core::{ProviderContext, SurrogateLease, SurrogateProvider};
use aide_graph::CommParams;
use aide_rpc::{
    Dispatcher, Endpoint, EndpointConfig, NetClock, Reply, Request, Session, TcpTransport,
    Transport,
};
use parking_lot::Mutex;

/// EWMA smoothing factor for probe RTTs: each new sample contributes this
/// fraction of the smoothed estimate (TCP's classic SRTT gain).
const RTT_EWMA_ALPHA: f64 = 0.125;

/// One known surrogate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurrogateInfo {
    /// Name (unique key within the registry).
    pub name: String,
    /// RPC listener address.
    pub addr: SocketAddr,
    /// Advertised heap capacity in bytes.
    pub capacity_bytes: u64,
    /// Last measured null-RPC round-trip time; `None` until probed.
    pub rtt: Option<Duration>,
    /// Exponentially-weighted moving average over every probe sample, so
    /// one anomalous probe does not reorder the ranking.
    pub smoothed_rtt: Option<Duration>,
    /// Live sessions the surrogate reported over its last STATS scrape;
    /// `None` until [`SurrogateRegistry::refresh_load`] has seen it.
    pub live_sessions: Option<u64>,
    /// Session limit the surrogate advertises (0 = unlimited); `None`
    /// until scraped.
    pub session_limit: Option<u64>,
}

impl SurrogateInfo {
    /// Ranking score: smoothed RTT weighted by advertised capacity (lower
    /// is better). Falls back to the last raw sample when only one probe
    /// has landed; unprobed surrogates rank after every probed one.
    pub fn rank_score(&self) -> f64 {
        match self.smoothed_rtt.or(self.rtt) {
            Some(rtt) => rtt.as_secs_f64() / self.capacity_bytes.max(1) as f64,
            None => f64::INFINITY,
        }
    }

    /// Folds one probe sample into the entry: keeps the raw value and
    /// updates the EWMA estimate.
    pub fn observe_rtt(&mut self, rtt: Duration) {
        self.rtt = Some(rtt);
        self.smoothed_rtt = Some(match self.smoothed_rtt {
            Some(prev) => Duration::from_secs_f64(
                RTT_EWMA_ALPHA * rtt.as_secs_f64() + (1.0 - RTT_EWMA_ALPHA) * prev.as_secs_f64(),
            ),
            None => rtt,
        });
    }

    /// Fraction of the surrogate's session limit in use, when both sides
    /// of the fraction are known (`None` while unscraped or unlimited).
    pub fn load_factor(&self) -> Option<f64> {
        match (self.live_sessions, self.session_limit) {
            (Some(live), Some(limit)) if limit > 0 => Some(live as f64 / limit as f64),
            _ => None,
        }
    }

    /// Whether the surrogate reported itself at (or over) its session
    /// limit: admitting one more session there earns a `Busy` reply.
    pub fn at_session_limit(&self) -> bool {
        matches!(
            (self.live_sessions, self.session_limit),
            (Some(live), Some(limit)) if limit > 0 && live >= limit
        )
    }

    /// Placement score (lower is better): the RTT/capacity rank score
    /// inflated by reported load, so among similar links the emptier
    /// surrogate wins and sessions spread. Entries with unknown load
    /// degrade gracefully to the pure rank score.
    pub fn placement_score(&self) -> f64 {
        self.rank_score() * (1.0 + self.load_factor().unwrap_or(0.0))
    }
}

/// Orders candidates for placement, deterministically: surrogates at
/// their session limit partition strictly after everyone under it, then
/// ascending [`placement_score`](SurrogateInfo::placement_score). The
/// sort is stable, so equal scores (including all-unknown load) keep the
/// caller's order — bit-identical results regardless of thread count or
/// map iteration order upstream.
pub fn placement_order(mut candidates: Vec<SurrogateInfo>) -> Vec<SurrogateInfo> {
    candidates.sort_by(|a, b| {
        (u8::from(a.at_session_limit()), a.placement_score())
            .partial_cmp(&(u8::from(b.at_session_limit()), b.placement_score()))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    candidates
}

/// Registry tuning.
#[derive(Debug, Clone, Copy)]
pub struct RegistryConfig {
    /// Simulated-link parameters for endpoints the registry builds.
    pub params: CommParams,
    /// TCP connect timeout when probing or leasing.
    pub connect_timeout: Duration,
    /// Null-RPC reply deadline for health probes.
    pub probe_timeout: Duration,
    /// Consecutive failed probes before [`SurrogateRegistry::probe_all`]
    /// evicts a surrogate from the ranking. One flaky probe on a lossy
    /// link must not discard a healthy surrogate; a string of them means
    /// it is gone.
    pub probe_eviction_threshold: u32,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            params: CommParams::WAVELAN,
            connect_timeout: Duration::from_millis(500),
            probe_timeout: Duration::from_secs(1),
            probe_eviction_threshold: 3,
        }
    }
}

/// Probe endpoints only send; they never serve their peer.
struct ProbeDispatcher;

impl Dispatcher for ProbeDispatcher {
    fn dispatch(&self, _request: Request) -> Result<Reply, String> {
        Err("probe endpoint serves no requests".to_string())
    }
}

/// One pooled carrier to a surrogate: the multiplexed TCP connection plus
/// a long-lived probe session on it. Health probes and stats scrapes reuse
/// this instead of dialing a fresh connection each time; leases open
/// further logical sessions over the same socket.
struct CachedConn {
    transport: TcpTransport,
    probe: Arc<Endpoint>,
}

impl std::fmt::Debug for CachedConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedConn")
            .field("peer", &self.transport.peer_addr())
            .finish_non_exhaustive()
    }
}

/// The client's surrogate directory: discovery, liveness, ranking, and the
/// [`SurrogateProvider`] the platform leases from.
#[derive(Debug)]
pub struct SurrogateRegistry {
    config: RegistryConfig,
    entries: Mutex<Vec<SurrogateInfo>>,
    dead: Mutex<HashSet<String>>,
    /// Consecutive failed probes per surrogate; cleared by any success.
    probe_failures: Mutex<HashMap<String, u32>>,
    /// Saturated surrogates under a `Busy` cooldown, with the instant the
    /// cooldown lifts. Unlike `dead`, these stay ranked — placement just
    /// skips them until the deadline passes.
    saturated: Mutex<HashMap<String, Instant>>,
    /// Pooled carriers keyed by surrogate address.
    conns: Mutex<HashMap<SocketAddr, CachedConn>>,
}

impl SurrogateRegistry {
    /// An empty registry.
    pub fn new(config: RegistryConfig) -> Self {
        SurrogateRegistry {
            config,
            entries: Mutex::new(Vec::new()),
            dead: Mutex::new(HashSet::new()),
            probe_failures: Mutex::new(HashMap::new()),
            saturated: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
        }
    }

    /// Statically registers a surrogate — the fallback for segments the
    /// beacon cannot reach. Re-registering a name updates its entry and
    /// clears its death mark.
    pub fn add_static(&self, name: &str, addr: SocketAddr, capacity_bytes: u64) {
        self.upsert(SurrogateInfo {
            name: name.to_string(),
            addr,
            capacity_bytes,
            rtt: None,
            smoothed_rtt: None,
            live_sessions: None,
            session_limit: None,
        });
    }

    /// Listens for beacon announcements on `listen` for `wait` and merges
    /// everything heard. Returns how many distinct surrogates were added
    /// or updated.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the UDP listener.
    pub fn discover(&self, listen: SocketAddr, wait: Duration) -> std::io::Result<usize> {
        let heard = crate::beacon::listen_for_announcements(listen, wait)?;
        let mut merged = HashSet::new();
        for (source, announcement) in heard {
            merged.insert(announcement.name.clone());
            self.upsert(SurrogateInfo {
                name: announcement.name,
                addr: SocketAddr::new(source.ip(), announcement.port),
                capacity_bytes: announcement.capacity_bytes,
                rtt: None,
                smoothed_rtt: None,
                live_sessions: None,
                session_limit: None,
            });
        }
        Ok(merged.len())
    }

    fn upsert(&self, mut info: SurrogateInfo) {
        self.dead.lock().remove(&info.name);
        self.probe_failures.lock().remove(&info.name);
        let mut entries = self.entries.lock();
        match entries.iter_mut().find(|e| e.name == info.name) {
            Some(existing) => {
                // A re-announcement carries no fresh measurement; keep the
                // probe history (and scraped load) instead of discarding it.
                if info.rtt.is_none() && info.smoothed_rtt.is_none() {
                    info.rtt = existing.rtt;
                    info.smoothed_rtt = existing.smoothed_rtt;
                }
                if info.live_sessions.is_none() && info.session_limit.is_none() {
                    info.live_sessions = existing.live_sessions;
                    info.session_limit = existing.session_limit;
                }
                *existing = info;
            }
            None => entries.push(info),
        }
    }

    /// Probes every non-dead surrogate with a null RPC. Each measured RTT
    /// feeds the process-wide probe-latency histogram and the entry's EWMA
    /// estimate (the ranking input). A surrogate is evicted (marked dead)
    /// only after [`RegistryConfig::probe_eviction_threshold`] *consecutive*
    /// failed probes — any success resets its failure count — so transient
    /// loss on a chaotic link does not discard a healthy surrogate.
    pub fn probe_all(&self) {
        let rtt_histogram = aide_telemetry::global().histogram(
            aide_telemetry::names::REGISTRY_PROBE_RTT_MICROS,
            aide_telemetry::buckets::LATENCY_MICROS,
        );
        let snapshot = self.ranked();
        for info in snapshot {
            match self.probe_one(info.addr) {
                Some(rtt) => {
                    let rtt_micros = u64::try_from(rtt.as_micros()).unwrap_or(u64::MAX);
                    rtt_histogram.observe(rtt_micros);
                    aide_rpc::observe::probe_rtt(&info.name, rtt_micros);
                    self.note_probe_success(&info.name);
                    if let Some(entry) =
                        self.entries.lock().iter_mut().find(|e| e.name == info.name)
                    {
                        entry.observe_rtt(rtt);
                    }
                }
                None => {
                    self.note_probe_failure(&info.name);
                }
            }
        }
    }

    /// Clears the consecutive-failure count after a successful probe.
    fn note_probe_success(&self, name: &str) {
        self.probe_failures.lock().remove(name);
    }

    /// Records one failed probe; returns `true` when the failure streak
    /// reaches the eviction threshold and the surrogate is marked dead.
    fn note_probe_failure(&self, name: &str) -> bool {
        let streak = {
            let mut failures = self.probe_failures.lock();
            let streak = failures.entry(name.to_string()).or_insert(0);
            *streak += 1;
            *streak
        };
        if streak < self.config.probe_eviction_threshold.max(1) {
            return false;
        }
        self.probe_failures.lock().remove(name);
        self.dead.lock().insert(name.to_string());
        aide_telemetry::global()
            .counter(aide_telemetry::names::REGISTRY_EVICTIONS)
            .inc();
        true
    }

    /// Scrapes a surrogate's Prometheus-style metrics exposition over the
    /// pooled probe session, sends a `STATS` request, and returns the
    /// text. `None` if the surrogate is unknown, unreachable, or answered
    /// with anything but text.
    pub fn scrape_stats(&self, name: &str) -> Option<String> {
        let addr = self
            .entries
            .lock()
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.addr)?;
        let endpoint = self.probe_endpoint(addr)?;
        match endpoint.call(Request::Stats) {
            Ok(Reply::Text(text)) => Some(text),
            Ok(_) => None,
            Err(_) => {
                self.drop_conn(addr);
                None
            }
        }
    }

    /// One health probe: send a null RPC over the pooled probe session and
    /// measure the real RTT. The session persists across probes — no
    /// per-probe TCP handshake — and a failed probe drops the pooled
    /// carrier so the next probe redials.
    fn probe_one(&self, addr: SocketAddr) -> Option<Duration> {
        let endpoint = self.probe_endpoint(addr)?;
        match endpoint.probe(self.config.probe_timeout) {
            Ok(rtt) => Some(rtt),
            Err(_) => {
                self.drop_conn(addr);
                None
            }
        }
    }

    /// The long-lived probe endpoint of the pooled carrier to `addr`,
    /// dialing the carrier if none is cached.
    fn probe_endpoint(&self, addr: SocketAddr) -> Option<Arc<Endpoint>> {
        let mut conns = self.conns.lock();
        if let Some(conn) = conns.get(&addr) {
            return Some(conn.probe.clone());
        }
        let conn = self.dial(addr)?;
        let probe = conn.probe.clone();
        conns.insert(addr, conn);
        Some(probe)
    }

    /// Opens a fresh logical session on the pooled carrier to `addr`. A
    /// stale carrier (surrogate restarted) is dropped and redialed once.
    fn open_pooled_session(&self, addr: SocketAddr) -> Option<Session> {
        let mut conns = self.conns.lock();
        if let Some(conn) = conns.get(&addr) {
            if let Ok(session) = conn.transport.open_session() {
                return Some(session);
            }
            teardown_conn(conns.remove(&addr));
        }
        let conn = self.dial(addr)?;
        let session = conn.transport.open_session().ok()?;
        conns.insert(addr, conn);
        Some(session)
    }

    /// Dials a new multiplexed carrier and starts its probe session.
    fn dial(&self, addr: SocketAddr) -> Option<CachedConn> {
        let transport = TcpTransport::connect(addr, self.config.connect_timeout).ok()?;
        let session = transport.open_session().ok()?;
        let probe = Endpoint::start(
            session,
            self.config.params,
            Arc::new(NetClock::new()),
            Arc::new(ProbeDispatcher),
            EndpointConfig::default(),
        );
        Some(CachedConn { transport, probe })
    }

    /// Evicts the pooled carrier to `addr`, severing the socket so every
    /// session on it disconnects.
    fn drop_conn(&self, addr: SocketAddr) {
        teardown_conn(self.conns.lock().remove(&addr));
    }

    fn connect_with(
        &self,
        addr: SocketAddr,
        dispatcher: Arc<dyn Dispatcher>,
        clock: Option<Arc<NetClock>>,
        endpoint_config: EndpointConfig,
    ) -> Option<Arc<Endpoint>> {
        let session = self.open_pooled_session(addr)?;
        Some(Endpoint::start(
            session,
            self.config.params,
            clock.unwrap_or_else(|| Arc::new(NetClock::new())),
            dispatcher,
            endpoint_config,
        ))
    }

    /// Live (non-dead) surrogates, best-ranked first.
    pub fn ranked(&self) -> Vec<SurrogateInfo> {
        let dead = self.dead.lock();
        let mut live: Vec<SurrogateInfo> = self
            .entries
            .lock()
            .iter()
            .filter(|e| !dead.contains(&e.name))
            .cloned()
            .collect();
        // Stable: unprobed entries (all +inf) keep registration order.
        live.sort_by(|a, b| {
            a.rank_score()
                .partial_cmp(&b.rank_score())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        live
    }

    /// Live surrogates in load-aware placement order: under-limit
    /// candidates first, spread by reported load on top of the RTT /
    /// capacity ranking (see [`placement_order`]).
    pub fn placement(&self) -> Vec<SurrogateInfo> {
        placement_order(self.ranked())
    }

    /// Scrapes every live surrogate's STATS exposition and folds the
    /// per-daemon live-session and session-limit gauges into its entry —
    /// the load half of the placement score. Returns how many entries
    /// got fresh load data.
    pub fn refresh_load(&self) -> usize {
        let mut refreshed = 0;
        for info in self.ranked() {
            let Some(text) = self.scrape_stats(&info.name) else {
                continue;
            };
            let Some(snapshot) = aide_telemetry::FleetSnapshot::parse(&text, &info.name) else {
                continue;
            };
            if let Some(entry) = self.entries.lock().iter_mut().find(|e| e.name == info.name) {
                entry.live_sessions = Some(snapshot.live_sessions);
                entry.session_limit = Some(snapshot.session_limit);
                refreshed += 1;
            }
        }
        refreshed
    }

    /// Puts `name` under a saturation cooldown: it stays registered and
    /// ranked, but [`acquire`](SurrogateProvider::acquire) skips it until
    /// the cooldown lifts.
    pub fn note_busy(&self, name: &str, cooldown: Duration) {
        self.saturated
            .lock()
            .insert(name.to_string(), Instant::now() + cooldown);
        aide_telemetry::global()
            .counter(aide_telemetry::names::FLEET_SESSIONS_REJECTED)
            .inc();
    }

    /// Whether `name` is currently under a saturation cooldown; expired
    /// cooldowns are dropped on the way through.
    fn in_cooldown(&self, name: &str) -> bool {
        let mut saturated = self.saturated.lock();
        match saturated.get(name) {
            Some(until) if Instant::now() < *until => true,
            Some(_) => {
                saturated.remove(name);
                false
            }
            None => false,
        }
    }

    /// Names currently marked dead.
    pub fn dead_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.dead.lock().iter().cloned().collect();
        names.sort();
        names
    }
}

/// Shuts down a pooled carrier: winds down the probe endpoint and severs
/// the socket so the surrogate's side tears down too.
fn teardown_conn(conn: Option<CachedConn>) {
    if let Some(conn) = conn {
        conn.probe.shutdown();
        conn.probe.join();
        conn.transport.killer().kill();
    }
}

impl Drop for SurrogateRegistry {
    fn drop(&mut self) {
        for (_, conn) in self.conns.lock().drain() {
            teardown_conn(Some(conn));
        }
    }
}

impl SurrogateProvider for SurrogateRegistry {
    /// Leases the best-placed live surrogate: connects, builds a session
    /// endpoint wired to the platform's dispatcher and clock, and verifies
    /// the session with one null RPC. Candidates are tried in load-aware
    /// [`placement`](SurrogateRegistry::placement) order, skipping
    /// saturated surrogates still in their `Busy` cooldown; ones that fail
    /// to connect or to answer the probe are marked dead and the next
    /// candidate is tried — backoff-and-replace, client side.
    fn acquire(&self, ctx: &ProviderContext) -> Option<SurrogateLease> {
        for info in self.placement() {
            if self.in_cooldown(&info.name) {
                continue;
            }
            let Some(endpoint) = self.connect_with(
                info.addr,
                ctx.dispatcher.clone(),
                Some(ctx.clock.clone()),
                ctx.endpoint_config,
            ) else {
                self.dead.lock().insert(info.name);
                continue;
            };
            if let Err(err) = endpoint.probe(self.config.probe_timeout) {
                endpoint.shutdown();
                endpoint.join();
                self.drop_conn(info.addr);
                if let aide_rpc::RpcError::Busy { retry_after_ms } = err {
                    // Admission control refused the session: the daemon is
                    // alive, just full. Cool down and try the next
                    // candidate instead of writing it off.
                    self.report_busy(&info.name, retry_after_ms);
                } else {
                    self.dead.lock().insert(info.name);
                }
                continue;
            }
            return Some(SurrogateLease {
                name: info.name,
                endpoint,
            });
        }
        None
    }

    fn report_failure(&self, name: &str) {
        self.dead.lock().insert(name.to_string());
    }

    /// A `Busy` surrogate is alive: keep it ranked, skip it for the
    /// suggested cooldown, and let placement fall through to the next
    /// candidate.
    fn report_busy(&self, name: &str, retry_after_ms: u32) {
        self.note_busy(
            name,
            Duration::from_millis(u64::from(retry_after_ms.max(1))),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(name: &str, capacity: u64, rtt_micros: Option<u64>) -> SurrogateInfo {
        SurrogateInfo {
            name: name.to_string(),
            addr: "127.0.0.1:1".parse().unwrap(),
            capacity_bytes: capacity,
            rtt: rtt_micros.map(Duration::from_micros),
            smoothed_rtt: rtt_micros.map(Duration::from_micros),
            live_sessions: None,
            session_limit: None,
        }
    }

    fn loaded(name: &str, rtt_micros: u64, live: u64, limit: u64) -> SurrogateInfo {
        let mut entry = info(name, 64 << 20, Some(rtt_micros));
        entry.live_sessions = Some(live);
        entry.session_limit = Some(limit);
        entry
    }

    #[test]
    fn ranking_prefers_fast_links_then_big_surrogates() {
        let registry = SurrogateRegistry::new(RegistryConfig::default());
        // Same capacity: the 2.4 ms link beats the 9 ms one.
        registry.upsert(info("slow", 64 << 20, Some(9_000)));
        registry.upsert(info("fast", 64 << 20, Some(2_400)));
        // Equal RTT to "fast", but 4x the memory: ranks first.
        registry.upsert(info("big", 256 << 20, Some(2_400)));
        // Never probed: last.
        registry.upsert(info("unknown", 1 << 30, None));
        let order: Vec<&str> = registry.ranked().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(order, ["big", "fast", "slow", "unknown"]);
    }

    #[test]
    fn dead_surrogates_leave_the_ranking_until_reregistered() {
        let registry = SurrogateRegistry::new(RegistryConfig::default());
        registry.upsert(info("a", 1, Some(100)));
        registry.upsert(info("b", 1, Some(200)));
        registry.report_failure("a");
        let order: Vec<&str> = registry.ranked().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(order, ["b"]);
        assert_eq!(registry.dead_names(), ["a"]);
        // Hearing from the surrogate again (beacon or static) revives it.
        registry.upsert(info("a", 1, Some(100)));
        assert!(registry.dead_names().is_empty());
        assert_eq!(registry.ranked().len(), 2);
    }

    #[test]
    fn ewma_damps_a_single_probe_spike() {
        let mut entry = info("s", 1, None);
        entry.observe_rtt(Duration::from_micros(2_400));
        assert_eq!(entry.smoothed_rtt, Some(Duration::from_micros(2_400)));
        // One 50 ms outlier barely moves the smoothed estimate...
        entry.observe_rtt(Duration::from_micros(50_000));
        let smoothed = entry.smoothed_rtt.unwrap();
        assert!(
            smoothed < Duration::from_micros(9_000),
            "EWMA absorbed the spike: {smoothed:?}"
        );
        // ...while the raw last-sample field tracks it faithfully.
        assert_eq!(entry.rtt, Some(Duration::from_micros(50_000)));
    }

    #[test]
    fn ranking_uses_the_smoothed_rtt_not_the_last_sample() {
        let registry = SurrogateRegistry::new(RegistryConfig::default());
        let mut steady = info("steady", 1, None);
        for _ in 0..8 {
            steady.observe_rtt(Duration::from_micros(3_000));
        }
        // A historically-fast surrogate whose latest probe spiked.
        let mut spiky = info("spiky", 1, None);
        for _ in 0..8 {
            spiky.observe_rtt(Duration::from_micros(1_000));
        }
        spiky.observe_rtt(Duration::from_micros(40_000));
        registry.upsert(steady);
        registry.upsert(spiky);
        let order: Vec<&str> = registry.ranked().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            order,
            ["spiky", "steady"],
            "one bad sample must not dethrone the historically faster link"
        );
    }

    #[test]
    fn reannouncement_preserves_probe_history() {
        let registry = SurrogateRegistry::new(RegistryConfig::default());
        registry.upsert(info("s", 1, Some(2_400)));
        // The beacon re-announces with no measurement attached.
        registry.add_static("s", "127.0.0.1:1".parse().unwrap(), 2);
        let ranked = registry.ranked();
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].capacity_bytes, 2, "announcement data updated");
        assert_eq!(
            ranked[0].smoothed_rtt,
            Some(Duration::from_micros(2_400)),
            "probe history survived the re-announcement"
        );
    }

    #[test]
    fn eviction_waits_for_consecutive_probe_failures() {
        let registry = SurrogateRegistry::new(RegistryConfig {
            probe_eviction_threshold: 3,
            ..RegistryConfig::default()
        });
        registry.upsert(info("flaky", 1, Some(2_400)));

        assert!(!registry.note_probe_failure("flaky"));
        assert!(!registry.note_probe_failure("flaky"));
        assert_eq!(
            registry.ranked().len(),
            1,
            "two failures stay under the threshold"
        );
        // A success in between wipes the streak...
        registry.note_probe_success("flaky");
        assert!(!registry.note_probe_failure("flaky"));
        assert!(!registry.note_probe_failure("flaky"));
        assert_eq!(registry.ranked().len(), 1, "streak restarted from zero");
        // ...so only three failures in a row evict.
        assert!(registry.note_probe_failure("flaky"));
        assert!(registry.ranked().is_empty());
        assert_eq!(registry.dead_names(), ["flaky"]);
        // Hearing from the surrogate again revives it with a clean slate.
        registry.upsert(info("flaky", 1, Some(2_400)));
        assert!(!registry.note_probe_failure("flaky"));
        assert_eq!(registry.ranked().len(), 1);
    }

    #[test]
    fn unprobed_entries_keep_registration_order() {
        let registry = SurrogateRegistry::new(RegistryConfig::default());
        registry.add_static("first", "127.0.0.1:1".parse().unwrap(), 1);
        registry.add_static("second", "127.0.0.1:2".parse().unwrap(), 1 << 30);
        let order: Vec<&str> = registry.ranked().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(order, ["first", "second"]);
    }

    #[test]
    fn placement_spreads_by_load_at_equal_rank() {
        // Same RTT and capacity: the emptier surrogate wins placement even
        // though plain ranking would tie them.
        let order: Vec<String> = placement_order(vec![
            loaded("hot", 2_400, 9, 10),
            loaded("cool", 2_400, 1, 10),
        ])
        .into_iter()
        .map(|e| e.name)
        .collect();
        assert_eq!(order, ["cool", "hot"]);
    }

    #[test]
    fn placement_never_prefers_an_at_limit_surrogate() {
        // "full" has a far better link, but it is at its session limit;
        // any under-limit candidate must come first.
        let order: Vec<String> = placement_order(vec![
            loaded("full", 100, 10, 10),
            loaded("slow", 9_000, 2, 10),
        ])
        .into_iter()
        .map(|e| e.name)
        .collect();
        assert_eq!(order, ["slow", "full"]);
    }

    #[test]
    fn placement_without_load_data_degrades_to_the_ranking() {
        let registry = SurrogateRegistry::new(RegistryConfig::default());
        registry.upsert(info("slow", 64 << 20, Some(9_000)));
        registry.upsert(info("fast", 64 << 20, Some(2_400)));
        registry.upsert(info("big", 256 << 20, Some(2_400)));
        registry.upsert(info("unknown", 1 << 30, None));
        let order: Vec<String> = registry.placement().into_iter().map(|e| e.name).collect();
        assert_eq!(order, ["big", "fast", "slow", "unknown"]);
    }

    #[test]
    fn busy_cooldown_expires_on_its_own() {
        let registry = SurrogateRegistry::new(RegistryConfig::default());
        registry.upsert(info("s", 1, Some(100)));
        registry.report_busy("s", 0); // clamped to 1 ms
        assert!(registry.in_cooldown("s"));
        std::thread::sleep(Duration::from_millis(5));
        assert!(!registry.in_cooldown("s"));
        // The surrogate never left the ranking while saturated.
        assert_eq!(registry.ranked().len(), 1);
    }

    #[test]
    fn upsert_keeps_load_data_across_announcements() {
        let registry = SurrogateRegistry::new(RegistryConfig::default());
        registry.upsert(loaded("s", 2_400, 7, 16));
        // Beacon re-announcement carries no load fields.
        registry.upsert(info("s", 64 << 20, Some(2_400)));
        let ranked = registry.ranked();
        assert_eq!(ranked[0].live_sessions, Some(7));
        assert_eq!(ranked[0].session_limit, Some(16));
    }
}
