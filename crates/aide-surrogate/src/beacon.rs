//! UDP beacon: how surrogates announce themselves on the local segment.
//!
//! A surrogate daemon periodically sends a small datagram describing itself
//! (protocol magic, RPC port, advertised capacity, name); a client registry
//! listens for a bounded window and merges whatever it hears. The announce
//! *target* is configurable rather than hard-wired to the broadcast address
//! so tests (and containerised deployments, where broadcast is typically
//! filtered) can point the beacon at a specific listener; static
//! registration in [`SurrogateRegistry`](crate::SurrogateRegistry) remains
//! the fallback when no beacon is reachable at all.

use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Protocol magic leading every announcement datagram; bump on any wire
/// change.
pub const BEACON_MAGIC: &str = "AIDE1";

/// Where and how often a daemon announces itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeaconConfig {
    /// Destination of the announcement datagrams (a listener's address, or
    /// a broadcast address on networks that permit it).
    pub target: SocketAddr,
    /// Interval between announcements.
    pub interval: Duration,
}

/// One decoded surrogate announcement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Announcement {
    /// Surrogate name (no whitespace; enforced by the codec).
    pub name: String,
    /// TCP port the surrogate's RPC listener is bound to. The host is the
    /// datagram's source address, which the listener reports alongside.
    pub port: u16,
    /// Advertised surrogate heap capacity in bytes.
    pub capacity_bytes: u64,
}

/// Encodes an announcement as a single datagram payload.
///
/// Layout is whitespace-separated text — `AIDE1 <port> <capacity> <name>` —
/// trivially debuggable with `tcpdump`.
pub fn encode_announcement(a: &Announcement) -> Vec<u8> {
    debug_assert!(
        !a.name.contains(char::is_whitespace),
        "surrogate names must not contain whitespace"
    );
    format!("{BEACON_MAGIC} {} {} {}", a.port, a.capacity_bytes, a.name).into_bytes()
}

/// Decodes an announcement datagram; returns `None` for anything that is
/// not a well-formed `AIDE1` announcement (beacons share ports with other
/// chatter in practice, so garbage is dropped silently).
pub fn decode_announcement(payload: &[u8]) -> Option<Announcement> {
    let text = std::str::from_utf8(payload).ok()?;
    let mut parts = text.split_whitespace();
    if parts.next()? != BEACON_MAGIC {
        return None;
    }
    let port: u16 = parts.next()?.parse().ok()?;
    let capacity_bytes: u64 = parts.next()?.parse().ok()?;
    let name = parts.next()?.to_string();
    if parts.next().is_some() {
        return None;
    }
    Some(Announcement {
        name,
        port,
        capacity_bytes,
    })
}

/// Spawns the daemon-side announcer thread: sends `announcement` to
/// `config.target` every `config.interval` until `stop` is set.
///
/// Send errors are ignored — a beacon is best-effort by design; the
/// static-registration path covers segments where UDP never arrives.
///
/// # Errors
///
/// Returns an I/O error if the announcer's socket cannot be bound.
pub(crate) fn spawn_announcer(
    announcement: Announcement,
    config: BeaconConfig,
    stop: Arc<AtomicBool>,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    let socket = UdpSocket::bind(("0.0.0.0", 0))?;
    let payload = encode_announcement(&announcement);
    std::thread::Builder::new()
        .name("aide-beacon".into())
        .spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                let _ = socket.send_to(&payload, config.target);
                std::thread::sleep(config.interval);
            }
        })
}

/// Listens on `listen` for up to `wait` and returns every announcement
/// heard, paired with the datagram's source address (whose IP, combined
/// with the announced port, locates the surrogate's RPC listener).
///
/// Duplicates are returned as heard; callers merge by name.
///
/// # Errors
///
/// Returns an I/O error if the listening socket cannot be bound or
/// configured. Receive timeouts are part of normal operation, not errors.
pub fn listen_for_announcements(
    listen: SocketAddr,
    wait: Duration,
) -> std::io::Result<Vec<(SocketAddr, Announcement)>> {
    let socket = UdpSocket::bind(listen)?;
    socket.set_read_timeout(Some(Duration::from_millis(25)))?;
    let deadline = Instant::now() + wait;
    let mut heard = Vec::new();
    let mut buf = [0u8; 512];
    while Instant::now() < deadline {
        match socket.recv_from(&mut buf) {
            Ok((len, source)) => {
                if let Some(a) = decode_announcement(&buf[..len]) {
                    heard.push((source, a));
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
    }
    Ok(heard)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips() {
        let a = Announcement {
            name: "porch-pc".to_string(),
            port: 9500,
            capacity_bytes: 64 << 20,
        };
        assert_eq!(decode_announcement(&encode_announcement(&a)), Some(a));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode_announcement(b""), None);
        assert_eq!(decode_announcement(b"HELLO 1 2 x"), None);
        assert_eq!(decode_announcement(b"AIDE1 notaport 2 x"), None);
        assert_eq!(decode_announcement(b"AIDE1 1 2"), None);
        assert_eq!(decode_announcement(b"AIDE1 1 2 x extra"), None);
        assert_eq!(decode_announcement(&[0xff, 0xfe, 0x00]), None);
    }

    #[test]
    fn announcer_reaches_a_listener() {
        let listen: SocketAddr = "127.0.0.1:0".parse().unwrap();
        // Bind first to learn the port, then aim the announcer at it.
        let probe = UdpSocket::bind(listen).unwrap();
        let target = probe.local_addr().unwrap();
        drop(probe);

        let stop = Arc::new(AtomicBool::new(false));
        let announcement = Announcement {
            name: "s1".to_string(),
            port: 4242,
            capacity_bytes: 1 << 20,
        };
        let handle = spawn_announcer(
            announcement.clone(),
            BeaconConfig {
                target,
                interval: Duration::from_millis(20),
            },
            stop.clone(),
        )
        .unwrap();

        let heard = listen_for_announcements(target, Duration::from_millis(400)).unwrap();
        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();

        assert!(
            heard.iter().any(|(_, a)| *a == announcement),
            "expected to hear {announcement:?}, got {heard:?}"
        );
    }
}
