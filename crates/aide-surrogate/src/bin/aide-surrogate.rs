//! The surrogate daemon binary: serves one of the paper's application
//! models to any client that connects.
//!
//! ```text
//! aide-surrogate [--addr 127.0.0.1:9500] [--name NAME] [--app javanote]
//!                [--scale 0.05] [--heap-mb 64] [--beacon HOST:PORT]
//!                [--fail-after N]
//! ```
//!
//! Client and surrogate must agree on the program, so `--app`/`--scale`
//! here must match what the client runs.

use std::net::SocketAddr;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use aide_apps::{all_apps, Scale};
use aide_surrogate::{BeaconConfig, DaemonConfig, SurrogateDaemon};
use aide_vm::Program;

struct Options {
    addr: SocketAddr,
    name: String,
    app: String,
    scale: f64,
    heap_mb: u64,
    beacon: Option<SocketAddr>,
    fail_after: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: aide-surrogate [--addr HOST:PORT] [--name NAME] [--app APP] \
         [--scale F] [--heap-mb N] [--beacon HOST:PORT] [--fail-after N]"
    );
    eprintln!("  APP is one of: javanote, dia, biomer, voxel, tracer");
    exit(2);
}

fn parse_options() -> Options {
    let mut options = Options {
        addr: "127.0.0.1:9500".parse().expect("static addr"),
        name: "surrogate".to_string(),
        app: "javanote".to_string(),
        scale: 0.05,
        heap_mb: 64,
        beacon: None,
        fail_after: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => options.addr = value().parse().unwrap_or_else(|_| usage()),
            "--name" => options.name = value(),
            "--app" => options.app = value(),
            "--scale" => options.scale = value().parse().unwrap_or_else(|_| usage()),
            "--heap-mb" => options.heap_mb = value().parse().unwrap_or_else(|_| usage()),
            "--beacon" => options.beacon = Some(value().parse().unwrap_or_else(|_| usage())),
            "--fail-after" => {
                options.fail_after = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }
    options
}

fn program_for(app: &str, scale: f64) -> Option<Arc<Program>> {
    all_apps(Scale(scale))
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(app))
        .map(|a| a.program)
}

fn main() {
    let options = parse_options();
    let Some(program) = program_for(&options.app, options.scale) else {
        eprintln!("unknown app {:?}", options.app);
        usage();
    };

    let mut config = DaemonConfig::new(&options.name, program);
    config.addr = options.addr;
    config.capacity_bytes = options.heap_mb << 20;
    config.fail_after_requests = options.fail_after;
    config.beacon = options.beacon.map(|target| BeaconConfig {
        target,
        interval: Duration::from_millis(500),
    });

    match SurrogateDaemon::start(config) {
        Ok(daemon) => {
            println!(
                "aide-surrogate {:?} serving {} (scale {}) on {} ({} MiB/session)",
                options.name,
                options.app,
                options.scale,
                daemon.local_addr(),
                options.heap_mb
            );
            daemon.join();
        }
        Err(e) => {
            eprintln!("aide-surrogate: {e}");
            exit(1);
        }
    }
}
