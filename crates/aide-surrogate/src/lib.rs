//! Surrogate daemon, discovery, and failover for the AIDE platform.
//!
//! The paper's surrogates are nearby, better-provisioned machines that
//! lend memory and cycles to resource-constrained devices. This crate
//! supplies the pieces that turn the in-process prototype into that
//! deployment shape:
//!
//! * [`SurrogateDaemon`] — a long-running TCP daemon serving any number of
//!   concurrent client sessions, each with its own surrogate VM, reference
//!   tables, and RPC endpoint (plus an optional fault injector that crashes
//!   a session on demand, for failover testing).
//! * [`beacon`] — UDP announcements so surrogates are discovered rather
//!   than configured; static registration remains the fallback.
//! * [`SurrogateRegistry`] — the client-side directory: merges discovered
//!   and static surrogates, health-checks them with null-RPC probes (the
//!   paper measures 2.4 ms per null RPC on WaveLAN), ranks them by
//!   `RTT / capacity`, and implements
//!   [`SurrogateProvider`](aide_core::SurrogateProvider) so
//!   `Platform::with_surrogates` can lease the best surrogate and fail
//!   over down the ranking when one dies.
//!
//! The `aide-surrogate` binary wraps [`SurrogateDaemon`] around the
//! paper's application models (`aide-apps`) for manual end-to-end runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beacon;
mod daemon;
mod registry;
mod relay;
mod shard;

pub use beacon::{
    decode_announcement, encode_announcement, listen_for_announcements, Announcement, BeaconConfig,
    BEACON_MAGIC,
};
pub use daemon::{DaemonConfig, FaultMode, ServingMode, SurrogateDaemon};
pub use registry::{placement_order, RegistryConfig, SurrogateInfo, SurrogateRegistry};
pub use relay::{RelayConfig, RelayQueue, RelayStats};
pub use shard::{SessionParts, ShardConfig, ShardPool};
