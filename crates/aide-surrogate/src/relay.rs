//! The store-and-forward relay queue: [`RelayQueue`] implements
//! [`aide_core::RelaySink`] over a manual clock.
//!
//! A client under memory pressure with no reachable surrogate gathers its
//! offload victims out of the heap and parks them here. The queue assigns
//! each shipment a transaction id and a queue timestamp; when the client
//! next holds a surrogate lease the queue drains front-to-back with
//! `Request::RelayDeliver` (the serving side installs each transaction at
//! most once, so redelivery after a lost acknowledgement is safe).
//! Shipments that sit past [`RelayConfig::ttl_ms`] are handed back for
//! local reinstatement instead — better slow than lost.
//!
//! Time is [`aide_rpc::GcClock`] milliseconds, the same manual clock the
//! lease tables use: nothing expires unless somebody advances the clock,
//! so tests are deterministic and the daemon's sweeper cadence drives
//! production expiry.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use aide_core::{RelayShipment, RelaySink};
use aide_rpc::{Endpoint, GcClock, Request};
use parking_lot::Mutex;

/// Tuning for a [`RelayQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelayConfig {
    /// How long a shipment may sit queued ([`GcClock`] milliseconds)
    /// before it is expired back to the client instead of delivered.
    pub ttl_ms: u64,
    /// Maximum shipments parked at once; further queue attempts are
    /// refused (the caller reinstates locally).
    pub max_depth: usize,
}

impl Default for RelayConfig {
    fn default() -> Self {
        RelayConfig {
            ttl_ms: 30_000,
            max_depth: 64,
        }
    }
}

/// Counters describing a relay queue's lifetime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayStats {
    /// Shipments ever accepted into the queue.
    pub queued_total: u64,
    /// Shipments delivered to a surrogate.
    pub relayed_total: u64,
    /// Shipments expired past TTL and handed back.
    pub expired_total: u64,
    /// Shipments currently parked.
    pub depth: usize,
}

/// One parked shipment with its queue timestamp.
#[derive(Debug)]
struct Entry {
    shipment: RelayShipment,
    queued_at_ms: u64,
}

/// A bounded FIFO of deferred migrations on a manual clock; the
/// `aide-surrogate` implementation of [`RelaySink`].
#[derive(Debug)]
pub struct RelayQueue {
    config: RelayConfig,
    clock: Arc<GcClock>,
    next_txn: AtomicU64,
    queued_total: AtomicU64,
    relayed_total: AtomicU64,
    expired_total: AtomicU64,
    inner: Mutex<VecDeque<Entry>>,
}

impl RelayQueue {
    /// Creates a queue with its own private clock (advance it via
    /// [`clock`](RelayQueue::clock) to drive expiry).
    pub fn new(config: RelayConfig) -> Self {
        RelayQueue::with_clock(config, Arc::new(GcClock::new()))
    }

    /// Creates a queue on a shared clock — typically the client's export
    /// table clock, so one sweeper cadence drives leases and relay TTLs.
    pub fn with_clock(config: RelayConfig, clock: Arc<GcClock>) -> Self {
        RelayQueue {
            config,
            clock,
            next_txn: AtomicU64::new(1),
            queued_total: AtomicU64::new(0),
            relayed_total: AtomicU64::new(0),
            expired_total: AtomicU64::new(0),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// The clock expiry is measured on.
    pub fn clock(&self) -> &Arc<GcClock> {
        &self.clock
    }

    /// Lifetime counters and current depth.
    pub fn stats(&self) -> RelayStats {
        RelayStats {
            queued_total: self.queued_total.load(Ordering::Relaxed),
            relayed_total: self.relayed_total.load(Ordering::Relaxed),
            expired_total: self.expired_total.load(Ordering::Relaxed),
            depth: self.inner.lock().len(),
        }
    }

    fn depth_gauge(delta: i64) {
        aide_telemetry::global()
            .gauge(aide_telemetry::names::FLEET_RELAY_QUEUE_DEPTH)
            .add(delta);
    }
}

impl RelaySink for RelayQueue {
    fn accepting(&self) -> bool {
        self.inner.lock().len() < self.config.max_depth
    }

    fn queue(&self, mut shipment: RelayShipment) -> Result<u64, RelayShipment> {
        let mut inner = self.inner.lock();
        if inner.len() >= self.config.max_depth {
            return Err(shipment);
        }
        let txn = self.next_txn.fetch_add(1, Ordering::Relaxed);
        shipment.txn = txn;
        inner.push_back(Entry {
            shipment,
            queued_at_ms: self.clock.now_ms(),
        });
        drop(inner);
        self.queued_total.fetch_add(1, Ordering::Relaxed);
        aide_telemetry::global()
            .counter(aide_telemetry::names::FLEET_RELAY_QUEUED)
            .inc();
        RelayQueue::depth_gauge(1);
        Ok(txn)
    }

    fn flush(&self, endpoint: &Arc<Endpoint>) -> Vec<RelayShipment> {
        let mut delivered = Vec::new();
        loop {
            // Pop one entry at a time so a delivery failure leaves the
            // remainder parked in order, the failed entry back at the
            // front.
            let Some(entry) = self.inner.lock().pop_front() else {
                break;
            };
            let result = endpoint.call_with_retry(Request::RelayDeliver {
                txn: entry.shipment.txn,
                queued_for_ms: self.clock.now_ms().saturating_sub(entry.queued_at_ms),
                objects: entry.shipment.objects.clone(),
            });
            match result {
                Ok(_) => {
                    let mut shipment = entry.shipment;
                    shipment.queued_for_ms = self.clock.now_ms().saturating_sub(entry.queued_at_ms);
                    delivered.push(shipment);
                    self.relayed_total.fetch_add(1, Ordering::Relaxed);
                    aide_telemetry::global()
                        .counter(aide_telemetry::names::FLEET_RELAY_RELAYED)
                        .inc();
                    RelayQueue::depth_gauge(-1);
                }
                Err(_) => {
                    // The new surrogate is already unreachable (or its
                    // heap refused the install): stop and keep the rest
                    // queued for the next lease or for expiry.
                    self.inner.lock().push_front(entry);
                    break;
                }
            }
        }
        delivered
    }

    fn take_expired(&self) -> Vec<RelayShipment> {
        let now = self.clock.now_ms();
        let mut expired = Vec::new();
        let mut inner = self.inner.lock();
        // FIFO order is queue-time order, so expired entries are a prefix:
        // repeated calls under the same clock reading drain nothing new
        // (idempotent), and advancing the clock only grows the prefix
        // (monotone).
        while let Some(front) = inner.front() {
            if now.saturating_sub(front.queued_at_ms) < self.config.ttl_ms {
                break;
            }
            let entry = inner.pop_front().expect("front exists");
            let mut shipment = entry.shipment;
            shipment.queued_for_ms = now.saturating_sub(entry.queued_at_ms);
            expired.push(shipment);
        }
        drop(inner);
        let n = expired.len() as u64;
        if n > 0 {
            self.expired_total.fetch_add(n, Ordering::Relaxed);
            aide_telemetry::global()
                .counter(aide_telemetry::names::FLEET_RELAY_EXPIRED)
                .add(n);
            RelayQueue::depth_gauge(-(n as i64));
        }
        expired
    }

    fn take_all(&self) -> Vec<RelayShipment> {
        let drained: Vec<RelayShipment> = self
            .inner
            .lock()
            .drain(..)
            .map(|entry| entry.shipment)
            .collect();
        if !drained.is_empty() {
            RelayQueue::depth_gauge(-(drained.len() as i64));
        }
        drained
    }

    fn depth(&self) -> usize {
        self.inner.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_core::{RefTables, VmDispatcher};
    use aide_graph::CommParams;
    use aide_rpc::{EndpointConfig, Link};
    use aide_vm::{Machine, MethodDef, MethodId, ObjectId, ObjectRecord, ProgramBuilder, VmConfig};

    fn shipment(objects: usize) -> RelayShipment {
        RelayShipment {
            txn: 0,
            objects: (0..objects)
                .map(|i| {
                    (
                        ObjectId::client(i as u64),
                        ObjectRecord::new(aide_vm::ClassId(0), 128, 0),
                    )
                })
                .collect(),
            pins: Vec::new(),
            bytes: objects as u64 * 128,
            queued_for_ms: 0,
        }
    }

    #[test]
    fn queue_assigns_txns_and_respects_capacity() {
        let q = RelayQueue::new(RelayConfig {
            ttl_ms: 1_000,
            max_depth: 2,
        });
        assert!(q.accepting());
        let t1 = q.queue(shipment(1)).expect("first fits");
        let t2 = q.queue(shipment(1)).expect("second fits");
        assert_ne!(t1, t2);
        assert!(!q.accepting());
        let refused = q.queue(shipment(3)).expect_err("queue is full");
        assert_eq!(refused.objects.len(), 3, "shipment handed back intact");
        assert_eq!(q.depth(), 2);
        assert_eq!(q.stats().queued_total, 2);
    }

    #[test]
    fn expiry_is_idempotent_and_monotone() {
        let q = RelayQueue::new(RelayConfig {
            ttl_ms: 100,
            max_depth: 8,
        });
        q.queue(shipment(1)).unwrap();
        q.clock().advance_ms(50);
        q.queue(shipment(2)).unwrap();
        assert!(q.take_expired().is_empty(), "nothing aged out yet");

        q.clock().advance_ms(50); // first entry hits exactly TTL
        let first = q.take_expired();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].objects.len(), 1);
        assert_eq!(first[0].queued_for_ms, 100);
        assert!(
            q.take_expired().is_empty(),
            "second call under the same clock reading drains nothing"
        );

        q.clock().advance_ms(50);
        let second = q.take_expired();
        assert_eq!(second.len(), 1, "advancing time only grows the prefix");
        assert_eq!(second[0].objects.len(), 2);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.stats().expired_total, 2);
    }

    #[test]
    fn take_all_drains_everything() {
        let q = RelayQueue::new(RelayConfig::default());
        q.queue(shipment(1)).unwrap();
        q.queue(shipment(2)).unwrap();
        let all = q.take_all();
        assert_eq!(all.len(), 2);
        assert_eq!(q.depth(), 0);
    }

    /// Flush installs queued objects into a serving VM over a real link,
    /// and a redelivered transaction (the dedup path) installs nothing
    /// twice.
    #[test]
    fn flush_delivers_into_a_serving_vm_exactly_once() {
        let mut b = ProgramBuilder::new();
        let main = b.add_class("Main");
        b.add_method(main, MethodDef::new("main", vec![]));
        let program = Arc::new(b.build(main, MethodId(0), 0, 0).unwrap());
        let surrogate = Machine::new(program, VmConfig::surrogate(1 << 20));

        let (link, ct, st) = Link::pair(CommParams::WAVELAN);
        let clock = link.clock.clone();
        let tables = Arc::new(RefTables::new());
        let dispatcher = Arc::new(VmDispatcher::new(surrogate.clone(), tables.clone()));
        let client_ep = Endpoint::start(
            ct,
            link.params,
            clock.clone(),
            Arc::new(VmDispatcher::new(surrogate.clone(), tables.clone())),
            EndpointConfig::default(),
        );
        let _serve_ep = Endpoint::start(
            st,
            link.params,
            clock,
            dispatcher,
            EndpointConfig::default(),
        );

        let q = RelayQueue::new(RelayConfig::default());
        q.queue(shipment(3)).unwrap();
        let delivered = q.flush(&client_ep);
        assert_eq!(delivered.len(), 1);
        let txn = delivered[0].txn;
        assert_eq!(q.depth(), 0);
        assert_eq!(surrogate.vm().lock().heap().stats().migrated_in, 3);

        // Redelivery of the same transaction is acknowledged but installs
        // nothing: the serving side dedups on txn.
        client_ep
            .call_with_retry(Request::RelayDeliver {
                txn,
                queued_for_ms: 0,
                objects: delivered[0].objects.clone(),
            })
            .expect("redelivery acknowledged");
        assert_eq!(
            surrogate.vm().lock().heap().stats().migrated_in,
            3,
            "exactly-once install per relay transaction"
        );
    }
}
