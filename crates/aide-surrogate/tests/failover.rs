//! End-to-end tests over real TCP daemons: discovery, probing, and the
//! acceptance scenario — a surrogate daemon crashes mid-run and the
//! application still completes after local reinstatement and re-offload to
//! the second daemon.

use std::net::UdpSocket;
use std::sync::Arc;
use std::time::Duration;

use aide_core::{BackoffConfig, FailoverConfig, Platform, PlatformConfig};
use aide_surrogate::{
    BeaconConfig, DaemonConfig, RegistryConfig, SurrogateDaemon, SurrogateRegistry,
};
use aide_vm::{GcConfig, MethodDef, MethodId, Op, Program, ProgramBuilder, Reg};

const DOC_BYTES: u32 = 4_000;
const HEAP: u64 = 256 * 1024;

/// Minimal program for session/discovery tests.
fn tiny_program() -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    b.add_method(main, MethodDef::new("main", vec![Op::Work { micros: 10 }]));
    Arc::new(b.build(main, MethodId(0), 64, 4).unwrap())
}

/// The document-store workload from the platform failover tests: fill past
/// the heap (offload), drop half (GC release), read survivors (hits the
/// dead surrogate), fill again (re-offload), read everything.
fn doc_store_program() -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let main = b.add_native_class("Main");
    let doc = b.add_class("Doc");

    let mut ops = Vec::new();
    let new_doc = |ops: &mut Vec<Op>, slot: u16| {
        ops.push(Op::New {
            class: doc,
            scalar_bytes: DOC_BYTES,
            ref_slots: 0,
            dst: Reg(1),
        });
        ops.push(Op::PutSlot { slot, src: Reg(1) });
        ops.push(Op::Work { micros: 20 });
    };
    let read_doc = |ops: &mut Vec<Op>, slot: u16| {
        ops.push(Op::GetSlot { slot, dst: Reg(2) });
        ops.push(Op::Read {
            obj: Reg(2),
            bytes: 64,
        });
    };

    for i in 0..70 {
        new_doc(&mut ops, i);
        if i % 8 == 0 {
            // Pre-offload reads: Main↔Doc interaction edges for the
            // partitioner, all served locally (offload has not happened yet
            // by the last of them).
            read_doc(&mut ops, i);
        }
    }
    ops.push(Op::Clear { reg: Reg(1) });
    for i in 0..50 {
        ops.push(Op::PutSlot {
            slot: i,
            src: Reg(1),
        });
    }
    for i in 70..80 {
        new_doc(&mut ops, i);
    }
    for i in 55..60 {
        read_doc(&mut ops, i);
    }
    for i in 80..120 {
        new_doc(&mut ops, i);
    }
    for i in [55, 60, 75, 90, 118] {
        read_doc(&mut ops, i);
    }

    b.add_method(main, MethodDef::new("main", ops));
    Arc::new(b.build(main, MethodId(0), 64, 120).unwrap())
}

fn platform_config() -> PlatformConfig {
    let mut cfg = PlatformConfig::prototype(HEAP);
    cfg.gc = GcConfig {
        trigger_alloc_count: 8,
        trigger_alloc_bytes: 64 * 1024,
        cost_micros_per_object: 0.05,
    };
    cfg
}

fn failover_config() -> FailoverConfig {
    FailoverConfig {
        heartbeat_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(250),
        backoff: BackoffConfig {
            base: Duration::ZERO,
            factor: 2.0,
            max: Duration::ZERO,
            jitter: 0.0,
            seed: 1,
        },
    }
}

#[test]
fn daemon_serves_isolated_sessions_and_answers_probes() {
    let daemon = SurrogateDaemon::start(DaemonConfig::new("porch-pc", tiny_program())).unwrap();
    let registry = SurrogateRegistry::new(RegistryConfig::default());
    registry.add_static("porch-pc", daemon.local_addr(), 64 << 20);

    registry.probe_all();
    let ranked = registry.ranked();
    assert_eq!(ranked[0].name, "porch-pc");
    let rtt = ranked[0].rtt.expect("reachable daemon must be probed");
    assert!(rtt > Duration::ZERO);

    // A second probe opens a second, fully isolated session.
    registry.probe_all();
    assert!(registry.ranked()[0].rtt.is_some());
    assert!(daemon.sessions_accepted() >= 2);

    daemon.shutdown();
}

#[test]
fn daemon_answers_stats_with_latency_histogram_data() {
    let daemon = SurrogateDaemon::start(DaemonConfig::new("observable", tiny_program())).unwrap();
    let registry = SurrogateRegistry::new(RegistryConfig::default());
    registry.add_static("observable", daemon.local_addr(), 64 << 20);

    // A probe records at least one real RPC round trip into the registry.
    registry.probe_all();
    assert_eq!(registry.ranked()[0].name, "observable");

    let stats = registry
        .scrape_stats("observable")
        .expect("daemon answers STATS");
    assert!(
        stats.contains("# TYPE aide_rpc_request_latency_micros histogram"),
        "exposition lists the RPC latency histogram:\n{stats}"
    );
    // The histogram has non-zero data: its _count line is present and > 0.
    let count = stats
        .lines()
        .find_map(|l| l.strip_prefix("aide_rpc_request_latency_micros_count "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .expect("exposition has a latency count line");
    assert!(count > 0, "at least one RPC latency sample:\n{stats}");
    assert!(
        stats.contains("aide_surrogate_sessions_total"),
        "daemon session counters are exported:\n{stats}"
    );

    daemon.shutdown();
}

#[test]
fn repeated_probe_failures_evict_an_unreachable_address() {
    let config = RegistryConfig {
        connect_timeout: Duration::from_millis(200),
        probe_eviction_threshold: 3,
        ..RegistryConfig::default()
    };
    let registry = SurrogateRegistry::new(config);
    // A localhost port nobody is listening on: connect fails fast.
    registry.add_static("ghost", "127.0.0.1:1".parse().unwrap(), 1 << 20);
    // The first two failures leave the entry ranked — one lost probe on a
    // lossy link must not discard a surrogate.
    registry.probe_all();
    registry.probe_all();
    assert_eq!(registry.ranked().len(), 1);
    assert!(registry.dead_names().is_empty());
    // The third consecutive failure evicts it.
    registry.probe_all();
    assert!(registry.ranked().is_empty());
    assert_eq!(registry.dead_names(), ["ghost"]);
}

#[test]
fn beacon_discovery_registers_the_daemon() {
    // Learn a free UDP port, then point the daemon's beacon at it.
    let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
    let listen = probe.local_addr().unwrap();
    drop(probe);

    let mut config = DaemonConfig::new("beaconed", tiny_program());
    config.beacon = Some(BeaconConfig {
        target: listen,
        interval: Duration::from_millis(20),
    });
    let daemon = SurrogateDaemon::start(config).unwrap();

    let registry = SurrogateRegistry::new(RegistryConfig::default());
    let found = registry
        .discover(listen, Duration::from_millis(500))
        .unwrap();
    assert_eq!(found, 1);
    let ranked = registry.ranked();
    assert_eq!(ranked[0].name, "beaconed");
    assert_eq!(ranked[0].addr, daemon.local_addr());
    assert_eq!(ranked[0].capacity_bytes, 64 << 20);

    daemon.shutdown();
}

/// Acceptance: the first daemon crashes after serving the initial offload
/// and one GC release; the next remote read hits a dead socket, the
/// platform reinstates the surviving documents locally, keeps running, and
/// re-offloads to the second daemon when pressure returns.
#[test]
fn platform_survives_daemon_crash_and_reoffloads_over_tcp() {
    let program = doc_store_program();
    let mut c1 = DaemonConfig::new("s1", program.clone());
    // Serve the Migrate and the GcRelease, then sever the socket on the
    // next application request (health pings are not counted).
    c1.fail_after_requests = Some(2);
    let d1 = SurrogateDaemon::start(c1).unwrap();
    let d2 = SurrogateDaemon::start(DaemonConfig::new("s2", program.clone())).unwrap();

    let registry = Arc::new(SurrogateRegistry::new(RegistryConfig::default()));
    registry.add_static("s1", d1.local_addr(), 64 << 20);
    registry.add_static("s2", d2.local_addr(), 64 << 20);

    let report = Platform::with_surrogates(program, platform_config(), registry.clone())
        .with_failover_config(failover_config())
        .run();

    assert!(
        report.outcome.is_ok(),
        "application must survive the daemon crash: {:?}",
        report.outcome
    );
    let failover = report.failover.as_ref().expect("provider-backed run");
    assert_eq!(failover.failovers, 1, "{failover:?}");
    assert!(failover.reinstated_objects >= 10, "{failover:?}");
    assert_eq!(failover.objects_lost, 0, "{failover:?}");
    assert!(failover.reoffloads >= 1, "{failover:?}");
    assert_eq!(
        failover.surrogates_used,
        vec!["s1".to_string(), "s2".to_string()]
    );
    assert_eq!(registry.dead_names(), ["s1"]);
    assert_eq!(report.offloads.len(), 2);
    assert!(
        d2.requests_served() > 0,
        "s2 hosts the store after failover"
    );

    d1.shutdown();
    d2.shutdown();
}

/// Acceptance variant: the daemon dies *during* the very first offload (the
/// `Migrate` itself is severed). The transactional migration rolls back,
/// nothing is lost, and the retry lands on the second daemon.
#[test]
fn offload_interrupted_mid_migration_rolls_back_and_retries() {
    let program = doc_store_program();
    let mut c1 = DaemonConfig::new("s1", program.clone());
    c1.fail_after_requests = Some(0); // kill the first application request
    let d1 = SurrogateDaemon::start(c1).unwrap();
    let d2 = SurrogateDaemon::start(DaemonConfig::new("s2", program.clone())).unwrap();

    let registry = Arc::new(SurrogateRegistry::new(RegistryConfig::default()));
    registry.add_static("s1", d1.local_addr(), 64 << 20);
    registry.add_static("s2", d2.local_addr(), 64 << 20);

    let report = Platform::with_surrogates(program, platform_config(), registry.clone())
        .with_failover_config(failover_config())
        .run();

    assert!(report.outcome.is_ok(), "{:?}", report.outcome);
    let failover = report.failover.as_ref().expect("provider-backed run");
    assert_eq!(failover.failovers, 1, "{failover:?}");
    assert_eq!(failover.objects_lost, 0, "{failover:?}");
    // Nothing had been shipped yet, so nothing needed reinstating.
    assert_eq!(failover.reinstated_objects, 0, "{failover:?}");
    assert!(failover.reoffloads >= 1, "{failover:?}");
    assert_eq!(
        failover.surrogates_used,
        vec!["s1".to_string(), "s2".to_string()]
    );
    // Only the successful migration is recorded.
    assert_eq!(report.offloads.len(), 1);
    assert!(d2.requests_served() > 0);

    d1.shutdown();
    d2.shutdown();
}
