//! Property suite for load-aware placement and relay expiry, run at the
//! soak layer's three hostile seeds with ≥256 generated cases each.
//!
//! `proptest` is deliberately not used here: placement must be
//! *bit-identical across thread counts* (the fleet soak compares daemon
//! decisions made on different pools), so the generator itself is a
//! hand-rolled deterministic xorshift whose case stream depends only on
//! the seed — never on scheduling, shrinking state, or a framework RNG.

use std::sync::Arc;
use std::time::Duration;

use aide_core::{RelayShipment, RelaySink};
use aide_surrogate::{placement_order, RelayConfig, RelayQueue, SurrogateInfo};

const SEEDS: [u64; 3] = [1, 7, 1234];
const CASES: usize = 300;

/// xorshift64: tiny, seedable, and identical everywhere.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One random fleet: 1–12 surrogates with mixed probe history and load
/// data, including entries with no load report and entries at or past
/// their session limit.
fn random_fleet(rng: &mut Rng) -> Vec<SurrogateInfo> {
    let n = 1 + rng.below(12) as usize;
    (0..n)
        .map(|i| {
            let rtt = if rng.below(4) == 0 {
                None
            } else {
                Some(Duration::from_micros(100 + rng.below(50_000)))
            };
            let (live_sessions, session_limit) = if rng.below(4) == 0 {
                (None, None)
            } else {
                let limit = 1 + rng.below(32);
                // live up to limit + 3: both under- and over-limit cases.
                (Some(rng.below(limit + 4)), Some(limit))
            };
            SurrogateInfo {
                name: format!("s{i}"),
                addr: "127.0.0.1:1".parse().unwrap(),
                capacity_bytes: 1 << (10 + rng.below(20)),
                rtt,
                smoothed_rtt: rtt,
                live_sessions,
                session_limit,
            }
        })
        .collect()
}

fn order_names(fleet: Vec<SurrogateInfo>) -> Vec<String> {
    placement_order(fleet).into_iter().map(|e| e.name).collect()
}

#[test]
fn placement_is_bit_identical_across_thread_counts() {
    for seed in SEEDS {
        let mut rng = Rng::new(seed);
        let fleets: Arc<Vec<Vec<SurrogateInfo>>> =
            Arc::new((0..CASES).map(|_| random_fleet(&mut rng)).collect());
        let reference: Vec<Vec<String>> = fleets
            .iter()
            .map(|fleet| order_names(fleet.clone()))
            .collect();

        for threads in [2usize, 4, 8] {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let fleets = fleets.clone();
                    std::thread::spawn(move || {
                        fleets
                            .iter()
                            .map(|fleet| order_names(fleet.clone()))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                let got = handle.join().expect("placement thread");
                assert_eq!(
                    got, reference,
                    "seed {seed}: placement diverged at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn placement_never_ranks_an_over_limit_surrogate_above_an_under_limit_one() {
    for seed in SEEDS {
        let mut rng = Rng::new(seed ^ 0xA5A5);
        for case in 0..CASES {
            let fleet = random_fleet(&mut rng);
            let ordered = placement_order(fleet);
            // Once the order crosses into at-limit territory it must never
            // cross back: every under-limit candidate precedes every
            // saturated one, regardless of RTT or capacity.
            let mut seen_at_limit = false;
            for entry in &ordered {
                if entry.at_session_limit() {
                    seen_at_limit = true;
                } else {
                    assert!(
                        !seen_at_limit,
                        "seed {seed} case {case}: under-limit '{}' placed \
                         behind a saturated surrogate in {:?}",
                        entry.name,
                        ordered.iter().map(|e| &e.name).collect::<Vec<_>>(),
                    );
                }
            }
        }
    }
}

fn shipment() -> RelayShipment {
    RelayShipment {
        txn: 0,
        objects: Vec::new(),
        pins: Vec::new(),
        bytes: 256,
        queued_for_ms: 0,
    }
}

#[test]
fn relay_expiry_is_idempotent_and_monotone() {
    for seed in SEEDS {
        let mut rng = Rng::new(seed ^ 0x5EED);
        for case in 0..CASES {
            let ttl_ms = 1 + rng.below(400);
            let queue = RelayQueue::new(RelayConfig {
                ttl_ms,
                max_depth: 4096,
            });
            let mut queued = 0u64;
            let mut expired = 0u64;
            // Random interleaving of queueing, clock advances, and expiry
            // sweeps.
            for _ in 0..(2 + rng.below(24)) {
                match rng.below(3) {
                    0 => {
                        queue.queue(shipment()).expect("queue under max_depth");
                        queued += 1;
                    }
                    1 => queue.clock().advance_ms(rng.below(ttl_ms * 2)),
                    _ => {
                        let now = queue.clock().now_ms();
                        let batch = queue.take_expired();
                        for gone in &batch {
                            assert!(
                                gone.queued_for_ms >= ttl_ms,
                                "seed {seed} case {case}: expired a shipment \
                                 only {} ms old (ttl {ttl_ms})",
                                gone.queued_for_ms
                            );
                        }
                        expired += batch.len() as u64;
                        // Idempotent: the clock has not moved, so a second
                        // sweep must find nothing.
                        assert_eq!(queue.clock().now_ms(), now);
                        assert!(
                            queue.take_expired().is_empty(),
                            "seed {seed} case {case}: second sweep at the \
                             same instant expired more"
                        );
                    }
                }
                // Monotone accounting at every step: lifetime counters
                // only grow, and nothing is both parked and expired.
                let stats = queue.stats();
                assert_eq!(stats.queued_total, queued);
                assert_eq!(stats.expired_total, expired);
                assert_eq!(stats.depth as u64, queued - expired);
            }
            // Advancing past TTL expires the entire remainder: expiry is
            // monotone in clock time, nothing left behind gets stuck.
            queue.clock().advance_ms(ttl_ms + 1);
            let rest = queue.take_expired();
            assert_eq!(rest.len() as u64, queued - expired);
            assert_eq!(queue.depth(), 0, "seed {seed} case {case}");
            assert!(queue.take_expired().is_empty());
        }
    }
}
