//! Property tests for the trace codec: arbitrary event streams survive
//! both encodings bit-identically, and corrupt or truncated bytes
//! produce errors — never panics.

use aide_core::{MigrationRecord, NodeKey, PlatformConfig, TriggerSample};
use aide_graph::{GraphDelta, NodeId, PinReason, ResourceSnapshot};
use aide_replay::{decode, from_json_lines, to_binary, to_json_lines, ReplayEvent, ReplayTrace};
use aide_telemetry::{PlatformEvent, TimedEvent};
use aide_vm::{ClassId, GcReport};
use proptest::prelude::*;

fn arb_report() -> impl Strategy<Value = GcReport> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
    )
        .prop_map(
            |(cycle, capacity, used_after, free_after, freed_objects, freed_bytes, dur)| GcReport {
                cycle,
                capacity,
                used_after,
                free_after,
                freed_objects,
                freed_bytes,
                duration_micros: f64::from(dur),
            },
        )
}

fn arb_delta() -> impl Strategy<Value = GraphDelta> {
    prop_oneof![
        (
            "[A-Za-z]{1,12}",
            proptest::option::of(Just(PinReason::NativeMethods)),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(label, pinned, memory_bytes, cpu_micros, live_objects)| {
                GraphDelta::AddNode {
                    label,
                    pinned,
                    memory_bytes,
                    cpu_micros,
                    live_objects,
                }
            }),
        (any::<u32>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(node, memory_bytes, cpu_micros, live_objects)| GraphDelta::UpdateNode {
                node: NodeId(node),
                memory_bytes,
                cpu_micros,
                live_objects,
            }
        ),
    ]
}

fn arb_sample() -> impl Strategy<Value = TriggerSample> {
    (
        any::<u64>(),
        "[a-z-]{1,20}",
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(arb_delta(), 0..4),
        proptest::collection::vec(any::<u32>(), 0..4),
    )
        .prop_map(
            |(at_gc_cycle, reason, capacity, used, deltas, keys)| TriggerSample {
                at_gc_cycle,
                reason,
                snapshot: ResourceSnapshot {
                    heap_capacity: capacity,
                    heap_used: used,
                },
                deltas,
                keys: keys
                    .into_iter()
                    .map(|c| NodeKey::Class(ClassId(c)))
                    .collect(),
            },
        )
}

fn arb_input() -> impl Strategy<Value = ReplayEvent> {
    prop_oneof![
        (any::<u64>(), arb_report())
            .prop_map(|(at_micros, report)| ReplayEvent::Gc { at_micros, report }),
        (any::<u64>(), arb_sample())
            .prop_map(|(at_micros, sample)| ReplayEvent::Trigger { at_micros, sample }),
        (
            any::<u64>(),
            prop_oneof![
                (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
                    |(objects, bytes, duration_micros)| MigrationRecord::Completed {
                        objects,
                        bytes,
                        duration_micros,
                    }
                ),
                Just(MigrationRecord::Failed),
                Just(MigrationRecord::NoSurrogate),
            ]
        )
            .prop_map(|(at_micros, record)| ReplayEvent::Migration { at_micros, record }),
        (any::<u64>(), "[a-z0-9-]{1,16}").prop_map(|(at_micros, surrogate)| {
            ReplayEvent::LinkDown {
                at_micros,
                surrogate,
            }
        }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            any::<bool>()
        )
            .prop_map(|(at_micros, seq, attempts, elapsed_micros, ok)| {
                ReplayEvent::RpcCompletion {
                    at_micros,
                    seq,
                    attempts,
                    elapsed_micros,
                    ok,
                }
            }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(stream, index, value)| {
            ReplayEvent::ChaosDraw {
                stream,
                index,
                value,
            }
        }),
        (any::<u64>(), "[a-z0-9-]{1,16}", any::<u64>()).prop_map(
            |(at_micros, surrogate, rtt_micros)| ReplayEvent::ProbeRtt {
                at_micros,
                surrogate,
                rtt_micros,
            }
        ),
        any::<u64>().prop_map(|at_micros| ReplayEvent::VirtualTick { at_micros }),
    ]
}

fn arb_baseline_event() -> impl Strategy<Value = PlatformEvent> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u64>(), "[a-z-]{1,12}").prop_map(
            |(at_gc_cycle, heap_used, heap_capacity, reason)| PlatformEvent::TriggerFired {
                at_gc_cycle,
                heap_used,
                heap_capacity,
                reason,
            }
        ),
        (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(
            |(score, offload_bytes, cut_interactions)| PlatformEvent::WinnerChosen {
                policy_score: f64::from(score),
                offload_bytes,
                cut_interactions,
            }
        ),
        (any::<u16>()).prop_map(|candidates| PlatformEvent::OffloadDeclined {
            candidates: candidates as usize,
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(churn_weight, threshold)| {
            PlatformEvent::EpochSkipped {
                churn_weight,
                threshold,
            }
        }),
    ]
}

fn arb_trace() -> impl Strategy<Value = ReplayTrace> {
    (
        proptest::collection::vec(arb_input(), 0..24),
        proptest::collection::vec((any::<u64>(), arb_baseline_event()), 0..12),
    )
        .prop_map(|(inputs, baseline)| {
            let mut trace = ReplayTrace::new("proptest", PlatformConfig::prototype(3 << 20));
            trace.inputs = inputs;
            trace.baseline = baseline
                .into_iter()
                .enumerate()
                .map(|(i, (at_micros, event))| TimedEvent {
                    seq: i as u64,
                    at_micros,
                    event,
                })
                .collect();
            trace
        })
}

proptest! {
    /// JSON lines and binary both round-trip arbitrary traces exactly,
    /// auto-detection picks the right decoder, and re-encoding the
    /// decoded trace reproduces the original bytes bit-for-bit.
    #[test]
    fn arbitrary_traces_round_trip_bit_identically(trace in arb_trace()) {
        let json = to_json_lines(&trace);
        let from_json = from_json_lines(&json).expect("json round-trip");
        prop_assert_eq!(&from_json, &trace);

        let bin = to_binary(&trace);
        let from_bin = decode(&bin).expect("binary round-trip");
        prop_assert_eq!(&from_bin, &trace);

        // Cross the formats: JSON -> decode -> binary must equal the
        // binary of the original, byte for byte.
        let from_json_via_detect = decode(json.as_bytes()).expect("auto-detect json");
        prop_assert_eq!(to_binary(&from_json_via_detect), bin);
    }

    /// Flipping any payload byte of the first binary frame is caught by
    /// the frame checksum.
    #[test]
    fn corrupted_binary_payloads_error(trace in arb_trace(), flip in any::<(u16, u8)>()) {
        let mut bin = to_binary(&trace);
        // Frame layout: magic(4) version(1) | tag(1) len(4) payload crc(4).
        let payload_len = u32::from_le_bytes([bin[6], bin[7], bin[8], bin[9]]) as usize;
        let at = 10 + (flip.0 as usize % payload_len);
        bin[at] ^= if flip.1 == 0 { 1 } else { flip.1 };
        prop_assert!(decode(&bin).is_err());
    }

    /// Truncated binary never panics; when a truncation lands exactly on
    /// a frame boundary the decoder may return the surviving prefix, but
    /// the header is always intact.
    #[test]
    fn truncated_binary_never_panics(trace in arb_trace(), cut in any::<u16>()) {
        let bin = to_binary(&trace);
        let cut = cut as usize % bin.len();
        match decode(&bin[..cut]) {
            Err(_) => {}
            Ok(prefix) => prop_assert_eq!(&prefix.header, &trace.header),
        }
    }

    /// Arbitrary corruption of the JSON form never panics the decoder.
    #[test]
    fn corrupted_json_never_panics(trace in arb_trace(), flip in any::<(u16, u8)>()) {
        let mut json = to_json_lines(&trace).into_bytes();
        if !json.is_empty() {
            let at = flip.0 as usize % json.len();
            json[at] ^= if flip.1 == 0 { 1 } else { flip.1 };
        }
        let _ = decode(&json);
    }
}
