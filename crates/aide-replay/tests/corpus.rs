//! Golden-trace corpus: the checked-in traces under `traces/` must load,
//! match their in-code constructions exactly, and replay bit-identically.
//!
//! Regenerate after an intentional format or pipeline change with:
//!
//! ```sh
//! AIDE_BLESS=1 cargo test -p aide-replay --test corpus
//! ```

use std::path::PathBuf;

use aide_core::{MigrationRecord, PlatformConfig, PolicyKind, TriggerSample};
use aide_graph::{EdgeInfo, GraphDelta, NodeId, PinReason, ResourceSnapshot};
use aide_replay::{load, replay, save, verify_chaos_draws, ReplayEvent, ReplayTrace};
use aide_telemetry::{PlatformEvent, TimedEvent};
use aide_vm::GcReport;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../traces")
        .join(format!("{name}.trace.jsonl"))
}

fn gc(cycle: u64, capacity: u64, used_after: u64, at_micros: u64) -> ReplayEvent {
    ReplayEvent::Gc {
        at_micros,
        report: GcReport {
            cycle,
            capacity,
            used_after,
            free_after: capacity - used_after,
            freed_objects: 12,
            freed_bytes: 40_000,
            duration_micros: 80.0,
        },
    }
}

/// The shared two-class pressure scenario: a pinned UI class and a
/// 4 MB document class with a 10-interaction/1000-byte edge. Exactly
/// one candidate partitioning exists (offload the document), the
/// memory policy scores it by cut bytes (1000.0), and the trigger arms
/// after three successive cycles under 5% free.
fn pressure_inputs(capacity: u64, used: u64) -> Vec<ReplayEvent> {
    vec![
        gc(1, capacity, used, 1_000),
        gc(2, capacity, used, 2_000),
        gc(3, capacity, used, 3_000),
        ReplayEvent::Trigger {
            at_micros: 4_000,
            sample: TriggerSample {
                at_gc_cycle: 3,
                reason: "memory-pressure".into(),
                snapshot: ResourceSnapshot {
                    heap_capacity: capacity,
                    heap_used: used,
                },
                deltas: vec![
                    GraphDelta::AddNode {
                        label: "Ui".into(),
                        pinned: Some(PinReason::NativeMethods),
                        memory_bytes: 500_000,
                        cpu_micros: 0,
                        live_objects: 1,
                    },
                    GraphDelta::AddNode {
                        label: "Doc".into(),
                        pinned: None,
                        memory_bytes: 4_000_000,
                        cpu_micros: 0,
                        live_objects: 37,
                    },
                    GraphDelta::Interaction {
                        a: NodeId(0),
                        b: NodeId(1),
                        delta: EdgeInfo::new(10, 1_000),
                    },
                ],
                keys: Vec::new(),
            },
        },
    ]
}

fn timed(seq: u64, at_micros: u64, event: PlatformEvent) -> TimedEvent {
    TimedEvent {
        seq,
        at_micros,
        event,
        span: None,
    }
}

fn decision_prefix(capacity: u64, used: u64) -> Vec<TimedEvent> {
    vec![
        timed(
            0,
            4_000,
            PlatformEvent::TriggerFired {
                at_gc_cycle: 3,
                heap_used: used,
                heap_capacity: capacity,
                reason: "memory-pressure".into(),
            },
        ),
        timed(
            1,
            4_001,
            PlatformEvent::CandidatesEvaluated {
                candidates: 1,
                elapsed_micros: 42,
            },
        ),
    ]
}

/// "editor": the trigger fires, the document class wins, migration
/// completes.
fn editor() -> ReplayTrace {
    let mut trace = ReplayTrace::new("editor", PlatformConfig::prototype(6_000_000));
    trace.inputs = pressure_inputs(6_000_000, 5_900_000);
    trace.inputs.push(ReplayEvent::Migration {
        at_micros: 5_000,
        record: MigrationRecord::Completed {
            objects: 37,
            bytes: 4_000_000,
            duration_micros: 1_234,
        },
    });
    trace.baseline = decision_prefix(6_000_000, 5_900_000);
    trace.baseline.push(timed(
        2,
        4_002,
        PlatformEvent::WinnerChosen {
            policy_score: 1000.0,
            offload_bytes: 4_000_000,
            cut_interactions: 10,
        },
    ));
    trace.baseline.push(timed(
        3,
        5_000,
        PlatformEvent::ClassMigrated {
            objects: 37,
            bytes: 4_000_000,
            duration_micros: 1_234,
        },
    ));
    trace
}

/// "chain": the trigger fires but a 90%-free demand is infeasible —
/// the policy declines.
fn chain() -> ReplayTrace {
    let mut config = PlatformConfig::prototype(100_000_000);
    config.policy = PolicyKind::Memory {
        min_free_fraction: 0.9,
    };
    let mut trace = ReplayTrace::new("chain", config);
    trace.inputs = pressure_inputs(100_000_000, 99_000_000);
    trace.baseline = decision_prefix(100_000_000, 99_000_000);
    trace.baseline.push(timed(
        2,
        4_002,
        PlatformEvent::OffloadDeclined { candidates: 1 },
    ));
    trace
}

/// "mesh": a winner is chosen but the migration fails — the recorded
/// abort and rollback effects replay from the baseline.
fn mesh() -> ReplayTrace {
    let mut trace = ReplayTrace::new("mesh", PlatformConfig::prototype(6_000_000));
    trace.inputs = pressure_inputs(6_000_000, 5_900_000);
    trace.inputs.push(ReplayEvent::Migration {
        at_micros: 5_000,
        record: MigrationRecord::Failed,
    });
    trace.baseline = decision_prefix(6_000_000, 5_900_000);
    trace.baseline.push(timed(
        2,
        4_002,
        PlatformEvent::WinnerChosen {
            policy_score: 1000.0,
            offload_bytes: 4_000_000,
            cut_interactions: 10,
        },
    ));
    trace.baseline.push(timed(
        3,
        4_500,
        PlatformEvent::MigrationAborted {
            reason: "surrogate rejected PREPARE".into(),
        },
    ));
    trace.baseline.push(timed(
        4,
        4_600,
        PlatformEvent::MigrationRolledBack {
            objects: 37,
            bytes: 4_000_000,
        },
    ));
    trace
}

/// "gc": a completed offload whose client then goes quiet — the
/// surrogate's lease sweeper expires the exported pins, a replayed
/// release names an object that is already gone, and failover reclaims
/// the rest under a fresh epoch. Distilled from a `gc_soak` chaos run
/// (seed 1234); the three GC effects replay from the baseline.
fn gc_leases() -> ReplayTrace {
    let mut trace = ReplayTrace::new("gc", PlatformConfig::prototype(6_000_000));
    trace.inputs = pressure_inputs(6_000_000, 5_900_000);
    trace.inputs.push(ReplayEvent::Migration {
        at_micros: 5_000,
        record: MigrationRecord::Completed {
            objects: 37,
            bytes: 4_000_000,
            duration_micros: 1_234,
        },
    });
    trace.baseline = decision_prefix(6_000_000, 5_900_000);
    trace.baseline.push(timed(
        2,
        4_002,
        PlatformEvent::WinnerChosen {
            policy_score: 1000.0,
            offload_bytes: 4_000_000,
            cut_interactions: 10,
        },
    ));
    trace.baseline.push(timed(
        3,
        5_000,
        PlatformEvent::ClassMigrated {
            objects: 37,
            bytes: 4_000_000,
            duration_micros: 1_234,
        },
    ));
    trace.baseline.push(timed(
        4,
        35_000,
        PlatformEvent::LeaseExpired {
            objects: 2,
            epoch: 0,
        },
    ));
    trace.baseline.push(timed(
        5,
        35_100,
        PlatformEvent::GcReleaseUnknown { object: 37 },
    ));
    trace.baseline.push(timed(
        6,
        36_000,
        PlatformEvent::ExportsReclaimed {
            objects: 1,
            reason: "failover".into(),
        },
    ));
    trace
}

/// "fleet": pressure fires with no reachable surrogate — the shipment is
/// queued on the relay, the first replacement candidate answers `Busy`,
/// and the parked migration is finally delivered on reconnect. Distilled
/// from a `fleet_soak` run; the three relay effects replay from the
/// baseline.
fn fleet() -> ReplayTrace {
    let mut trace = ReplayTrace::new("fleet", PlatformConfig::prototype(6_000_000));
    trace.inputs = pressure_inputs(6_000_000, 5_900_000);
    trace.inputs.push(ReplayEvent::Migration {
        at_micros: 5_000,
        record: MigrationRecord::NoSurrogate,
    });
    trace.baseline = decision_prefix(6_000_000, 5_900_000);
    trace.baseline.push(timed(
        2,
        4_002,
        PlatformEvent::WinnerChosen {
            policy_score: 1000.0,
            offload_bytes: 4_000_000,
            cut_interactions: 10,
        },
    ));
    trace.baseline.push(timed(
        3,
        5_000,
        PlatformEvent::MigrationQueued {
            txn: 1,
            objects: 37,
            bytes: 4_000_000,
        },
    ));
    trace.baseline.push(timed(
        4,
        5_200,
        PlatformEvent::SessionRejected {
            surrogate: "porch-pc".into(),
            retry_after_ms: 25,
        },
    ));
    trace.baseline.push(timed(
        5,
        6_000,
        PlatformEvent::MigrationRelayed {
            txn: 1,
            objects: 37,
            bytes: 4_000_000,
            queued_for_ms: 1_000,
        },
    ));
    trace
}

fn check_golden(name: &str, expected: ReplayTrace) {
    let path = golden_path(name);
    if std::env::var_os("AIDE_BLESS").is_some() {
        save(&expected, &path).expect("bless golden");
    }
    let loaded = load(&path).unwrap_or_else(|e| {
        panic!("golden {name} failed to load: {e} (re-bless with AIDE_BLESS=1)")
    });
    assert_eq!(
        loaded, expected,
        "golden {name} drifted from its in-code construction; re-bless with AIDE_BLESS=1"
    );
    let outcome =
        replay(&loaded, None).unwrap_or_else(|e| panic!("golden {name} failed to replay: {e}"));
    assert_eq!(
        outcome.timeline, loaded.baseline,
        "golden {name}: replayed timeline not bit-identical"
    );
    assert_eq!(verify_chaos_draws(&loaded), Ok(0), "goldens carry no chaos");
}

#[test]
fn editor_golden_replays_bit_identically() {
    check_golden("editor", editor());
}

#[test]
fn chain_golden_replays_bit_identically() {
    check_golden("chain", chain());
}

#[test]
fn mesh_golden_replays_bit_identically() {
    check_golden("mesh", mesh());
}

#[test]
fn gc_golden_replays_bit_identically() {
    check_golden("gc", gc_leases());
}

#[test]
fn fleet_golden_replays_bit_identically() {
    check_golden("fleet", fleet());
}

#[test]
fn warm_inline_caches_do_not_leak_into_replay() {
    // The register VM keeps per-site inline caches and process-wide cache
    // telemetry. None of that is an input to the decision pipeline, so a
    // replay performed *after* the caches are warm must still be
    // bit-identical to the checked-in golden.
    use std::sync::Arc;

    use aide_vm::{
        ExecMode, Machine, MethodDef, MethodId, NullHooks, Op, ProgramBuilder, Reg, VmConfig,
    };

    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let data = b.add_class("Data");
    b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![
                Op::New {
                    class: data,
                    scalar_bytes: 256,
                    ref_slots: 0,
                    dst: Reg(0),
                },
                Op::Repeat {
                    n: 50,
                    body: vec![Op::Read {
                        obj: Reg(0),
                        bytes: 8,
                    }],
                },
            ],
        ),
    );
    let program = Arc::new(b.build(main, MethodId(0), 64, 0).unwrap());
    let mut machine = Machine::with_hooks(program, VmConfig::client(1 << 20), Arc::new(NullHooks));
    machine.set_exec_mode(ExecMode::Flat);
    machine.run_entry().expect("warm-up run succeeds");
    let (hits, misses) = machine.vm().lock().ic_stats();
    assert!(
        hits > 0 && misses > 0,
        "warm-up should exercise the inline caches"
    );

    check_golden("editor", editor());
}
