//! End-to-end record/replay: a real platform run's decisions, captured
//! through the nondeterminism seams, replay bit-identically — and a
//! perturbed trace fails with a located divergence naming expected vs.
//! actual.

use aide_apps::{javanote, Scale};
use aide_core::{Platform, PlatformConfig};
use aide_replay::{
    decode, record_platform_run, replay, to_binary, ReplayError, ReplayEvent, ReplayTrace,
};
use aide_telemetry::{names, render_timeline, FlightRecorder, PlatformEvent};

fn recorded_javanote() -> ReplayTrace {
    let cfg = PlatformConfig::prototype(3 << 20);
    let platform = Platform::new(javanote(Scale(0.5)).program, cfg);
    let (report, trace) = record_platform_run(platform, "javanote");
    report.outcome.as_ref().expect("javanote completes");
    assert!(report.offloaded(), "the recorded run must offload");
    trace
}

#[test]
fn recorded_run_replays_bit_identically() {
    let trace = recorded_javanote();
    assert!(trace.trigger_count() >= 1, "at least one decision on tape");
    assert!(!trace.baseline.is_empty(), "baseline timeline recorded");

    let outcome = replay(&trace, None).expect("replay without divergence");
    assert_eq!(outcome.timeline, trace.baseline, "timelines bit-identical");
    assert_eq!(
        render_timeline(&outcome.timeline),
        render_timeline(&trace.baseline),
        "rendered timelines identical"
    );
    assert!(outcome.events_consumed >= trace.inputs.len() as u64);
}

#[test]
fn replay_survives_a_binary_round_trip() {
    let trace = recorded_javanote();
    let decoded = decode(&to_binary(&trace)).expect("binary round-trip");
    assert_eq!(decoded, trace);
    let outcome = replay(&decoded, None).expect("replay the decoded trace");
    assert_eq!(outcome.timeline, trace.baseline);
}

#[test]
fn perturbed_input_diverges_with_a_located_error() {
    let mut trace = recorded_javanote();

    // Tamper with the first recorded trigger: claim the heap was one
    // byte fuller than it was. The replayed TriggerFired must disagree
    // with the baseline.
    let sample = trace
        .inputs
        .iter_mut()
        .find_map(|e| match e {
            ReplayEvent::Trigger { sample, .. } => Some(sample),
            _ => None,
        })
        .expect("trace has a trigger");
    sample.snapshot.heap_used += 1;

    let before = aide_telemetry::global()
        .counter(names::REPLAY_DIVERGENCES)
        .get();
    let recorder = FlightRecorder::new(64);
    let err = replay(&trace, Some(&recorder)).expect_err("tampered trace must diverge");
    let ReplayError::Diverged {
        index,
        expected,
        actual,
    } = &err
    else {
        panic!("expected a divergence, got {err:?}");
    };
    assert!(expected.contains("trigger fired"), "expected: {expected}");
    assert!(actual.contains("trigger fired"), "actual: {actual}");
    assert_ne!(expected, actual);
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("replay diverged at timeline event {index}")),
        "located message: {msg}"
    );
    assert!(msg.contains("expected") && msg.contains("got"), "{msg}");

    // Telemetry satellite: the counter moved and the flight recorder
    // holds a ReplayDiverged event.
    assert!(
        aide_telemetry::global()
            .counter(names::REPLAY_DIVERGENCES)
            .get()
            > before
    );
    assert!(recorder
        .events()
        .iter()
        .any(|t| matches!(t.event, PlatformEvent::ReplayDiverged { .. })));
}

#[test]
fn perturbed_baseline_diverges() {
    let mut trace = recorded_javanote();
    let winner = trace
        .baseline
        .iter_mut()
        .find(|t| matches!(t.event, PlatformEvent::WinnerChosen { .. }))
        .expect("baseline has a winner");
    if let PlatformEvent::WinnerChosen { offload_bytes, .. } = &mut winner.event {
        *offload_bytes += 1;
    }
    let err = replay(&trace, None).expect_err("edited baseline must diverge");
    assert!(matches!(err, ReplayError::Diverged { .. }));
    assert!(err.to_string().contains("winner chosen"), "{err}");
}

#[test]
fn missing_gc_stream_fails_the_trigger_gate() {
    let mut trace = recorded_javanote();
    // Drop every recorded GC report: the trigger state machine can never
    // arm, so the first recorded trigger must be rejected.
    trace
        .inputs
        .retain(|e| !matches!(e, ReplayEvent::Gc { .. }));
    let err = replay(&trace, None).expect_err("gc-less trace must diverge");
    assert!(
        err.to_string().contains("trigger gate closed"),
        "unexpected error: {err}"
    );
}
