//! Adapter between aide-emu's VM-level [`Trace`] and the decision-level
//! replay format — one trace artifact for the whole repo.
//!
//! The two formats sit at different layers: an emulator [`Trace`]
//! records *program behavior* (interactions, allocations, work, GC
//! boundaries), while a [`ReplayTrace`] records *decision-pipeline
//! inputs*. They meet at two points — GC reports and the virtual clock —
//! so a VM trace converts losslessly into the subset of replay inputs it
//! can speak for, and the full VM trace embeds verbatim as the replay
//! trace's optional `vm` section (nothing of the original is dropped).

use aide_core::PlatformConfig;
use aide_emu::{Trace, TraceEvent};

use crate::event::{ReplayEvent, ReplayTrace};

/// Converts a VM-level event stream into decision-level replay inputs:
/// `Gc` events map directly, and accumulated `Work`/`Native` CPU time
/// becomes the virtual-clock ticks the emulator would report. Events
/// with no decision-level counterpart (interactions, allocations,
/// static accesses) contribute only their position on the virtual
/// clock.
pub fn vm_trace_inputs(vm: &Trace) -> Vec<ReplayEvent> {
    let mut inputs = Vec::new();
    let mut virtual_micros = 0.0f64;
    for event in &vm.events {
        match event {
            TraceEvent::Work { micros, .. } => {
                virtual_micros += micros.max(0.0);
                inputs.push(ReplayEvent::VirtualTick {
                    at_micros: virtual_micros as u64,
                });
            }
            TraceEvent::Native { work_micros, .. } => {
                virtual_micros += f64::from(*work_micros);
                inputs.push(ReplayEvent::VirtualTick {
                    at_micros: virtual_micros as u64,
                });
            }
            TraceEvent::Gc { report } => {
                inputs.push(ReplayEvent::Gc {
                    at_micros: virtual_micros as u64,
                    report: *report,
                });
            }
            TraceEvent::Interaction { .. }
            | TraceEvent::Alloc { .. }
            | TraceEvent::Free { .. }
            | TraceEvent::StaticAccess { .. } => {}
        }
    }
    inputs
}

/// Embeds `vm` as the trace's VM section (replacing any previous one)
/// so both layers travel in one artifact.
pub fn embed_vm_trace(trace: &mut ReplayTrace, vm: Trace) {
    trace.vm = Some(vm);
}

/// Builds a decision-level trace from a VM-level one: converted inputs
/// (GC stream + virtual clock), the full original embedded as the `vm`
/// section, and an empty baseline — callers record or bless one before
/// using the result as a replay oracle.
pub fn from_vm_trace(vm: Trace, config: PlatformConfig) -> ReplayTrace {
    let mut trace = ReplayTrace::new(vm.app.clone(), config);
    trace.inputs = vm_trace_inputs(&vm);
    trace.vm = Some(vm);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_vm::{ClassId, GcReport};

    fn vm_trace() -> Trace {
        let mut t = Trace::new("adapter-test", 1 << 20, Vec::new());
        t.events.push(TraceEvent::Work {
            class: ClassId(0),
            micros: 1500.0,
        });
        t.events.push(TraceEvent::Alloc {
            class: ClassId(0),
            object: aide_vm::ObjectId(1),
            bytes: 64,
        });
        t.events.push(TraceEvent::Gc { report: report() });
        t
    }

    fn report() -> GcReport {
        GcReport {
            cycle: 1,
            capacity: 1 << 20,
            used_after: 512,
            free_after: (1 << 20) - 512,
            freed_objects: 0,
            freed_bytes: 0,
            duration_micros: 0.0,
        }
    }

    #[test]
    fn vm_events_convert_to_clock_and_gc_inputs() {
        let inputs = vm_trace_inputs(&vm_trace());
        assert_eq!(
            inputs,
            vec![
                ReplayEvent::VirtualTick { at_micros: 1500 },
                ReplayEvent::Gc {
                    at_micros: 1500,
                    report: report(),
                },
            ]
        );
    }

    #[test]
    fn embedding_keeps_the_original_verbatim() {
        let vm = vm_trace();
        let trace = from_vm_trace(vm.clone(), PlatformConfig::prototype(1 << 20));
        assert_eq!(trace.header.app, "adapter-test");
        assert_eq!(trace.inputs.len(), 2);
        assert_eq!(trace.vm.as_ref(), Some(&vm));
        assert!(trace.baseline.is_empty());
    }
}
