//! Replay: re-run a recorded trace through the real decision pipeline
//! and verify it reproduces the recorded timeline bit-for-bit.
//!
//! The driver rebuilds the pipeline exactly as the platform does — a
//! real [`Monitor`] (trigger state machine), a real
//! [`IncrementalPartitioner`] under the recorded tuning, the recorded
//! policy — then feeds it the trace's input stream. Derived values
//! (trigger attribution, candidate counts, churn weights, policy
//! scores, offload sizes) are **recomputed** and compared against the
//! baseline; genuinely nondeterministic fields (wall-clock timestamps,
//! elapsed/duration microseconds, abort reason strings) are copied from
//! the baseline once the surrounding event matches, so a divergence-free
//! replay yields a timeline that is bit-identical to the recording.
//!
//! Divergence handling is strict, in the `wasm-rr` style: the first
//! produced event that does not match the baseline at the cursor stops
//! the replay with a located [`ReplayError::Diverged`] naming expected
//! vs. actual, bumps the `aide_replay_divergences_total` counter, and
//! (when a flight recorder is attached) records a
//! [`PlatformEvent::ReplayDiverged`] event.

use std::collections::HashMap;
use std::sync::Arc;

use aide_core::{IncrementalPartitioner, PartitionerConfig};
use aide_core::{MigrationRecord, Monitor, TriggerSample};
use aide_graph::PartitionPolicy;
use aide_telemetry::{names, FlightRecorder, PlatformEvent, TimedEvent};
use aide_vm::{MethodDef, MethodId, ProgramBuilder, RuntimeHooks};

use crate::event::{ReplayEvent, ReplayTrace};

/// Why a replay failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The replayed pipeline produced an event that differs from the
    /// baseline timeline.
    Diverged {
        /// Index into the baseline timeline where the mismatch occurred.
        index: usize,
        /// Description of the baseline's expected event (or gate state).
        expected: String,
        /// Description of what the replay actually produced.
        actual: String,
    },
    /// A recorded chaos draw does not match the regenerated xorshift64
    /// stream — the trace's RNG section is internally inconsistent.
    ChaosMismatch {
        /// The (zero-fixed) stream seed.
        stream: u64,
        /// Position of the offending draw within the stream.
        index: u64,
        /// The value xorshift64 produces at that position.
        expected: u64,
        /// The value the trace recorded.
        actual: u64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Diverged {
                index,
                expected,
                actual,
            } => write!(
                f,
                "replay diverged at timeline event {index}: expected {expected}, got {actual}"
            ),
            ReplayError::ChaosMismatch {
                stream,
                index,
                expected,
                actual,
            } => write!(
                f,
                "chaos stream {stream:#x} draw {index}: expected {expected:#x}, recorded {actual:#x}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// The result of a successful (divergence-free) replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// The reproduced decision timeline. For a strict replay this is
    /// bit-identical to the trace's baseline.
    pub timeline: Vec<TimedEvent>,
    /// Recorded inputs consumed.
    pub events_consumed: u64,
}

/// Baseline events the decision pipeline does not produce itself —
/// asynchronous effects recorded by the offload/failover layers. The
/// strict replayer copies them from the baseline wherever they appear.
fn is_effect(event: &PlatformEvent) -> bool {
    matches!(
        event,
        PlatformEvent::LinkDied { .. }
            | PlatformEvent::FailoverCompleted { .. }
            | PlatformEvent::MigrationAborted { .. }
            | PlatformEvent::MigrationRolledBack { .. }
            | PlatformEvent::LeaseExpired { .. }
            | PlatformEvent::ExportsReclaimed { .. }
            | PlatformEvent::GcReleaseUnknown { .. }
            | PlatformEvent::MigrationQueued { .. }
            | PlatformEvent::MigrationRelayed { .. }
            | PlatformEvent::RelayExpired { .. }
            | PlatformEvent::RelayRecalled { .. }
            | PlatformEvent::SessionRejected { .. }
    )
}

/// Compares the *derived* fields of two events — the fields the
/// pipeline recomputes on replay. Nondeterministic fields (elapsed and
/// duration microseconds) are ignored; they are copied from the
/// baseline after a match.
fn events_match(expected: &PlatformEvent, actual: &PlatformEvent) -> bool {
    use PlatformEvent::*;
    match (expected, actual) {
        (
            TriggerFired {
                at_gc_cycle: c1,
                heap_used: u1,
                heap_capacity: h1,
                reason: r1,
            },
            TriggerFired {
                at_gc_cycle: c2,
                heap_used: u2,
                heap_capacity: h2,
                reason: r2,
            },
        ) => c1 == c2 && u1 == u2 && h1 == h2 && r1 == r2,
        (
            CandidatesEvaluated { candidates: c1, .. },
            CandidatesEvaluated { candidates: c2, .. },
        ) => c1 == c2,
        (
            WinnerChosen {
                policy_score: s1,
                offload_bytes: b1,
                cut_interactions: i1,
            },
            WinnerChosen {
                policy_score: s2,
                offload_bytes: b2,
                cut_interactions: i2,
            },
        ) => s1.to_bits() == s2.to_bits() && b1 == b2 && i1 == i2,
        (OffloadDeclined { candidates: c1 }, OffloadDeclined { candidates: c2 }) => c1 == c2,
        (
            EpochSkipped {
                churn_weight: w1,
                threshold: t1,
            },
            EpochSkipped {
                churn_weight: w2,
                threshold: t2,
            },
        ) => w1 == w2 && t1 == t2,
        (
            ClassMigrated {
                objects: o1,
                bytes: b1,
                ..
            },
            ClassMigrated {
                objects: o2,
                bytes: b2,
                ..
            },
        ) => o1 == o2 && b1 == b2,
        _ => false,
    }
}

/// Emits pipeline events against an optional baseline: strict mode
/// verifies and copies; bless mode synthesizes a fresh timeline.
struct Emitter<'a> {
    baseline: Option<&'a [TimedEvent]>,
    cursor: usize,
    out: Vec<TimedEvent>,
    recorder: Option<&'a FlightRecorder>,
}

impl<'a> Emitter<'a> {
    /// Copies effect events sitting at the cursor (strict mode only).
    fn copy_effects(&mut self) {
        if let Some(baseline) = self.baseline {
            while let Some(next) = baseline.get(self.cursor) {
                if is_effect(&next.event) {
                    self.out.push(next.clone());
                    self.cursor += 1;
                } else {
                    break;
                }
            }
        }
    }

    fn diverge(&mut self, expected: String, actual: String) -> ReplayError {
        aide_telemetry::global()
            .counter(names::REPLAY_DIVERGENCES)
            .inc();
        let err = ReplayError::Diverged {
            index: self.cursor,
            expected,
            actual,
        };
        if let Some(recorder) = self.recorder {
            recorder.record(PlatformEvent::ReplayDiverged {
                at_index: self.cursor as u64,
                expected: match &err {
                    ReplayError::Diverged { expected, .. } => expected.clone(),
                    _ => unreachable!(),
                },
                actual: match &err {
                    ReplayError::Diverged { actual, .. } => actual.clone(),
                    _ => unreachable!(),
                },
            });
        }
        err
    }

    /// Emits `actual` at `at_micros`: in strict mode, verified against
    /// (and replaced by) the baseline event at the cursor; in bless
    /// mode, appended with a synthesized sequence number.
    fn emit(&mut self, at_micros: u64, actual: PlatformEvent) -> Result<(), ReplayError> {
        match self.baseline {
            Some(baseline) => {
                self.copy_effects();
                let Some(expected) = baseline.get(self.cursor) else {
                    return Err(self.diverge(
                        "end of baseline (no further events recorded)".into(),
                        actual.describe(),
                    ));
                };
                if !events_match(&expected.event, &actual) {
                    let expected = expected.event.describe();
                    return Err(self.diverge(expected, actual.describe()));
                }
                self.out.push(expected.clone());
                self.cursor += 1;
                Ok(())
            }
            None => {
                self.out.push(TimedEvent {
                    seq: self.out.len() as u64,
                    at_micros,
                    event: actual,
                    span: None,
                });
                Ok(())
            }
        }
    }

    /// Verifies the baseline is exhausted (strict mode): trailing
    /// effects are copied, anything else is a divergence.
    fn finish(&mut self) -> Result<(), ReplayError> {
        self.copy_effects();
        if let Some(baseline) = self.baseline {
            if let Some(expected) = baseline.get(self.cursor) {
                let expected = expected.event.describe();
                return Err(self.diverge(
                    expected,
                    "end of replay (pipeline produced no further events)".into(),
                ));
            }
        }
        Ok(())
    }
}

/// A minimal program for the replay monitor: the trigger state machine
/// and delta plumbing never consult program structure on the replayed
/// paths, but [`Monitor::new`] wants one.
fn skeleton_program() -> Arc<aide_vm::Program> {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    b.add_method(main, MethodDef::new("main", vec![]));
    Arc::new(b.build(main, MethodId(0), 64, 4).expect("trivial program"))
}

/// Re-runs `trace` through the decision pipeline.
///
/// `baseline = true` verifies strictly against the trace's recorded
/// timeline; `baseline = false` ("bless" mode) synthesizes a fresh
/// timeline (used to author golden traces and to run what-if sweeps
/// under a different policy).
fn run(
    trace: &ReplayTrace,
    policy: &dyn PartitionPolicy,
    partitioner_config: PartitionerConfig,
    strict: bool,
    recorder: Option<&FlightRecorder>,
) -> Result<ReplayOutcome, ReplayError> {
    let monitor = Monitor::new(
        skeleton_program(),
        trace.header.config.trigger,
        Default::default(),
    );
    let mut partitioner = IncrementalPartitioner::new(partitioner_config);
    let mut emitter = Emitter {
        baseline: if strict {
            Some(trace.baseline.as_slice())
        } else {
            None
        },
        cursor: 0,
        out: Vec::new(),
        recorder,
    };
    let consumed_counter = aide_telemetry::global().counter(names::REPLAY_EVENTS_CONSUMED);
    let mut consumed: u64 = 0;

    for input in &trace.inputs {
        consumed += 1;
        consumed_counter.inc();
        match input {
            ReplayEvent::Gc { report, .. } => monitor.on_gc(report),
            ReplayEvent::Trigger { at_micros, sample } => {
                let TriggerSample {
                    at_gc_cycle,
                    reason,
                    snapshot,
                    deltas,
                    keys: _,
                } = sample;
                if strict && reason == "memory-pressure" && !monitor.memory_triggered() {
                    return Err(emitter.diverge(
                        format!("an armed memory trigger before gc #{at_gc_cycle}"),
                        "trigger gate closed (GC stream never armed it)".into(),
                    ));
                }
                emitter.emit(
                    *at_micros,
                    PlatformEvent::TriggerFired {
                        at_gc_cycle: *at_gc_cycle,
                        heap_used: snapshot.heap_used,
                        heap_capacity: snapshot.heap_capacity,
                        reason: reason.clone(),
                    },
                )?;
                partitioner.apply_deltas(deltas);
                let decision = partitioner.epoch(*snapshot, policy);
                if decision.skipped {
                    emitter.emit(
                        *at_micros,
                        PlatformEvent::EpochSkipped {
                            churn_weight: decision.churn.weight,
                            threshold: partitioner.config().churn_threshold,
                        },
                    )?;
                    monitor.reset_memory_trigger();
                    continue;
                }
                emitter.emit(
                    *at_micros,
                    PlatformEvent::CandidatesEvaluated {
                        candidates: decision.candidates_evaluated,
                        elapsed_micros: u64::try_from(decision.elapsed.as_micros())
                            .unwrap_or(u64::MAX),
                    },
                )?;
                match decision.selection {
                    None => {
                        emitter.emit(
                            *at_micros,
                            PlatformEvent::OffloadDeclined {
                                candidates: decision.candidates_evaluated,
                            },
                        )?;
                        monitor.reset_memory_trigger();
                    }
                    Some(selection) => {
                        emitter.emit(
                            *at_micros,
                            PlatformEvent::WinnerChosen {
                                policy_score: selection.score,
                                offload_bytes: selection.stats.offloaded_memory_bytes,
                                cut_interactions: selection.stats.cut.interactions,
                            },
                        )?;
                        // The matching Migration input (next in the
                        // stream) resolves the attempt; the trigger is
                        // reset there.
                    }
                }
            }
            ReplayEvent::Migration { at_micros, record } => {
                match record {
                    MigrationRecord::Completed {
                        objects,
                        bytes,
                        duration_micros,
                    } => {
                        emitter.emit(
                            *at_micros,
                            PlatformEvent::ClassMigrated {
                                objects: *objects,
                                bytes: *bytes,
                                duration_micros: *duration_micros,
                            },
                        )?;
                    }
                    MigrationRecord::Failed => {
                        // The offload layer recorded the abort/rollback
                        // effects; strict mode copies them from the
                        // baseline, bless mode synthesizes the abort.
                        if emitter.baseline.is_none() {
                            emitter.out.push(TimedEvent {
                                seq: emitter.out.len() as u64,
                                at_micros: *at_micros,
                                event: PlatformEvent::MigrationAborted {
                                    reason: "recorded migration failure".into(),
                                },
                                span: None,
                            });
                        } else {
                            emitter.copy_effects();
                        }
                    }
                    MigrationRecord::NoSurrogate => {
                        // With a relay attached the live pipeline queues
                        // the shipment and records queued/relayed/expired
                        // effects; strict mode copies whatever the run
                        // actually did (nothing, for relay-less runs).
                        if emitter.baseline.is_some() {
                            emitter.copy_effects();
                        }
                    }
                }
                monitor.reset_memory_trigger();
            }
            ReplayEvent::LinkDown {
                at_micros,
                surrogate,
            } => {
                if emitter.baseline.is_none() {
                    emitter.out.push(TimedEvent {
                        seq: emitter.out.len() as u64,
                        at_micros: *at_micros,
                        event: PlatformEvent::LinkDied {
                            surrogate: surrogate.clone(),
                        },
                        span: None,
                    });
                } else {
                    emitter.copy_effects();
                }
            }
            ReplayEvent::LinkRecovered { .. }
            | ReplayEvent::RpcCompletion { .. }
            | ReplayEvent::ChaosDraw { .. }
            | ReplayEvent::ProbeRtt { .. }
            | ReplayEvent::VirtualTick { .. } => {
                // No direct pipeline action: recovery effects are copied
                // from the baseline, transport timings are informational,
                // chaos draws are verified by `verify_chaos_draws`.
            }
        }
    }
    emitter.finish()?;
    Ok(ReplayOutcome {
        timeline: emitter.out,
        events_consumed: consumed,
    })
}

/// Strictly replays `trace` against its recorded baseline timeline.
///
/// On success the outcome's timeline is bit-identical to
/// `trace.baseline`. Pass a [`FlightRecorder`] to have divergences
/// recorded as [`PlatformEvent::ReplayDiverged`] events.
///
/// # Errors
///
/// [`ReplayError::Diverged`] at the first mismatch, naming the expected
/// and actual events.
pub fn replay(
    trace: &ReplayTrace,
    recorder: Option<&FlightRecorder>,
) -> Result<ReplayOutcome, ReplayError> {
    let policy = trace.header.config.policy.build(
        trace.header.config.comm,
        trace.header.config.surrogate_speed,
    );
    run(
        trace,
        policy.as_ref(),
        trace.header.config.partitioner,
        true,
        recorder,
    )
}

/// Re-runs `trace`'s inputs without a baseline, synthesizing the
/// timeline the pipeline produces — used to author golden baselines and
/// by [`crate::sweep`] to evaluate what-if variants.
pub fn bless(trace: &ReplayTrace) -> Result<Vec<TimedEvent>, ReplayError> {
    let policy = trace.header.config.policy.build(
        trace.header.config.comm,
        trace.header.config.surrogate_speed,
    );
    run(
        trace,
        policy.as_ref(),
        trace.header.config.partitioner,
        false,
        None,
    )
    .map(|o| o.timeline)
}

/// Like [`bless`], but under an overridden policy and partitioner
/// tuning — the sweep entry point.
pub fn replay_with(
    trace: &ReplayTrace,
    policy: &dyn PartitionPolicy,
    partitioner_config: PartitionerConfig,
) -> Result<Vec<TimedEvent>, ReplayError> {
    run(trace, policy, partitioner_config, false, None).map(|o| o.timeline)
}

/// Verifies the trace's recorded chaos draws against freshly
/// regenerated xorshift64 streams: per stream, draw `index` must equal
/// the generator's `index`-th output. Returns the number of draws
/// verified.
///
/// This is an independent bit-determinism check on the recorded fault
/// schedule — a trace whose chaos section was hand-edited (or recorded
/// by a different generator) fails here even if the decision timeline
/// still replays.
///
/// # Errors
///
/// [`ReplayError::ChaosMismatch`] at the first inconsistent draw.
pub fn verify_chaos_draws(trace: &ReplayTrace) -> Result<u64, ReplayError> {
    struct Stream {
        state: u64,
        next_index: u64,
    }
    let mut streams: HashMap<u64, Stream> = HashMap::new();
    let mut verified = 0;
    for input in &trace.inputs {
        let ReplayEvent::ChaosDraw {
            stream,
            index,
            value,
        } = input
        else {
            continue;
        };
        let entry = streams.entry(*stream).or_insert(Stream {
            state: *stream | 1,
            next_index: 0,
        });
        if *index != entry.next_index {
            return Err(ReplayError::ChaosMismatch {
                stream: *stream,
                index: *index,
                expected: entry.next_index,
                actual: *index,
            });
        }
        let mut x = entry.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        entry.state = x;
        entry.next_index += 1;
        if x != *value {
            return Err(ReplayError::ChaosMismatch {
                stream: *stream,
                index: *index,
                expected: x,
                actual: *value,
            });
        }
        verified += 1;
    }
    Ok(verified)
}
