//! The trace vocabulary: headers, recorded inputs, and the trace
//! container.
//!
//! A trace has three sections:
//!
//! 1. a [`TraceHeader`] pinning the format version and the full
//!    [`PlatformConfig`] the run used (policy, trigger, partitioner
//!    tuning, chaos schedule — everything a replay needs to rebuild the
//!    pipeline);
//! 2. the ordered stream of recorded [`ReplayEvent`] inputs — every
//!    nondeterministic value the decision pipeline consumed;
//! 3. the `baseline` decision timeline the recorded run produced (the
//!    flight recorder's [`TimedEvent`]s), which replay treats as the
//!    oracle: a replayed run must reproduce it bit-for-bit.
//!
//! An optional fourth section embeds a VM-level [`aide_emu::Trace`]
//! (see [`crate::adapter`]) so the repo has one trace artifact, not two.

use aide_core::{MigrationRecord, PlatformConfig, TriggerSample};
use aide_telemetry::TimedEvent;
use aide_vm::GcReport;
use serde::{Deserialize, Serialize};

/// Current trace format version. Bump on any breaking change to the
/// header, event vocabulary, or binary framing; loaders reject other
/// versions with [`crate::TraceError::UnsupportedVersion`].
pub const TRACE_VERSION: u32 = 1;

/// Metadata pinning a trace to the run that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Format version ([`TRACE_VERSION`] at write time).
    pub version: u32,
    /// Application name ("javanote", "chaos-soak", ...).
    pub app: String,
    /// The full platform configuration of the recorded run.
    pub config: PlatformConfig,
}

impl TraceHeader {
    /// A version-stamped header for `app` recorded under `config`.
    pub fn new(app: impl Into<String>, config: PlatformConfig) -> Self {
        TraceHeader {
            version: TRACE_VERSION,
            app: app.into(),
            config,
        }
    }
}

/// One recorded nondeterministic input, in pipeline order.
///
/// `at_micros` timestamps are microseconds since the recording began —
/// informational for humans, copied (never recomputed) by replays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReplayEvent {
    /// A garbage-collection report reached the trigger state machine.
    Gc {
        /// Microseconds since recording began.
        at_micros: u64,
        /// The report, verbatim.
        report: GcReport,
    },
    /// A trigger evaluation began: the complete input to one partitioner
    /// epoch (drained deltas, heap snapshot, trigger attribution).
    Trigger {
        /// Microseconds since recording began.
        at_micros: u64,
        /// The full pipeline input for this epoch.
        sample: TriggerSample,
    },
    /// The migration attempt that followed a winning partition.
    Migration {
        /// Microseconds since recording began.
        at_micros: u64,
        /// How the attempt ended.
        record: MigrationRecord,
    },
    /// The failover layer declared a surrogate link dead.
    LinkDown {
        /// Microseconds since recording began.
        at_micros: u64,
        /// Name of the dead surrogate.
        surrogate: String,
    },
    /// Failover onto a standby surrogate completed.
    LinkRecovered {
        /// Microseconds since recording began.
        at_micros: u64,
        /// Name of the failed surrogate that was recovered from.
        surrogate: String,
    },
    /// An RPC call completed (timing and retry outcome).
    RpcCompletion {
        /// Microseconds since recording began.
        at_micros: u64,
        /// RPC sequence number.
        seq: u64,
        /// Send attempts the call needed (1 = no retries).
        attempts: u32,
        /// Wall-clock call latency in microseconds.
        elapsed_micros: u64,
        /// Whether the call returned a reply.
        ok: bool,
    },
    /// One xorshift64 draw from a chaos fault stream.
    ChaosDraw {
        /// The (zero-fixed) seed identifying the stream.
        stream: u64,
        /// Position of this draw within the stream, from 0.
        index: u64,
        /// The raw 64-bit draw.
        value: u64,
    },
    /// A registry liveness probe measured a round-trip time.
    ProbeRtt {
        /// Microseconds since recording began.
        at_micros: u64,
        /// The probed surrogate.
        surrogate: String,
        /// Measured round-trip time in microseconds.
        rtt_micros: u64,
    },
    /// The emulator's virtual clock was read.
    VirtualTick {
        /// The virtual timestamp, in microseconds.
        at_micros: u64,
    },
}

/// A complete recorded run: header, input stream, baseline timeline,
/// and an optional embedded VM-level trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayTrace {
    /// Version and run metadata.
    pub header: TraceHeader,
    /// Every nondeterministic input, in the order the pipeline consumed
    /// it.
    pub inputs: Vec<ReplayEvent>,
    /// The flight-recorder timeline the recorded run produced — the
    /// oracle replays must reproduce bit-for-bit.
    pub baseline: Vec<TimedEvent>,
    /// Optional embedded VM-level interaction trace (see
    /// [`crate::adapter`]).
    pub vm: Option<aide_emu::Trace>,
}

impl ReplayTrace {
    /// An empty trace for `app` under `config`.
    pub fn new(app: impl Into<String>, config: PlatformConfig) -> Self {
        ReplayTrace {
            header: TraceHeader::new(app, config),
            inputs: Vec::new(),
            baseline: Vec::new(),
            vm: None,
        }
    }

    /// Number of decision-pipeline trigger evaluations in the trace.
    pub fn trigger_count(&self) -> usize {
        self.inputs
            .iter()
            .filter(|e| matches!(e, ReplayEvent::Trigger { .. }))
            .count()
    }
}
