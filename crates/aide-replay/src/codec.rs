//! Trace serialization: JSON-lines for debuggability, a length-prefixed
//! binary container for density, and auto-detection on load.
//!
//! **JSON-lines** (`.jsonl`): one tagged record per line — `Header`
//! first, then `Input`/`Baseline`/`Vm` records in section order. Every
//! line is independently parseable, so traces diff and grep well.
//!
//! **Binary** (`.trace`): the 4-byte magic `AIDR`, a format-version
//! byte, then a sequence of frames `tag:u8 | len:u32 LE | payload |
//! crc32:u32 LE` where the payload is the record's serialized bytes and
//! the CRC (the RPC wire codec's table) covers the payload. Frames are
//! strictly length-checked: corrupt or truncated bytes always produce a
//! [`TraceError`], never a panic (mirroring the RPC decoder's
//! contract).
//!
//! [`decode`] auto-detects the format by the leading magic bytes;
//! [`save`]/[`load`] add file I/O, choosing JSON-lines for `.json` /
//! `.jsonl` extensions and binary otherwise.

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::event::{ReplayTrace, TraceHeader, TRACE_VERSION};

/// Leading magic of the binary container ("AIDE Replay").
pub const BINARY_MAGIC: &[u8; 4] = b"AIDR";

const TAG_HEADER: u8 = 1;
const TAG_INPUT: u8 = 2;
const TAG_BASELINE: u8 = 3;
const TAG_VM: u8 = 4;

/// Largest frame a loader will accept (a corrupted length prefix must
/// not trigger a giant allocation).
const MAX_FRAME_LEN: usize = 256 << 20;

/// Why a trace could not be encoded, decoded, or loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Filesystem error while reading or writing a trace.
    Io(String),
    /// A record failed to serialize or deserialize.
    Parse(String),
    /// The byte stream violates the container framing (bad magic, bad
    /// tag, checksum mismatch, section out of order).
    Corrupt(String),
    /// The byte stream ended mid-frame.
    Truncated,
    /// The trace was written by an incompatible format version.
    UnsupportedVersion(u32),
    /// The stream contained no header record.
    Empty,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse(e) => write!(f, "trace parse error: {e}"),
            TraceError::Corrupt(e) => write!(f, "corrupt trace: {e}"),
            TraceError::Truncated => write!(f, "truncated trace"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (expected {TRACE_VERSION})"
                )
            }
            TraceError::Empty => write!(f, "empty trace: no header record"),
        }
    }
}

impl std::error::Error for TraceError {}

/// One tagged record in a serialized trace stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum TraceLine {
    Header(TraceHeader),
    Input(crate::event::ReplayEvent),
    Baseline(aide_telemetry::TimedEvent),
    Vm(aide_emu::Trace),
}

fn to_lines(trace: &ReplayTrace) -> Vec<TraceLine> {
    let mut lines = Vec::with_capacity(2 + trace.inputs.len() + trace.baseline.len());
    lines.push(TraceLine::Header(trace.header.clone()));
    for input in &trace.inputs {
        lines.push(TraceLine::Input(input.clone()));
    }
    for event in &trace.baseline {
        lines.push(TraceLine::Baseline(event.clone()));
    }
    if let Some(vm) = &trace.vm {
        lines.push(TraceLine::Vm(vm.clone()));
    }
    lines
}

fn from_lines<I>(lines: I) -> Result<ReplayTrace, TraceError>
where
    I: IntoIterator<Item = Result<TraceLine, TraceError>>,
{
    let mut header: Option<TraceHeader> = None;
    let mut inputs = Vec::new();
    let mut baseline = Vec::new();
    let mut vm = None;
    for line in lines {
        match line? {
            TraceLine::Header(h) => {
                if header.is_some() {
                    return Err(TraceError::Corrupt("duplicate header record".into()));
                }
                if h.version != TRACE_VERSION {
                    return Err(TraceError::UnsupportedVersion(h.version));
                }
                header = Some(h);
            }
            record => {
                if header.is_none() {
                    return Err(TraceError::Corrupt(
                        "record precedes the header record".into(),
                    ));
                }
                match record {
                    TraceLine::Input(e) => inputs.push(e),
                    TraceLine::Baseline(e) => baseline.push(e),
                    TraceLine::Vm(t) => vm = Some(t),
                    TraceLine::Header(_) => unreachable!("handled above"),
                }
            }
        }
    }
    let header = header.ok_or(TraceError::Empty)?;
    Ok(ReplayTrace {
        header,
        inputs,
        baseline,
        vm,
    })
}

/// Encodes `trace` as JSON-lines (one tagged record per line).
pub fn to_json_lines(trace: &ReplayTrace) -> String {
    let mut out = String::new();
    for line in to_lines(trace) {
        out.push_str(&serde_json::to_string(&line).expect("trace records serialize"));
        out.push('\n');
    }
    out
}

/// Decodes a JSON-lines trace.
///
/// # Errors
///
/// [`TraceError::Parse`] on any malformed line, [`TraceError::Empty`] /
/// [`TraceError::Corrupt`] on section violations,
/// [`TraceError::UnsupportedVersion`] on a version mismatch.
pub fn from_json_lines(text: &str) -> Result<ReplayTrace, TraceError> {
    from_lines(
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| serde_json::from_str(l).map_err(|e| TraceError::Parse(e.to_string()))),
    )
}

fn push_frame(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&aide_rpc::crc32(payload).to_le_bytes());
}

/// Encodes `trace` in the binary container format.
pub fn to_binary(trace: &ReplayTrace) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(BINARY_MAGIC);
    out.push(TRACE_VERSION as u8);
    for line in to_lines(trace) {
        let (tag, payload) = match &line {
            TraceLine::Header(h) => (TAG_HEADER, serde_json::to_vec(h)),
            TraceLine::Input(e) => (TAG_INPUT, serde_json::to_vec(e)),
            TraceLine::Baseline(e) => (TAG_BASELINE, serde_json::to_vec(e)),
            TraceLine::Vm(t) => (TAG_VM, serde_json::to_vec(t)),
        };
        push_frame(&mut out, tag, &payload.expect("trace records serialize"));
    }
    out
}

/// Takes `n` bytes off the front of `buf`, or reports truncation.
fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], TraceError> {
    if buf.len() < n {
        return Err(TraceError::Truncated);
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

/// Decodes a binary-container trace.
///
/// # Errors
///
/// [`TraceError::Corrupt`] on bad magic, an unknown tag, or a checksum
/// mismatch; [`TraceError::Truncated`] if the stream ends mid-frame;
/// the same parse/version/section errors as [`from_json_lines`].
/// Never panics, whatever the input bytes.
pub fn from_binary(mut bytes: &[u8]) -> Result<ReplayTrace, TraceError> {
    let magic = take(&mut bytes, BINARY_MAGIC.len())?;
    if magic != BINARY_MAGIC {
        return Err(TraceError::Corrupt("bad magic".into()));
    }
    let version = take(&mut bytes, 1)?[0];
    if u32::from(version) != TRACE_VERSION {
        return Err(TraceError::UnsupportedVersion(u32::from(version)));
    }
    let mut lines = Vec::new();
    while !bytes.is_empty() {
        let tag = take(&mut bytes, 1)?[0];
        let len_bytes = take(&mut bytes, 4)?;
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_LEN {
            return Err(TraceError::Corrupt(format!(
                "frame length {len} exceeds the {MAX_FRAME_LEN} B limit"
            )));
        }
        let payload = take(&mut bytes, len)?;
        let crc_bytes = take(&mut bytes, 4)?;
        let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc != aide_rpc::crc32(payload) {
            return Err(TraceError::Corrupt("frame checksum mismatch".into()));
        }
        let line = match tag {
            TAG_HEADER => serde_json::from_slice(payload).map(TraceLine::Header),
            TAG_INPUT => serde_json::from_slice(payload).map(TraceLine::Input),
            TAG_BASELINE => serde_json::from_slice(payload).map(TraceLine::Baseline),
            TAG_VM => serde_json::from_slice(payload).map(TraceLine::Vm),
            other => return Err(TraceError::Corrupt(format!("unknown frame tag {other}"))),
        };
        lines.push(line.map_err(|e| TraceError::Parse(e.to_string())));
    }
    from_lines(lines)
}

/// Decodes a trace from raw bytes, auto-detecting the format: streams
/// starting with the [`BINARY_MAGIC`] are binary, everything else is
/// treated as JSON-lines.
pub fn decode(bytes: &[u8]) -> Result<ReplayTrace, TraceError> {
    if bytes.starts_with(BINARY_MAGIC) {
        return from_binary(bytes);
    }
    let text =
        std::str::from_utf8(bytes).map_err(|e| TraceError::Corrupt(format!("not UTF-8: {e}")))?;
    from_json_lines(text)
}

/// Writes `trace` to `path`: JSON-lines for `.json` / `.jsonl`
/// extensions, the binary container otherwise.
pub fn save(trace: &ReplayTrace, path: impl AsRef<Path>) -> Result<(), TraceError> {
    let path = path.as_ref();
    let json = matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("json") | Some("jsonl")
    );
    let bytes = if json {
        to_json_lines(trace).into_bytes()
    } else {
        to_binary(trace)
    };
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| TraceError::Io(e.to_string()))?;
        }
    }
    std::fs::write(path, bytes).map_err(|e| TraceError::Io(e.to_string()))
}

/// Reads a trace from `path`, auto-detecting the format by content.
pub fn load(path: impl AsRef<Path>) -> Result<ReplayTrace, TraceError> {
    let bytes = std::fs::read(path.as_ref()).map_err(|e| TraceError::Io(e.to_string()))?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ReplayEvent;
    use aide_core::PlatformConfig;

    fn sample() -> ReplayTrace {
        let mut t = ReplayTrace::new("unit", PlatformConfig::prototype(6 << 20));
        t.inputs.push(ReplayEvent::ChaosDraw {
            stream: 7,
            index: 0,
            value: 42,
        });
        t.baseline.push(aide_telemetry::TimedEvent {
            seq: 0,
            at_micros: 12,
            event: aide_telemetry::PlatformEvent::OffloadDeclined { candidates: 1 },
            span: None,
        });
        t
    }

    #[test]
    fn both_formats_round_trip_and_auto_detect() {
        let t = sample();
        let json = to_json_lines(&t);
        assert_eq!(decode(json.as_bytes()).unwrap(), t);
        let bin = to_binary(&t);
        assert_eq!(decode(&bin).unwrap(), t);
        assert!(bin.starts_with(BINARY_MAGIC));
    }

    #[test]
    fn truncated_binary_errors_cleanly() {
        let bin = to_binary(&sample());
        for cut in [0, 3, 5, 9, bin.len() - 1] {
            let err = from_binary(&bin[..cut]);
            assert!(err.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let mut bin = to_binary(&sample());
        let mid = bin.len() / 2;
        bin[mid] ^= 0xFF;
        assert!(matches!(
            from_binary(&bin),
            Err(TraceError::Corrupt(_)) | Err(TraceError::Parse(_)) | Err(TraceError::Truncated)
        ));
    }

    #[test]
    fn version_mismatch_is_reported() {
        let mut bin = to_binary(&sample());
        bin[4] = 99;
        assert_eq!(from_binary(&bin), Err(TraceError::UnsupportedVersion(99)));
    }
}
