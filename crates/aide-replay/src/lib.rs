//! aide-replay — deterministic record/replay for the decision pipeline.
//!
//! The platform's offload decisions are a pure function of a small set
//! of nondeterministic inputs: the GC report stream, the drained graph
//! deltas and heap snapshot at each trigger, migration outcomes, chaos
//! draws, RPC timings, probe RTTs, and the emulator's virtual clock.
//! This crate captures all of them ([`RecordingSource`] behind the
//! [`NondetSource`](aide_core::NondetSource) and
//! [`RpcObserver`](aide_rpc::RpcObserver) seams) into a versioned
//! [`ReplayTrace`] — saved as human-editable JSON lines or compact
//! length-prefixed binary, auto-detected on load — and replays them
//! through the *real* `Monitor` → `IncrementalPartitioner` → policy
//! pipeline.
//!
//! Replay is strict: the recorded flight-recorder timeline is the
//! oracle, every recomputed event is compared against it, and the first
//! mismatch stops the run with a located
//! [`ReplayError::Diverged`] ("expected `TriggerFired` at epoch 12, got
//! `EpochSkipped`"). A divergence-free replay reproduces the timeline
//! bit-for-bit. Because the inputs are all on tape, [`sweep`] can
//! re-decide one recorded run under many policy variants in parallel —
//! what-if analysis with recorded-run fidelity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod codec;
pub mod event;
pub mod record;
pub mod replay;
pub mod sweep;

pub use adapter::{embed_vm_trace, from_vm_trace, vm_trace_inputs};
pub use codec::{
    decode, from_binary, from_json_lines, load, save, to_binary, to_json_lines, TraceError,
};
pub use event::{ReplayEvent, ReplayTrace, TraceHeader, TRACE_VERSION};
pub use record::{record_platform_run, recording_guard, RecordingSource};
pub use replay::{bless, replay, replay_with, verify_chaos_draws, ReplayError, ReplayOutcome};
pub use sweep::{
    decision_outcomes, default_variants, sweep, BaselineSummary, EpochOutcome, SweepReport,
    SweepVariant, VariantOutcome,
};
