//! What-if sweeps: replay one recorded trace under N policy variants in
//! parallel.
//!
//! Because a trace carries *every* nondeterministic input, the decision
//! pipeline can be re-run under a different [`PolicyKind`] or
//! [`PartitionerConfig`] and the alternative history is exactly as
//! trustworthy as the recorded one — same GC stream, same graph deltas,
//! same heap snapshots, only the decision logic swapped. The sweep runs
//! each variant on its own scoped thread with index-ordered result
//! slots (the same determinism discipline as the partitioner's parallel
//! candidate evaluation), so the report is byte-stable regardless of
//! thread scheduling.

use aide_core::{PartitionerConfig, PolicyKind};
use aide_telemetry::{PlatformEvent, TimedEvent};
use serde::{Deserialize, Serialize};

use crate::event::ReplayTrace;
use crate::replay::{bless, replay_with, ReplayError};

/// One policy/tuning combination to evaluate against a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepVariant {
    /// Display name ("memory-0.3", "recorded", ...).
    pub name: String,
    /// The policy this variant decides with.
    pub policy: PolicyKind,
    /// The partitioner tuning this variant runs under.
    pub partitioner: PartitionerConfig,
}

/// How one trigger epoch resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpochOutcome {
    /// A winner was chosen, moving this many bytes to the surrogate.
    Offload {
        /// Bytes the chosen partitioning moves off-client.
        bytes: u64,
    },
    /// Candidates were scored but none accepted.
    Decline,
    /// The dirty-region shortcut skipped evaluation.
    Skip,
}

impl EpochOutcome {
    fn bytes(self) -> u64 {
        match self {
            EpochOutcome::Offload { bytes } => bytes,
            _ => 0,
        }
    }

    fn kind(self) -> u8 {
        match self {
            EpochOutcome::Offload { .. } => 0,
            EpochOutcome::Decline => 1,
            EpochOutcome::Skip => 2,
        }
    }
}

/// Per-epoch decisions extracted from a timeline: each `TriggerFired`
/// resolves to the first winner/decline/skip event that follows it.
pub fn decision_outcomes(timeline: &[TimedEvent]) -> Vec<EpochOutcome> {
    let mut outcomes = Vec::new();
    let mut open = false;
    for timed in timeline {
        match &timed.event {
            PlatformEvent::TriggerFired { .. } => open = true,
            PlatformEvent::WinnerChosen { offload_bytes, .. } if open => {
                outcomes.push(EpochOutcome::Offload {
                    bytes: *offload_bytes,
                });
                open = false;
            }
            PlatformEvent::OffloadDeclined { .. } if open => {
                outcomes.push(EpochOutcome::Decline);
                open = false;
            }
            PlatformEvent::EpochSkipped { .. } if open => {
                outcomes.push(EpochOutcome::Skip);
                open = false;
            }
            _ => {}
        }
    }
    outcomes
}

/// A variant's sweep result, compared epoch-by-epoch against the
/// recorded baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantOutcome {
    /// Variant name.
    pub name: String,
    /// Epochs where this variant chose a winner.
    pub offloads: usize,
    /// Epochs where this variant declined to offload.
    pub declines: usize,
    /// Epochs the dirty-region shortcut skipped.
    pub skips: usize,
    /// Total bytes this variant would have moved to the surrogate.
    pub offloaded_bytes: u64,
    /// Per-epoch decisions, aligned with the baseline's trigger stream.
    pub decisions: Vec<EpochOutcome>,
    /// Fraction of baseline epochs where the variant made the same kind
    /// of decision (offload/decline/skip).
    pub agreement_with_baseline: f64,
    /// Fraction of baseline epochs where the variant offloaded at least
    /// as many bytes as the recorded run.
    pub win_fraction: f64,
    /// Total bytes of heap relief the recorded run achieved that this
    /// variant did not (sum over epochs of `max(0, baseline − variant)`).
    pub regret_bytes: u64,
}

/// Baseline summary included in a [`SweepReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineSummary {
    /// Trigger epochs in the recorded run.
    pub epochs: usize,
    /// Epochs the recorded run offloaded.
    pub offloads: usize,
    /// Bytes the recorded run moved to the surrogate.
    pub offloaded_bytes: u64,
    /// Per-epoch recorded decisions.
    pub decisions: Vec<EpochOutcome>,
}

/// The full result of a sweep, serializable as `BENCH_replay.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Application the trace was recorded from.
    pub app: String,
    /// Recorded inputs in the trace.
    pub input_events: usize,
    /// The recorded run's decisions.
    pub baseline: BaselineSummary,
    /// One outcome per variant, in the order given.
    pub variants: Vec<VariantOutcome>,
}

fn compare(name: &str, decisions: Vec<EpochOutcome>, baseline: &[EpochOutcome]) -> VariantOutcome {
    let offloads = decisions
        .iter()
        .filter(|o| matches!(o, EpochOutcome::Offload { .. }))
        .count();
    let declines = decisions
        .iter()
        .filter(|o| matches!(o, EpochOutcome::Decline))
        .count();
    let skips = decisions
        .iter()
        .filter(|o| matches!(o, EpochOutcome::Skip))
        .count();
    let offloaded_bytes = decisions.iter().map(|o| o.bytes()).sum();
    let epochs = baseline.len();
    let mut agreed = 0usize;
    let mut wins = 0usize;
    let mut regret_bytes = 0u64;
    for (i, base) in baseline.iter().enumerate() {
        let ours = decisions.get(i).copied();
        if ours.map(EpochOutcome::kind) == Some(base.kind()) {
            agreed += 1;
        }
        let ours_bytes = ours.map(EpochOutcome::bytes).unwrap_or(0);
        if ours_bytes >= base.bytes() {
            wins += 1;
        }
        regret_bytes += base.bytes().saturating_sub(ours_bytes);
    }
    let frac = |n: usize| {
        if epochs == 0 {
            1.0
        } else {
            n as f64 / epochs as f64
        }
    };
    VariantOutcome {
        name: name.to_string(),
        offloads,
        declines,
        skips,
        offloaded_bytes,
        decisions,
        agreement_with_baseline: frac(agreed),
        win_fraction: frac(wins),
        regret_bytes,
    }
}

/// A standard four-way variant grid around the recorded configuration:
/// the recorded policy itself (control), a lenient and a greedy memory
/// policy, and the combined memory+time policy. The control variant
/// doubles as a replay check — it must agree with the baseline on every
/// epoch.
pub fn default_variants(trace: &ReplayTrace) -> Vec<SweepVariant> {
    let cfg = &trace.header.config;
    vec![
        SweepVariant {
            name: "recorded".into(),
            policy: cfg.policy,
            partitioner: cfg.partitioner,
        },
        SweepVariant {
            name: "memory-lenient-0.1".into(),
            policy: PolicyKind::Memory {
                min_free_fraction: 0.1,
            },
            partitioner: cfg.partitioner,
        },
        SweepVariant {
            name: "memory-greedy-0.5".into(),
            policy: PolicyKind::Memory {
                min_free_fraction: 0.5,
            },
            partitioner: cfg.partitioner,
        },
        SweepVariant {
            name: "combined-0.2-m0.1".into(),
            policy: PolicyKind::Combined {
                min_free_fraction: 0.2,
                margin: 0.1,
            },
            partitioner: cfg.partitioner,
        },
    ]
}

/// Replays `trace` under every variant in parallel (one scoped thread
/// per variant, index-ordered slots) and compares each alternative
/// history against the recorded baseline.
///
/// # Errors
///
/// Propagates the first variant's [`ReplayError`], by variant order.
pub fn sweep(trace: &ReplayTrace, variants: &[SweepVariant]) -> Result<SweepReport, ReplayError> {
    let baseline_timeline = if trace.baseline.is_empty() {
        bless(trace)?
    } else {
        trace.baseline.clone()
    };
    let baseline = decision_outcomes(&baseline_timeline);

    let mut slots: Vec<Option<Result<Vec<TimedEvent>, ReplayError>>> =
        (0..variants.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, variant) in slots.iter_mut().zip(variants) {
            let trace = &trace;
            scope.spawn(move || {
                let policy = variant.policy.build(
                    trace.header.config.comm,
                    trace.header.config.surrogate_speed,
                );
                *slot = Some(replay_with(trace, policy.as_ref(), variant.partitioner));
            });
        }
    });

    let mut outcomes = Vec::with_capacity(variants.len());
    for (variant, slot) in variants.iter().zip(slots) {
        let timeline = slot.expect("scoped sweep thread filled its slot")?;
        outcomes.push(compare(
            &variant.name,
            decision_outcomes(&timeline),
            &baseline,
        ));
    }

    Ok(SweepReport {
        app: trace.header.app.clone(),
        input_events: trace.inputs.len(),
        baseline: BaselineSummary {
            epochs: baseline.len(),
            offloads: baseline
                .iter()
                .filter(|o| matches!(o, EpochOutcome::Offload { .. }))
                .count(),
            offloaded_bytes: baseline.iter().map(|o| o.bytes()).sum(),
            decisions: baseline,
        },
        variants: outcomes,
    })
}
