//! Recording: capture every nondeterministic input of a live run.
//!
//! [`RecordingSource`] implements both capture seams — aide-core's
//! [`NondetSource`] (GC reports, trigger samples, migration outcomes,
//! link transitions) and aide-rpc's [`RpcObserver`] (chaos draws, RPC
//! completions, probe RTTs, virtual-time ticks) — accumulating inputs
//! in pipeline order. [`record_platform_run`] wires one source through
//! a [`Platform`] and the process-wide RPC observer, runs the program,
//! and returns the report together with the finished trace (whose
//! baseline is the run's flight-recorder timeline).
//!
//! The RPC observer is process-global, so recordings must not overlap:
//! callers that record concurrently (test harnesses) must serialize on
//! [`recording_guard`].

use std::sync::Arc;
use std::time::Instant;

use aide_core::{
    LinkPhase, MigrationRecord, NondetMode, NondetSource, Platform, PlatformReport, TriggerSample,
};
use aide_rpc::RpcObserver;
use aide_vm::GcReport;
use parking_lot::{Mutex, MutexGuard};

use crate::event::{ReplayEvent, ReplayTrace};

/// Captures every nondeterministic input crossing the two seams.
pub struct RecordingSource {
    origin: Instant,
    inputs: Mutex<Vec<ReplayEvent>>,
}

impl Default for RecordingSource {
    fn default() -> Self {
        RecordingSource::new()
    }
}

impl RecordingSource {
    /// A fresh recorder; timestamps count from now.
    pub fn new() -> Self {
        RecordingSource {
            origin: Instant::now(),
            inputs: Mutex::new(Vec::new()),
        }
    }

    fn now(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn push(&self, event: ReplayEvent) {
        self.inputs.lock().push(event);
    }

    /// Number of inputs captured so far.
    pub fn len(&self) -> usize {
        self.inputs.lock().len()
    }

    /// Whether nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.inputs.lock().is_empty()
    }

    /// Drains the captured inputs into a trace for `app`, with
    /// `baseline` as the oracle timeline (pass the recorded run's
    /// `report.events`; pass an empty vec when no platform run was
    /// involved, e.g. chaos-soak harness dumps).
    pub fn into_trace(
        &self,
        app: impl Into<String>,
        config: aide_core::PlatformConfig,
        baseline: Vec<aide_telemetry::TimedEvent>,
    ) -> ReplayTrace {
        let mut trace = ReplayTrace::new(app, config);
        trace.inputs = std::mem::take(&mut *self.inputs.lock());
        trace.baseline = baseline;
        trace
    }
}

impl NondetSource for RecordingSource {
    fn mode(&self) -> NondetMode {
        NondetMode::Recording
    }

    fn observe_gc(&self, report: &GcReport) {
        self.push(ReplayEvent::Gc {
            at_micros: self.now(),
            report: *report,
        });
    }

    fn trigger(&self, live: TriggerSample) -> TriggerSample {
        self.push(ReplayEvent::Trigger {
            at_micros: self.now(),
            sample: live.clone(),
        });
        live
    }

    fn migration(&self, record: MigrationRecord) {
        self.push(ReplayEvent::Migration {
            at_micros: self.now(),
            record,
        });
    }

    fn link_transition(&self, surrogate: &str, phase: LinkPhase) {
        let at_micros = self.now();
        self.push(match phase {
            LinkPhase::Died => ReplayEvent::LinkDown {
                at_micros,
                surrogate: surrogate.to_string(),
            },
            LinkPhase::Recovered => ReplayEvent::LinkRecovered {
                at_micros,
                surrogate: surrogate.to_string(),
            },
        });
    }
}

impl RpcObserver for RecordingSource {
    fn chaos_draw(&self, stream: u64, index: u64, value: u64) {
        self.push(ReplayEvent::ChaosDraw {
            stream,
            index,
            value,
        });
    }

    fn call_completed(&self, seq: u64, attempts: u32, elapsed_micros: u64, ok: bool) {
        self.push(ReplayEvent::RpcCompletion {
            at_micros: self.now(),
            seq,
            attempts,
            elapsed_micros,
            ok,
        });
    }

    fn probe_rtt(&self, surrogate: &str, rtt_micros: u64) {
        self.push(ReplayEvent::ProbeRtt {
            at_micros: self.now(),
            surrogate: surrogate.to_string(),
            rtt_micros,
        });
    }

    fn virtual_tick(&self, at_micros: u64) {
        self.push(ReplayEvent::VirtualTick { at_micros });
    }
}

static RECORDING: Mutex<()> = Mutex::new(());

/// Serializes recordings: the RPC observer seam is process-global, so
/// two concurrent recordings would interleave their capture streams.
pub fn recording_guard() -> MutexGuard<'static, ()> {
    RECORDING.lock()
}

/// Runs `platform` with recording wired through both seams and returns
/// the run report plus the finished trace (baseline = the run's
/// flight-recorder timeline).
///
/// Takes the process-wide [`recording_guard`] for the duration of the
/// run.
pub fn record_platform_run(platform: Platform, app: &str) -> (PlatformReport, ReplayTrace) {
    let _guard = recording_guard();
    let config = *platform.config();
    let source = Arc::new(RecordingSource::new());
    aide_rpc::set_rpc_observer(Some(source.clone()));
    let report = platform.with_nondet_source(source.clone()).run();
    aide_rpc::set_rpc_observer(None);
    let trace = source.into_trace(app, config, report.events.clone());
    (report, trace)
}
