//! Voxel — "fractal landscape generator; CPU intensive, interactive".
//!
//! A frame loop: the natively implemented display and input layers do the
//! interactive half of the work on the client; the generator/eroder/shader
//! pipeline is offloadable compute that leans on stateless math natives
//! (`Math.sin`, `Math.sqrt` per terrain patch) and shares one primitive
//! integer-array class between two unrelated uses — height maps (generator
//! side) and pixel rows (display side). Exactly the combination the §5.2
//! enhancements target: the initial offload is *slower* than local
//! execution because every math call bounces back to the client, while the
//! Native and Array enhancements turn offloading beneficial (Figure 10).

use std::sync::Arc;

use aide_vm::{MethodDef, NativeKind, Op, Program, ProgramBuilder, Reg};

use crate::common::{rotating_groups, Scale, Web, WebSpec};
use crate::App;

/// Frames in the interactive session.
const FRAMES: u32 = 300;
/// Math-native calls per generation batch (paper: per terrain patch).
const MATH_CALLS_PER_FRAME: u32 = 400;

const SLOT_DISPLAY: u16 = 0;
const SLOT_GENERATOR: u16 = 1;
const SLOT_EROSION: u16 = 2;
const SLOT_SHADER: u16 = 3;
const SLOT_CAMERA: u16 = 4;
const SLOT_INPUT: u16 = 5;
const SLOT_HEIGHTMAP: u16 = 6;
const SLOT_PIXELS: u16 = 7;
const SLOT_WEB_BASE: u16 = 8;
const WEB_CLASSES: usize = 18;

/// Builds the Voxel model at the given scale.
///
/// # Panics
///
/// Panics only if the internal program assembly is inconsistent (a bug).
pub fn voxel(scale: Scale) -> App {
    let frames = scale.at_least(FRAMES, 6);
    let math_calls = scale.at_least(MATH_CALLS_PER_FRAME, 20);

    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let display = b.add_native_class("Display");
    let input = b.add_native_class("InputHandler");
    let generator = b.add_class("Generator");
    let erosion = b.add_class("Erosion");
    let shader = b.add_class("Shader");
    let camera = b.add_class("Camera");
    let intarray = b.add_array_class("IntArray");

    let web = Web::build(
        &mut b,
        "Vox",
        WebSpec {
            classes: WEB_CLASSES,
            neighbors: (2, 4),
            touch_work: (100, 300),
            leaf_work: 10,
            read_bytes: 16,
            temp_bytes: 90,
            instance_bytes: (40, 300),
            seed: 0x0u64 + 0x70_0e1,
        },
    );

    // Display::blit(pixelrow) — reads a pixel row, draws it (client).
    let blit = b.add_method(
        display,
        MethodDef::new(
            "blit",
            vec![
                Op::Read {
                    obj: Reg(0),
                    bytes: 6_000,
                },
                Op::Work { micros: 500_000 },
                Op::Native {
                    kind: NativeKind::Framebuffer,
                    work_micros: 30_000,
                    arg_bytes: 6_000,
                    ret_bytes: 0,
                },
            ],
        ),
    );
    let poll = b.add_method(
        input,
        MethodDef::new(
            "poll",
            vec![
                Op::Work { micros: 50_000 },
                Op::Native {
                    kind: NativeKind::UiToolkit,
                    work_micros: 10_000,
                    arg_bytes: 32,
                    ret_bytes: 32,
                },
            ],
        ),
    );

    // Generator::generate(heightmap) — fractal noise: Work plus a batch of
    // stateless math natives, writing the height map.
    let generate = b.add_method(
        generator,
        MethodDef::new(
            "generate",
            vec![
                Op::Work { micros: 150_000 },
                Op::Repeat {
                    n: math_calls / 2,
                    body: vec![Op::Native {
                        kind: NativeKind::Math,
                        work_micros: 150,
                        arg_bytes: 16,
                        ret_bytes: 8,
                    }],
                },
                Op::Write {
                    obj: Reg(0),
                    bytes: 8_192,
                },
            ],
        ),
    );
    let erode = b.add_method(
        erosion,
        MethodDef::new(
            "erode",
            vec![
                Op::Read {
                    obj: Reg(0),
                    bytes: 4_096,
                },
                Op::Work { micros: 100_000 },
                Op::Repeat {
                    n: math_calls / 4,
                    body: vec![Op::Native {
                        kind: NativeKind::Math,
                        work_micros: 120,
                        arg_bytes: 16,
                        ret_bytes: 8,
                    }],
                },
                Op::Write {
                    obj: Reg(0),
                    bytes: 4_096,
                },
            ],
        ),
    );
    // Shader::shade(heightmap, pixels) — reads terrain, writes pixel rows,
    // with a final math batch (lighting).
    let shade = b.add_method(
        shader,
        MethodDef::new(
            "shade",
            vec![
                Op::Read {
                    obj: Reg(0),
                    bytes: 8_192,
                },
                Op::Work { micros: 180_000 },
                Op::Repeat {
                    n: math_calls / 4,
                    body: vec![Op::Native {
                        kind: NativeKind::Math,
                        work_micros: 130,
                        arg_bytes: 16,
                        ret_bytes: 8,
                    }],
                },
                Op::Write {
                    obj: Reg(1),
                    bytes: 12_288,
                },
            ],
        ),
    );
    let track = b.add_method(
        camera,
        MethodDef::new(
            "track",
            vec![
                Op::Work { micros: 50_000 },
                Op::Repeat {
                    n: 40,
                    body: vec![Op::Native {
                        kind: NativeKind::Math,
                        work_micros: 100,
                        arg_bytes: 16,
                        ret_bytes: 8,
                    }],
                },
            ],
        ),
    );

    // ---- main --------------------------------------------------------
    let mut body: Vec<Op> = Vec::new();
    for (class, bytes, slot) in [
        (display, 5_000u32, SLOT_DISPLAY),
        (generator, 2_000, SLOT_GENERATOR),
        (erosion, 1_200, SLOT_EROSION),
        (shader, 1_800, SLOT_SHADER),
        (camera, 600, SLOT_CAMERA),
        (input, 400, SLOT_INPUT),
    ] {
        body.push(Op::New {
            class,
            scalar_bytes: bytes,
            ref_slots: 0,
            dst: Reg(0),
        });
        body.push(Op::PutSlot { slot, src: Reg(0) });
    }
    // Two unrelated uses of the same primitive-array class.
    body.push(Op::New {
        class: intarray,
        scalar_bytes: 262_144, // 256 KB height map
        ref_slots: 0,
        dst: Reg(0),
    });
    body.push(Op::PutSlot {
        slot: SLOT_HEIGHTMAP,
        src: Reg(0),
    });
    body.push(Op::New {
        class: intarray,
        scalar_bytes: 307_200, // 300 KB pixel rows
        ref_slots: 0,
        dst: Reg(0),
    });
    body.push(Op::PutSlot {
        slot: SLOT_PIXELS,
        src: Reg(0),
    });
    body.extend(web.setup_ops(SLOT_WEB_BASE));

    // Frame loop, in four variants rotating web usage.
    let groups = rotating_groups(web.len(), 6.min(web.len()), 4);
    for group in &groups {
        let mut frame = vec![
            Op::GetSlot {
                slot: SLOT_HEIGHTMAP,
                dst: Reg(0),
            },
            Op::GetSlot {
                slot: SLOT_PIXELS,
                dst: Reg(1),
            },
        ];
        for (slot, class, method, args) in [
            (SLOT_INPUT, input, poll, vec![]),
            (SLOT_GENERATOR, generator, generate, vec![Reg(0)]),
            (SLOT_EROSION, erosion, erode, vec![Reg(0)]),
            (SLOT_CAMERA, camera, track, vec![]),
            (SLOT_SHADER, shader, shade, vec![Reg(0), Reg(1)]),
        ] {
            frame.push(Op::GetSlot { slot, dst: Reg(3) });
            frame.push(Op::Call {
                obj: Reg(3),
                class,
                method,
                arg_bytes: 16,
                ret_bytes: 8,
                args,
            });
        }
        // Display: several row blits per frame (reads pixel rows).
        frame.push(Op::GetSlot {
            slot: SLOT_DISPLAY,
            dst: Reg(3),
        });
        for _ in 0..4 {
            frame.push(Op::Call {
                obj: Reg(3),
                class: display,
                method: blit,
                arg_bytes: 16,
                ret_bytes: 0,
                args: vec![Reg(1)],
            });
        }
        frame.extend(web.touch_ops(SLOT_WEB_BASE, group.iter().copied()));
        body.push(Op::Repeat {
            n: (frames / 4).max(1),
            body: frame,
        });
    }

    let m = b.add_method(main, MethodDef::new("main", body));
    let entry_slots = SLOT_WEB_BASE + WEB_CLASSES as u16 + 4;
    let program: Arc<Program> = Arc::new(
        b.build(main, m, 2_000, entry_slots)
            .expect("Voxel model assembles"),
    );
    App {
        name: "Voxel",
        description: "Fractal landscape generator",
        resource_demands: "CPU intensive, interactive",
        program,
    }
}
