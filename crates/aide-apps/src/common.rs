//! Shared machinery for building application models.
//!
//! The paper's applications are real Java programs; we reconstruct their
//! *shapes* — class counts, interaction webs, memory growth, native-call
//! mix — as deterministic, seeded program generators. Every model is built
//! from the same primitives: a web of interacting framework classes, bulk
//! data arrays, and phase-structured main methods.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aide_vm::{ClassId, MethodDef, MethodId, Op, ProgramBuilder, Reg};

/// Linear scale factor applied to loop counts and object volumes.
///
/// `Scale::FULL` reproduces the paper-sized workloads (~10⁶ interaction
/// events for JavaNote); tests use small fractions to stay fast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// Paper-sized workload.
    pub const FULL: Scale = Scale(1.0);

    /// Scales an iteration/volume count, never below 1.
    pub fn n(self, base: u32) -> u32 {
        ((f64::from(base) * self.0).round() as u32).max(1)
    }

    /// Scales a count, never below `min`.
    pub fn at_least(self, base: u32, min: u32) -> u32 {
        self.n(base).max(min)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::FULL
    }
}

/// A web of interacting auxiliary classes (widgets, utilities, containers)
/// built behind a single *registry* pattern: the entry object holds one
/// instance of each class in its reference slots, and every instance is
/// wired to a few neighbours.
///
/// Calling a member's `touch` method produces a realistic interaction fan:
/// one invocation plus a read and a leaf invocation per neighbour.
#[derive(Debug)]
pub struct Web {
    /// The classes of the web, in slot order.
    pub classes: Vec<ClassId>,
    /// `touch` method of each class.
    pub touch: Vec<MethodId>,
    /// `leaf` method of each class.
    pub leaf: Vec<MethodId>,
    /// Neighbour wiring: `(member, slot, neighbor)` triples.
    wiring: Vec<(usize, u16, usize)>,
    /// Scalar instance size per member.
    instance_sizes: Vec<u32>,
}

/// Parameters for building a [`Web`].
#[derive(Debug, Clone, Copy)]
pub struct WebSpec {
    /// Number of classes in the web.
    pub classes: usize,
    /// Neighbours wired per class (min, max).
    pub neighbors: (usize, usize),
    /// Exclusive work per `touch`, microseconds (min, max).
    pub touch_work: (u32, u32),
    /// Exclusive work per `leaf`, microseconds.
    pub leaf_work: u32,
    /// Bytes read from each neighbour during a touch.
    pub read_bytes: u32,
    /// Payload size of the temporary object some touches allocate
    /// (applies to roughly one member in four; 0 disables).
    pub temp_bytes: u32,
    /// Instance scalar size range (min, max).
    pub instance_bytes: (u32, u32),
    /// RNG seed (webs are deterministic given spec + seed).
    pub seed: u64,
}

impl Web {
    /// Maximum neighbours a web member can hold.
    pub const MAX_NEIGHBORS: usize = 8;

    /// Builds the classes and methods of a web into `b`.
    ///
    /// # Panics
    ///
    /// Panics if `spec.neighbors.1 > Web::MAX_NEIGHBORS`.
    pub fn build(b: &mut ProgramBuilder, prefix: &str, spec: WebSpec) -> Web {
        assert!(
            spec.neighbors.1 <= Web::MAX_NEIGHBORS,
            "at most {} neighbours supported",
            Web::MAX_NEIGHBORS
        );
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut classes = Vec::with_capacity(spec.classes);
        let mut instance_bytes = Vec::with_capacity(spec.classes);
        for i in 0..spec.classes {
            classes.push(b.add_class(format!("{prefix}{i}")));
            instance_bytes.push(rng.random_range(spec.instance_bytes.0..=spec.instance_bytes.1));
        }

        // Wiring: each member points at `k` random distinct neighbours.
        let mut wiring = Vec::new();
        let mut neighbor_lists: Vec<Vec<usize>> = Vec::with_capacity(spec.classes);
        for i in 0..spec.classes {
            let k = rng.random_range(spec.neighbors.0..=spec.neighbors.1);
            let mut chosen = Vec::new();
            while chosen.len() < k && chosen.len() < spec.classes - 1 {
                let j = rng.random_range(0..spec.classes);
                if j != i && !chosen.contains(&j) {
                    chosen.push(j);
                }
            }
            for (slot, &j) in chosen.iter().enumerate() {
                wiring.push((i, slot as u16, j));
            }
            neighbor_lists.push(chosen);
        }

        // Methods: leaf first (so touch can reference it), then touch.
        let mut leaf = Vec::with_capacity(spec.classes);
        for &class in &classes {
            leaf.push(b.add_method(
                class,
                MethodDef::new(
                    "leaf",
                    vec![Op::Work {
                        micros: spec.leaf_work,
                    }],
                ),
            ));
        }
        let mut touch = Vec::with_capacity(spec.classes);
        for (i, &class) in classes.iter().enumerate() {
            let mut body = vec![Op::Work {
                micros: rng.random_range(spec.touch_work.0..=spec.touch_work.1),
            }];
            for (slot, &j) in neighbor_lists[i].iter().enumerate() {
                body.push(Op::GetSlot {
                    slot: slot as u16,
                    dst: Reg(6),
                });
                body.push(Op::Read {
                    obj: Reg(6),
                    bytes: spec.read_bytes,
                });
                body.push(Op::Call {
                    obj: Reg(6),
                    class: classes[j],
                    method: leaf[j],
                    arg_bytes: 8,
                    ret_bytes: 8,
                    args: vec![],
                });
            }
            if spec.temp_bytes > 0 && i % 4 == 0 {
                body.push(Op::New {
                    class,
                    scalar_bytes: spec.temp_bytes,
                    ref_slots: 0,
                    dst: Reg(7),
                });
                body.push(Op::Clear { reg: Reg(7) });
            }
            touch.push(b.add_method(class, MethodDef::new("touch", body)));
        }

        Web {
            classes,
            touch,
            leaf,
            wiring,
            instance_sizes: instance_bytes,
        }
    }

    /// Emits the ops that instantiate the web: one instance per class,
    /// stored into the *entry object's* slots `[slot_base ..]`, with the
    /// neighbour wiring applied. Uses registers 4 and 5 as scratch.
    pub fn setup_ops(&self, slot_base: u16) -> Vec<Op> {
        let mut ops = Vec::new();
        for (i, &class) in self.classes.iter().enumerate() {
            ops.push(Op::New {
                class,
                scalar_bytes: self.instance_sizes[i],
                ref_slots: Web::MAX_NEIGHBORS as u16,
                dst: Reg(4),
            });
            ops.push(Op::PutSlot {
                slot: slot_base + i as u16,
                src: Reg(4),
            });
        }
        for &(member, slot, neighbor) in &self.wiring {
            ops.push(Op::GetSlot {
                slot: slot_base + member as u16,
                dst: Reg(4),
            });
            ops.push(Op::GetSlot {
                slot: slot_base + neighbor as u16,
                dst: Reg(5),
            });
            ops.push(Op::PutSlotOf {
                obj: Reg(4),
                slot,
                src: Reg(5),
            });
        }
        ops
    }

    /// Emits the ops that `touch` members `indices` of the web (the entry
    /// object's slots hold the instances). Uses register 4 as scratch.
    pub fn touch_ops(&self, slot_base: u16, indices: impl IntoIterator<Item = usize>) -> Vec<Op> {
        let mut ops = Vec::new();
        for i in indices {
            ops.push(Op::GetSlot {
                slot: slot_base + i as u16,
                dst: Reg(4),
            });
            ops.push(Op::Call {
                obj: Reg(4),
                class: self.classes[i],
                method: self.touch[i],
                arg_bytes: 12,
                ret_bytes: 4,
                args: vec![],
            });
        }
        ops
    }

    /// Number of classes in the web.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Returns `true` if the web has no classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

/// A deterministic round-robin chunking of `0..total` into groups of
/// `per_group`, used to rotate which web members each loop variant touches.
pub fn rotating_groups(total: usize, per_group: usize, groups: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::with_capacity(groups);
    let mut cursor = 0usize;
    for _ in 0..groups {
        let mut g = Vec::with_capacity(per_group);
        for _ in 0..per_group {
            g.push(cursor % total);
            cursor += 1;
        }
        out.push(g);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use aide_vm::{CountingHooks, Machine, VmConfig};

    #[test]
    fn scale_clamps_to_one() {
        assert_eq!(Scale(0.001).n(100), 1);
        assert_eq!(Scale(0.5).n(100), 50);
        assert_eq!(Scale::FULL.n(100), 100);
        assert_eq!(Scale(0.01).at_least(100, 5), 5);
    }

    #[test]
    fn rotating_groups_cover_all_members() {
        let groups = rotating_groups(10, 4, 5);
        assert_eq!(groups.len(), 5);
        let mut seen = std::collections::HashSet::new();
        for g in &groups {
            assert_eq!(g.len(), 4);
            seen.extend(g.iter().copied());
        }
        assert_eq!(seen.len(), 10, "20 draws cover all 10 members");
    }

    #[test]
    fn web_is_deterministic_and_runs() {
        let spec = WebSpec {
            classes: 12,
            neighbors: (2, 4),
            touch_work: (1, 5),
            leaf_work: 1,
            read_bytes: 16,
            temp_bytes: 64,
            instance_bytes: (32, 256),
            seed: 42,
        };
        let build = || {
            let mut b = ProgramBuilder::new();
            let main = b.add_class("Main");
            let web = Web::build(&mut b, "W", spec);
            let mut body = web.setup_ops(0);
            body.extend(web.touch_ops(0, 0..web.len()));
            let m = b.add_method(main, MethodDef::new("main", body));
            (b.build(main, m, 64, 64).unwrap(), web)
        };
        let (p1, _) = build();
        let (p2, _) = build();
        assert_eq!(p1, p2, "same seed, same program");

        let hooks = Arc::new(CountingHooks::new());
        let machine = Machine::with_hooks(Arc::new(p1), VmConfig::client(4 << 20), hooks.clone());
        machine.run_entry().unwrap();
        let ints = hooks
            .interactions
            .load(std::sync::atomic::Ordering::Relaxed);
        // Each touch: 1 invocation + per neighbour (1 read + 1 invocation).
        assert!(ints > 12 * (1 + 2 * 2) as u64);
    }
}
