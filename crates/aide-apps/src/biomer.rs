//! Biomer — "molecular editing application; memory/CPU intensive".
//!
//! The hard case. The molecule model (fragments of atoms/bonds, force
//! field, integrator, energy terms) is *tightly coupled* to the natively
//! implemented 3D view and to generic value classes (strings, boxed
//! integers) hammered from both sides of any cut — the paper's §5.1
//! explanation for Biomer's high remote-execution overhead (27.5%), and
//! the reason the beneficial-offloading gate refuses to offload it in the
//! §5.2 processing experiments (predicted 790 s versus 750 s).
//!
//! The coupling is arranged so the *greedy candidate sweep misses the one
//! good cut*: the integrator leans on the generic classes (which lean on
//! the client), so the sweep pulls fragments to the client before the
//! force-field/energy cluster — but a *manual* partition that keeps
//! `{ForceField, *Energy, Fragment}` together on the surrogate is
//! genuinely beneficial (the paper's hand-found 711 s).
//!
//! Two scenarios share the class structure: [`biomer`] (memory growth,
//! §5.1) and [`biomer_cpu`] (heavy simulation steps, §5.2).

use std::sync::Arc;

use aide_vm::{ClassId, MethodDef, MethodId, NativeKind, Op, Program, ProgramBuilder, Reg};

use crate::common::{rotating_groups, Scale, Web, WebSpec};
use crate::App;

const SLOT_VIEW: u16 = 0;
const SLOT_MOLECULE: u16 = 1;
const SLOT_FORCEFIELD: u16 = 2;
const SLOT_INTEGRATOR: u16 = 3;
const SLOT_GEN_STR: u16 = 4;
const SLOT_GEN_INT: u16 = 5;
const SLOT_ENERGY_BASE: u16 = 6; // 3 energy terms + panel
const SLOT_WEB_BASE: u16 = 10;
const WEB_CLASSES: usize = 38;
const SLOT_FRAG_BASE: u16 = 10 + WEB_CLASSES as u16;

/// Per-scenario intensity knobs.
#[derive(Debug, Clone, Copy)]
struct Knobs {
    /// Fine-grained view updates per step (client-pinned chatter).
    view_updates: u32,
    /// Generic-class call pairs from the client side per step.
    client_gen: u32,
    /// Generic-class call pairs from the integrator per step.
    integ_gen: u32,
    /// Fragment (atom) reads by the force field per step.
    ff_frag_reads: u32,
    /// Fragment reads by the integrator per step.
    integ_frag_reads: u32,
    /// Fragment reads per energy term per step.
    energy_frag_reads: u32,
    /// Fragment reads by the pinned view's heavy render per step.
    view_frag_reads: u32,
    /// Stateless math-native calls per force-field step.
    ff_math_calls: u32,
    /// Stateless math-native calls per energy term per step.
    energy_math_calls: u32,
    /// Microseconds of work per math-native call.
    math_work: u32,
    view_render_work: u32,
    view_update_work: u32,
    ff_work: u32,
    integ_work: u32,
    energy_work: u32,
}

const CPU_KNOBS: Knobs = Knobs {
    view_updates: 300,
    client_gen: 140,
    integ_gen: 150,
    ff_frag_reads: 150,
    integ_frag_reads: 165,
    energy_frag_reads: 50,
    view_frag_reads: 120,
    ff_math_calls: 60,
    energy_math_calls: 20,
    math_work: 2_000,
    view_render_work: 300_000,
    view_update_work: 300,
    ff_work: 450_000,
    integ_work: 300_000,
    energy_work: 150_000,
};

const MEM_KNOBS: Knobs = Knobs {
    view_updates: 18,
    client_gen: 7,
    integ_gen: 5,
    ff_frag_reads: 10,
    integ_frag_reads: 8,
    energy_frag_reads: 5,
    view_frag_reads: 8,
    ff_math_calls: 3,
    energy_math_calls: 1,
    math_work: 300,
    view_render_work: 45_000,
    view_update_work: 100,
    ff_work: 30_000,
    integ_work: 25_000,
    energy_work: 10_000,
};

struct Parts {
    builder: ProgramBuilder,
    main: ClassId,
    view: ClassId,
    view_render: MethodId,
    view_update: MethodId,
    panel: ClassId,
    panel_poll: MethodId,
    molecule: ClassId,
    fragment: ClassId,
    forcefield: ClassId,
    ff_step: MethodId,
    integrator: ClassId,
    integ_advance: MethodId,
    energies: Vec<(ClassId, MethodId)>,
    gen_str: ClassId,
    gs_use: MethodId,
    gen_int: ClassId,
    gi_use: MethodId,
    web: Web,
}

fn build_parts(k: Knobs) -> Parts {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let view = b.add_native_class("MolView3D");
    let panel = b.add_native_class("ControlPanel");
    let molecule = b.add_class("Molecule");
    let fragment = b.add_class("Fragment");
    let forcefield = b.add_class("ForceField");
    let integrator = b.add_class("Integrator");
    let gen_str = b.add_class("GenericString");
    let gen_int = b.add_class("GenericInteger");
    let energy_classes = [
        b.add_class("BondEnergy"),
        b.add_class("AngleEnergy"),
        b.add_class("TorsionEnergy"),
    ];

    let web = Web::build(
        &mut b,
        "BioTool",
        WebSpec {
            classes: WEB_CLASSES,
            neighbors: (3, 5),
            touch_work: (150, 400),
            leaf_work: 10,
            read_bytes: 16,
            temp_bytes: 120,
            instance_bytes: (60, 600),
            seed: 0xB10_0001,
        },
    );

    // View: one heavy render plus many fine-grained updates per step.
    let view_render = b.add_method(
        view,
        MethodDef::new(
            "render",
            vec![
                // Per-atom position reads straight from the fragment.
                Op::Repeat {
                    n: k.view_frag_reads,
                    body: vec![Op::Read {
                        obj: Reg(0),
                        bytes: 24,
                    }],
                },
                Op::Work {
                    micros: k.view_render_work,
                },
                Op::Native {
                    kind: NativeKind::Framebuffer,
                    work_micros: 8_000,
                    arg_bytes: 1_024,
                    ret_bytes: 0,
                },
            ],
        ),
    );
    let view_update = b.add_method(
        view,
        MethodDef::new(
            "update",
            vec![Op::Work {
                micros: k.view_update_work,
            }],
        ),
    );
    let panel_poll = b.add_method(
        panel,
        MethodDef::new(
            "poll",
            vec![
                Op::Work { micros: 1_500 },
                Op::Native {
                    kind: NativeKind::UiToolkit,
                    work_micros: 800,
                    arg_bytes: 48,
                    ret_bytes: 16,
                },
            ],
        ),
    );

    // Generic value classes: tiny, hot, used everywhere.
    let gs_use = b.add_method(
        gen_str,
        MethodDef::new("use", vec![Op::Work { micros: 40 }]),
    );
    let gi_use = b.add_method(
        gen_int,
        MethodDef::new("use", vec![Op::Work { micros: 10 }]),
    );

    // ForceField::step(fragment) — many fine-grained atom reads plus
    // stateless math natives (distance/angle computations).
    let ff_step = b.add_method(
        forcefield,
        MethodDef::new(
            "step",
            vec![
                Op::Repeat {
                    n: k.ff_frag_reads,
                    body: vec![Op::Read {
                        obj: Reg(0),
                        bytes: 24,
                    }],
                },
                Op::Work { micros: k.ff_work },
                Op::Repeat {
                    n: k.ff_math_calls,
                    body: vec![Op::Native {
                        kind: NativeKind::Math,
                        work_micros: k.math_work,
                        arg_bytes: 16,
                        ret_bytes: 8,
                    }],
                },
                Op::Write {
                    obj: Reg(0),
                    bytes: 512,
                },
            ],
        ),
    );
    // Integrator::advance(fragment, genstr, genint) — leans on generics.
    let integ_advance = b.add_method(
        integrator,
        MethodDef::new(
            "advance",
            vec![
                Op::Repeat {
                    n: k.integ_frag_reads,
                    body: vec![Op::Read {
                        obj: Reg(0),
                        bytes: 24,
                    }],
                },
                Op::Work {
                    micros: k.integ_work,
                },
                Op::Repeat {
                    n: k.integ_gen,
                    body: vec![
                        Op::Call {
                            obj: Reg(1),
                            class: gen_str,
                            method: gs_use,
                            arg_bytes: 16,
                            ret_bytes: 16,
                            args: vec![],
                        },
                        Op::Call {
                            obj: Reg(2),
                            class: gen_int,
                            method: gi_use,
                            arg_bytes: 8,
                            ret_bytes: 8,
                            args: vec![],
                        },
                    ],
                },
                Op::Write {
                    obj: Reg(0),
                    bytes: 512,
                },
            ],
        ),
    );
    let mut energies = Vec::new();
    for &e in &energy_classes {
        energies.push((
            e,
            b.add_method(
                e,
                MethodDef::new(
                    "eval",
                    vec![
                        Op::Repeat {
                            n: k.energy_frag_reads,
                            body: vec![Op::Read {
                                obj: Reg(0),
                                bytes: 24,
                            }],
                        },
                        Op::Work {
                            micros: k.energy_work,
                        },
                        Op::Repeat {
                            n: k.energy_math_calls,
                            body: vec![Op::Native {
                                kind: NativeKind::Math,
                                work_micros: k.math_work,
                                arg_bytes: 16,
                                ret_bytes: 8,
                            }],
                        },
                    ],
                ),
            ),
        ));
    }

    Parts {
        builder: b,
        main,
        view,
        view_render,
        view_update,
        panel,
        panel_poll,
        molecule,
        fragment,
        forcefield,
        ff_step,
        integrator,
        integ_advance,
        energies,
        gen_str,
        gs_use,
        gen_int,
        gi_use,
        web,
    }
}

fn startup_ops(p: &Parts) -> Vec<Op> {
    let mut ops = Vec::new();
    for (class, bytes, slot) in [
        (p.view, 6_000u32, SLOT_VIEW),
        (p.molecule, 2_500, SLOT_MOLECULE),
        (p.forcefield, 3_000, SLOT_FORCEFIELD),
        (p.integrator, 1_500, SLOT_INTEGRATOR),
        (p.gen_str, 200, SLOT_GEN_STR),
        (p.gen_int, 100, SLOT_GEN_INT),
        (p.panel, 900, SLOT_ENERGY_BASE + 3),
    ] {
        ops.push(Op::New {
            class,
            scalar_bytes: bytes,
            ref_slots: 0,
            dst: Reg(0),
        });
        ops.push(Op::PutSlot { slot, src: Reg(0) });
    }
    for (i, &(class, _)) in p.energies.iter().enumerate() {
        ops.push(Op::New {
            class,
            scalar_bytes: 700,
            ref_slots: 0,
            dst: Reg(0),
        });
        ops.push(Op::PutSlot {
            slot: SLOT_ENERGY_BASE + i as u16,
            src: Reg(0),
        });
    }
    ops.extend(p.web.setup_ops(SLOT_WEB_BASE));
    ops
}

fn step_ops(p: &Parts, k: Knobs, frag_slot: u16, web_group: &[usize]) -> Vec<Op> {
    let mut ops = vec![
        Op::GetSlot {
            slot: frag_slot,
            dst: Reg(0),
        },
        Op::GetSlot {
            slot: SLOT_GEN_STR,
            dst: Reg(1),
        },
        Op::GetSlot {
            slot: SLOT_GEN_INT,
            dst: Reg(2),
        },
    ];
    // Simulation: force field, integrator (generics-hungry), energy terms.
    ops.push(Op::GetSlot {
        slot: SLOT_FORCEFIELD,
        dst: Reg(3),
    });
    ops.push(Op::Call {
        obj: Reg(3),
        class: p.forcefield,
        method: p.ff_step,
        arg_bytes: 24,
        ret_bytes: 16,
        args: vec![Reg(0)],
    });
    ops.push(Op::GetSlot {
        slot: SLOT_INTEGRATOR,
        dst: Reg(3),
    });
    ops.push(Op::Call {
        obj: Reg(3),
        class: p.integrator,
        method: p.integ_advance,
        arg_bytes: 24,
        ret_bytes: 16,
        args: vec![Reg(0), Reg(1), Reg(2)],
    });
    for &(class, method) in &p.energies {
        ops.push(Op::GetSlot {
            slot: SLOT_ENERGY_BASE + energy_index(p, class),
            dst: Reg(3),
        });
        ops.push(Op::Call {
            obj: Reg(3),
            class,
            method,
            arg_bytes: 16,
            ret_bytes: 16,
            args: vec![Reg(0)],
        });
    }
    // Client-side generic chatter (labels, measurements, tooltips).
    ops.push(Op::Repeat {
        n: k.client_gen,
        body: vec![
            Op::Call {
                obj: Reg(1),
                class: p.gen_str,
                method: p.gs_use,
                arg_bytes: 16,
                ret_bytes: 16,
                args: vec![],
            },
            Op::Call {
                obj: Reg(2),
                class: p.gen_int,
                method: p.gi_use,
                arg_bytes: 8,
                ret_bytes: 8,
                args: vec![],
            },
        ],
    });
    // Fine-grained view updates + one heavy render + panel.
    ops.push(Op::GetSlot {
        slot: SLOT_VIEW,
        dst: Reg(3),
    });
    ops.push(Op::Repeat {
        n: k.view_updates,
        body: vec![Op::Call {
            obj: Reg(3),
            class: p.view,
            method: p.view_update,
            arg_bytes: 16,
            ret_bytes: 0,
            args: vec![],
        }],
    });
    ops.push(Op::Call {
        obj: Reg(3),
        class: p.view,
        method: p.view_render,
        arg_bytes: 16,
        ret_bytes: 0,
        args: vec![Reg(0)],
    });
    ops.push(Op::GetSlot {
        slot: SLOT_ENERGY_BASE + 3,
        dst: Reg(3),
    });
    ops.push(Op::Call {
        obj: Reg(3),
        class: p.panel,
        method: p.panel_poll,
        arg_bytes: 12,
        ret_bytes: 8,
        args: vec![],
    });
    ops.extend(p.web.touch_ops(SLOT_WEB_BASE, web_group.iter().copied()));
    ops
}

fn energy_index(p: &Parts, class: ClassId) -> u16 {
    p.energies
        .iter()
        .position(|&(c, _)| c == class)
        .expect("energy class") as u16
}

/// The §5.1 memory scenario: the molecule grows fragment by fragment while
/// simulation steps run; live memory outgrows a 6 MB heap mid-session.
///
/// # Panics
///
/// Panics only if the internal program assembly is inconsistent (a bug).
pub fn biomer(scale: Scale) -> App {
    let fragments = scale.at_least(340, 8); // × 20 KB ≈ 6.8 MB of model
    let steps = scale.at_least(1_200, 10);
    finish(build_parts(MEM_KNOBS), MEM_KNOBS, fragments, steps)
}

/// The §5.2 processing scenario: a fixed molecule, compute-heavy steps.
///
/// # Panics
///
/// Panics only if the internal program assembly is inconsistent (a bug).
pub fn biomer_cpu(scale: Scale) -> App {
    let fragments = scale.at_least(40, 4);
    let steps = scale.at_least(500, 10);
    finish(build_parts(CPU_KNOBS), CPU_KNOBS, fragments, steps)
}

/// The class names of the paper's hand-found beneficial partition for the
/// CPU scenario: the force-field/energy cluster *with its fragments*,
/// leaving the generics-hungry integrator at home.
pub fn biomer_manual_partition() -> Vec<String> {
    vec![
        "ForceField".into(),
        "BondEnergy".into(),
        "AngleEnergy".into(),
        "TorsionEnergy".into(),
        "Fragment".into(),
        "Molecule".into(),
    ]
}

fn finish(mut p: Parts, k: Knobs, fragments: u32, steps: u32) -> App {
    let phases = 8u32.min(fragments).min(steps);
    let mut body = startup_ops(&p);

    // Fragment growth front-loaded into the first 5 of 8 phases.
    let load_phases = (phases * 5 / 8).max(1);
    let frags_per_phase = fragments / load_phases;
    let steps_per_phase = (steps / phases).max(1);
    let groups = rotating_groups(p.web.len(), 10.min(p.web.len()), phases as usize);

    let mut frag_cursor: u16 = 0;
    for (phase, group) in groups.iter().enumerate().take(phases as usize) {
        let batch = if (phase as u32) == load_phases - 1 {
            fragments - u32::from(frag_cursor)
        } else if (phase as u32) < load_phases {
            frags_per_phase
        } else {
            0
        };
        for _ in 0..batch {
            body.push(Op::New {
                class: p.fragment,
                scalar_bytes: 20_000,
                ref_slots: 0,
                dst: Reg(1),
            });
            body.push(Op::PutSlot {
                slot: SLOT_FRAG_BASE + frag_cursor,
                src: Reg(1),
            });
            frag_cursor += 1;
        }
        let frag_slot = SLOT_FRAG_BASE + frag_cursor.saturating_sub(1);
        body.push(Op::Repeat {
            n: steps_per_phase,
            body: step_ops(&p, k, frag_slot, group),
        });
    }

    let m = p.builder.add_method(p.main, MethodDef::new("main", body));
    let entry_slots = SLOT_FRAG_BASE + fragments as u16 + 4;
    let program: Arc<Program> = Arc::new(
        p.builder
            .build(p.main, m, 2_000, entry_slots)
            .expect("Biomer model assembles"),
    );
    App {
        name: "Biomer",
        description: "Molecular editing application",
        resource_demands: "Memory/CPU intensive",
        program,
    }
}
