//! JavaNote — "simple text editor; content-based, memory intensive".
//!
//! The paper's headline application: loading and editing a 600 KB text
//! file exhausts a 6 MB Java heap because the in-memory representation
//! (character arrays, paragraph metadata, undo state, editor framework
//! objects) is an order of magnitude larger than the file.
//!
//! The model reproduces JavaNote's Table 2 shape at [`Scale::FULL`]:
//! 138 classes, ~6 800 objects created, ~1.2 M interaction events spread
//! over ~1 000 execution-graph edges — and its §5.1 behaviour: live memory
//! grows past the heap as paragraphs load, the natively implemented editor
//! widgets pin to the client, and the offloadable text classes carry ~90%
//! of the heap.

use std::sync::Arc;

use aide_vm::{MethodDef, NativeKind, Op, Program, ProgramBuilder, Reg};

use crate::common::{rotating_groups, Scale, Web, WebSpec};
use crate::App;

/// Paragraphs loaded over the run (each ≈ 20 KB of character data).
const PARAGRAPHS: u32 = 340;
/// Edit-loop iterations.
const EDIT_ITERS: u32 = 2_000;
/// Load/edit phases (paragraph loading interleaves with editing).
const PHASES: u32 = 10;

/// Entry-object slot layout.
const SLOT_EDITOR: u16 = 0;
const SLOT_TEXTBUFFER: u16 = 1;
const SLOT_UNDO_BASE: u16 = 2; // rotating undo slots (a deep undo history)
const UNDO_SLOTS: u16 = 400;
const SLOT_WEB_BASE: u16 = 410;
const WEB_CLASSES: usize = 124;
const SLOT_PARA_BASE: u16 = 410 + WEB_CLASSES as u16;

/// Builds the JavaNote model at the given scale.
///
/// # Panics
///
/// Panics only if the internal program assembly is inconsistent (a bug).
pub fn javanote(scale: Scale) -> App {
    let paragraphs = scale.at_least(PARAGRAPHS, 10);
    let iters = scale.at_least(EDIT_ITERS, 10);
    let phases = PHASES.min(paragraphs).min(iters);

    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");

    // Natively implemented editor widget layer: pinned to the client.
    let editor = b.add_native_class("Editor");
    let menu = b.add_native_class("MenuSystem");
    let status = b.add_native_class("StatusBar");
    let scroll = b.add_native_class("ScrollView");
    let fonts = b.add_native_class("FontMetrics");

    // Offloadable text model.
    let document = b.add_class("Document");
    let textbuffer = b.add_class("TextBuffer");
    let undolog = b.add_class("UndoEntry");
    let clipboard = b.add_class("Clipboard");
    let search = b.add_class("SearchIndex");
    let stringpool = b.add_class("StringPool");
    let paragraph = b.add_class("Paragraph");
    let chararray = b.add_array_class("CharArray");
    b.set_static_bytes(stringpool, 4_096);

    // Editor framework web (layout managers, borders, events, colors, ...).
    let web = Web::build(
        &mut b,
        "Widget",
        WebSpec {
            classes: WEB_CLASSES,
            neighbors: (6, 8),
            touch_work: (300, 700),
            leaf_work: 20,
            read_bytes: 24,
            temp_bytes: 0,
            instance_bytes: (40, 400),
            seed: 0x4a61_764e,
        },
    );

    // Editor::draw — framebuffer natives plus layout work.
    let draw = b.add_method(
        editor,
        MethodDef::new(
            "draw",
            vec![
                Op::Work { micros: 30_000 },
                Op::Native {
                    kind: NativeKind::Framebuffer,
                    work_micros: 8_000,
                    arg_bytes: 1_024,
                    ret_bytes: 0,
                },
                Op::Native {
                    kind: NativeKind::Framebuffer,
                    work_micros: 8_000,
                    arg_bytes: 512,
                    ret_bytes: 0,
                },
            ],
        ),
    );
    // Editor::render(paragraph) — the viewport dereferences the paragraph
    // and reads the visible character data itself.
    let render = b.add_method(
        editor,
        MethodDef::new(
            "render",
            vec![
                Op::GetSlotOf {
                    obj: Reg(0),
                    slot: 0,
                    dst: Reg(3),
                },
                Op::Read {
                    obj: Reg(3),
                    bytes: 256,
                },
                Op::Work { micros: 4_000 },
            ],
        ),
    );

    // TextBuffer::process(paragraph) — editing work over the text model:
    // string natives (copies/compares) plus paragraph reads.
    let process = b.add_method(
        textbuffer,
        MethodDef::new(
            "process",
            vec![
                Op::Work { micros: 30_000 },
                Op::Read {
                    obj: Reg(0),
                    bytes: 128,
                },
                Op::GetSlotOf {
                    obj: Reg(0),
                    slot: 0,
                    dst: Reg(3),
                },
                Op::Read {
                    obj: Reg(3),
                    bytes: 192,
                },
                Op::Write {
                    obj: Reg(3),
                    bytes: 64,
                },
                Op::Native {
                    kind: NativeKind::StringOp,
                    work_micros: 2_000,
                    arg_bytes: 64,
                    ret_bytes: 64,
                },
                Op::Native {
                    kind: NativeKind::StringOp,
                    work_micros: 2_000,
                    arg_bytes: 64,
                    ret_bytes: 64,
                },
                Op::Native {
                    kind: NativeKind::StringOp,
                    work_micros: 2_000,
                    arg_bytes: 32,
                    ret_bytes: 32,
                },
                Op::GetStatic {
                    class: stringpool,
                    bytes: 32,
                },
            ],
        ),
    );
    // TextBuffer::index(paragraph) — performed at load time.
    let index = b.add_method(
        textbuffer,
        MethodDef::new(
            "index",
            vec![
                Op::Work { micros: 5_000 },
                Op::Read {
                    obj: Reg(0),
                    bytes: 64,
                },
                Op::GetSlotOf {
                    obj: Reg(0),
                    slot: 0,
                    dst: Reg(3),
                },
                Op::Read {
                    obj: Reg(3),
                    bytes: 512,
                },
                Op::Native {
                    kind: NativeKind::StringOp,
                    work_micros: 1_000,
                    arg_bytes: 128,
                    ret_bytes: 16,
                },
            ],
        ),
    );

    // MenuSystem / StatusBar / ScrollView / FontMetrics / helpers.
    let menu_poll = b.add_method(
        menu,
        MethodDef::new(
            "poll",
            vec![
                Op::Work { micros: 2_000 },
                Op::Native {
                    kind: NativeKind::UiToolkit,
                    work_micros: 1_000,
                    arg_bytes: 64,
                    ret_bytes: 16,
                },
            ],
        ),
    );
    let status_update = b.add_method(
        status,
        MethodDef::new(
            "update",
            vec![
                Op::Work { micros: 1_500 },
                Op::Native {
                    kind: NativeKind::Framebuffer,
                    work_micros: 500,
                    arg_bytes: 128,
                    ret_bytes: 0,
                },
            ],
        ),
    );
    let scroll_tick = b.add_method(
        scroll,
        MethodDef::new(
            "tick",
            vec![
                Op::Work { micros: 1_500 },
                Op::Native {
                    kind: NativeKind::SystemInfo,
                    work_micros: 200,
                    arg_bytes: 16,
                    ret_bytes: 16,
                },
            ],
        ),
    );
    let fonts_measure = b.add_method(
        fonts,
        MethodDef::new(
            "measure",
            vec![
                Op::Work { micros: 1_000 },
                Op::Native {
                    kind: NativeKind::StringOp,
                    work_micros: 300,
                    arg_bytes: 48,
                    ret_bytes: 8,
                },
            ],
        ),
    );
    let search_update = b.add_method(
        search,
        MethodDef::new(
            "update",
            vec![
                Op::Work { micros: 2_000 },
                Op::Read {
                    obj: Reg(0),
                    bytes: 96,
                },
            ],
        ),
    );
    let clip_copy = b.add_method(
        clipboard,
        MethodDef::new(
            "copy",
            vec![
                Op::Work { micros: 800 },
                Op::Read {
                    obj: Reg(0),
                    bytes: 200,
                },
            ],
        ),
    );
    let autosave = b.add_method(
        document,
        MethodDef::new(
            "autosave",
            vec![
                Op::Work { micros: 3_000 },
                Op::Native {
                    kind: NativeKind::FileIo,
                    work_micros: 2_000,
                    arg_bytes: 2_048,
                    ret_bytes: 8,
                },
            ],
        ),
    );

    // ---- main --------------------------------------------------------

    let mut body: Vec<Op> = Vec::new();
    // Startup: core objects + framework web.
    body.push(Op::New {
        class: editor,
        scalar_bytes: 3_000,
        ref_slots: 0,
        dst: Reg(0),
    });
    body.push(Op::PutSlot {
        slot: SLOT_EDITOR,
        src: Reg(0),
    });
    body.push(Op::New {
        class: textbuffer,
        scalar_bytes: 2_000,
        ref_slots: 0,
        dst: Reg(0),
    });
    body.push(Op::PutSlot {
        slot: SLOT_TEXTBUFFER,
        src: Reg(0),
    });
    for (class, bytes) in [
        (document, 1_200u32),
        (clipboard, 600),
        (search, 2_400),
        (stringpool, 1_000),
        (menu, 900),
        (status, 300),
        (scroll, 500),
        (fonts, 700),
    ] {
        body.push(Op::New {
            class,
            scalar_bytes: bytes,
            ref_slots: 0,
            dst: Reg(0),
        });
        // Core singletons parked in high web slots region after the web.
        body.push(Op::PutSlot {
            slot: SLOT_PARA_BASE + paragraphs as u16 + offset_of(class, &mut 0),
            src: Reg(0),
        });
    }
    body.extend(web.setup_ops(SLOT_WEB_BASE));

    // Interleaved load/edit phases. Loading is front-loaded into the first
    // 60% of the phases so memory pressure arrives mid-session and leaves a
    // substantial remotely executed tail (as in the paper's scenario, where
    // the heap is exhausted while the file loads).
    let load_phases = (phases * 6 / 10).max(1);
    let per_phase_paragraphs = paragraphs / load_phases;
    let per_phase_iters = iters / phases;
    let touch_groups = rotating_groups(web.len(), 38.min(web.len()), phases as usize * 2);

    let mut para_cursor: u16 = 0;
    for phase in 0..phases {
        // Load a batch of paragraphs: char data + metadata + indexing.
        let mut load_ops = Vec::new();
        let batch = if phase == load_phases - 1 {
            paragraphs - u32::from(para_cursor)
        } else if phase < load_phases {
            per_phase_paragraphs
        } else {
            0
        };
        for _ in 0..batch {
            load_ops.push(Op::New {
                class: chararray,
                scalar_bytes: 20_000,
                ref_slots: 0,
                dst: Reg(1),
            });
            load_ops.push(Op::New {
                class: paragraph,
                scalar_bytes: 150,
                ref_slots: 3,
                dst: Reg(2),
            });
            load_ops.push(Op::PutSlotOf {
                obj: Reg(2),
                slot: 0,
                src: Reg(1),
            });
            // Style run: a small metadata object kept alive per paragraph.
            for slot in [1u16] {
                load_ops.push(Op::New {
                    class: paragraph,
                    scalar_bytes: 120,
                    ref_slots: 0,
                    dst: Reg(4),
                });
                load_ops.push(Op::PutSlotOf {
                    obj: Reg(2),
                    slot,
                    src: Reg(4),
                });
            }
            load_ops.push(Op::PutSlot {
                slot: SLOT_PARA_BASE + para_cursor,
                src: Reg(2),
            });
            // Index the new paragraph.
            load_ops.push(Op::GetSlot {
                slot: SLOT_TEXTBUFFER,
                dst: Reg(3),
            });
            load_ops.push(Op::Call {
                obj: Reg(3),
                class: textbuffer,
                method: index,
                arg_bytes: 16,
                ret_bytes: 8,
                args: vec![Reg(2)],
            });
            para_cursor += 1;
        }
        body.extend(load_ops);

        // Edit iterations for this phase (two rotating variants).
        for half in 0..2u32 {
            let group = &touch_groups[(phase * 2 + half) as usize];
            let mut iter_body: Vec<Op> = Vec::new();
            // Pick a visible paragraph for this variant (already loaded).
            let visible = SLOT_PARA_BASE
                + (phase.min(load_phases - 1) * per_phase_paragraphs.max(1) / 2) as u16;
            iter_body.push(Op::GetSlot {
                slot: visible,
                dst: Reg(1),
            });
            iter_body.push(Op::GetSlot {
                slot: SLOT_TEXTBUFFER,
                dst: Reg(2),
            });
            iter_body.push(Op::GetSlot {
                slot: SLOT_EDITOR,
                dst: Reg(3),
            });
            // Keystroke: process text, update undo, redraw.
            iter_body.push(Op::Call {
                obj: Reg(2),
                class: textbuffer,
                method: process,
                arg_bytes: 24,
                ret_bytes: 16,
                args: vec![Reg(1)],
            });
            iter_body.push(Op::New {
                class: undolog,
                scalar_bytes: 800,
                ref_slots: 0,
                dst: Reg(5),
            });
            iter_body.push(Op::PutSlot {
                slot: SLOT_UNDO_BASE + ((phase * 7 + half * 3) % u32::from(UNDO_SLOTS)) as u16,
                src: Reg(5),
            });
            iter_body.push(Op::Call {
                obj: Reg(3),
                class: editor,
                method: draw,
                arg_bytes: 16,
                ret_bytes: 0,
                args: vec![],
            });
            // Widget framework activity.
            iter_body.extend(web.touch_ops(SLOT_WEB_BASE, group.iter().copied()));
            for _ in 0..2 {
                iter_body.push(Op::New {
                    class: stringpool,
                    scalar_bytes: 240,
                    ref_slots: 0,
                    dst: Reg(7),
                });
                iter_body.push(Op::Clear { reg: Reg(7) });
            }
            iter_body.push(Op::Work { micros: 8_000 });

            body.push(Op::Repeat {
                n: (per_phase_iters / 2).max(1),
                body: iter_body,
            });

            // Chrome updates and viewport renders run at an eighth of the
            // keystroke rate.
            let mut chrome_body = vec![
                Op::GetSlot {
                    slot: visible,
                    dst: Reg(1),
                },
                Op::GetSlot {
                    slot: SLOT_EDITOR,
                    dst: Reg(3),
                },
                Op::Call {
                    obj: Reg(3),
                    class: editor,
                    method: render,
                    arg_bytes: 8,
                    ret_bytes: 64,
                    args: vec![Reg(1)],
                },
            ];
            for (class, method, arg_para) in [
                (menu, menu_poll, false),
                (status, status_update, false),
                (scroll, scroll_tick, false),
                (fonts, fonts_measure, false),
                (search, search_update, true),
                (clipboard, clip_copy, true),
            ] {
                chrome_body.push(Op::GetSlot {
                    slot: SLOT_PARA_BASE + paragraphs as u16 + offset_of(class, &mut 0),
                    dst: Reg(6),
                });
                chrome_body.push(Op::Call {
                    obj: Reg(6),
                    class,
                    method,
                    arg_bytes: 12,
                    ret_bytes: 8,
                    args: if arg_para { vec![Reg(1)] } else { vec![] },
                });
                chrome_body.push(Op::Work { micros: 10_000 });
            }
            body.push(Op::Repeat {
                n: (per_phase_iters / 8).max(1),
                body: chrome_body,
            });
        }
        // Periodic document autosave (FileIo native).
        body.push(Op::GetSlot {
            slot: SLOT_PARA_BASE + paragraphs as u16 + offset_of(document, &mut 0),
            dst: Reg(6),
        });
        body.push(Op::Call {
            obj: Reg(6),
            class: document,
            method: autosave,
            arg_bytes: 32,
            ret_bytes: 8,
            args: vec![],
        });
    }

    let m = b.add_method(main, MethodDef::new("main", body));
    let entry_slots = SLOT_PARA_BASE + paragraphs as u16 + 16;
    let program: Arc<Program> = Arc::new(
        b.build(main, m, 2_000, entry_slots)
            .expect("JavaNote model assembles"),
    );
    App {
        name: "JavaNote",
        description: "Simple text editor",
        resource_demands: "Content-based, memory intensive",
        program,
    }
}

/// Stable slot offsets for the core singletons parked after the paragraph
/// region. Offsets are derived from the class id so the load and use sites
/// agree without shared state.
fn offset_of(class: aide_vm::ClassId, _: &mut u8) -> u16 {
    (class.0 % 16) as u16
}
