//! Tracer — "interactive Java raytracer; CPU intensive, low interaction".
//!
//! Progressive block rendering: the ray engine, shader, and sampler are
//! offloadable compute with a moderate stateless-math appetite; the
//! natively implemented window paints each finished block (progressive
//! preview). Interaction with the client is *low* — the paper's best case
//! for offloading, reaching ~15% savings with both enhancements.

use std::sync::Arc;

use aide_vm::{MethodDef, NativeKind, Op, Program, ProgramBuilder, Reg};

use crate::common::{rotating_groups, Scale, Web, WebSpec};
use crate::App;

/// Image blocks rendered over the session.
const BLOCKS: u32 = 200;
/// Math-native calls per block.
const MATH_CALLS_PER_BLOCK: u32 = 3_000;

const SLOT_WINDOW: u16 = 0;
const SLOT_ENGINE: u16 = 1;
const SLOT_SHADER: u16 = 2;
const SLOT_SAMPLER: u16 = 3;
const SLOT_SCENE: u16 = 4;
const SLOT_PIXBUF: u16 = 5;
const SLOT_TEXTURE: u16 = 6;
const SLOT_WEB_BASE: u16 = 7;
const WEB_CLASSES: usize = 14;

/// Builds the Tracer model at the given scale.
///
/// # Panics
///
/// Panics only if the internal program assembly is inconsistent (a bug).
pub fn tracer(scale: Scale) -> App {
    let blocks = scale.at_least(BLOCKS, 4);
    let math_calls = scale.at_least(MATH_CALLS_PER_BLOCK, 30);

    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let window = b.add_native_class("PreviewWindow");
    let engine = b.add_class("RayEngine");
    let shader = b.add_class("Shader");
    let sampler = b.add_class("Sampler");
    let scene = b.add_class("SceneGraph");
    let pixels = b.add_array_class("FloatArray");

    let web = Web::build(
        &mut b,
        "Trc",
        WebSpec {
            classes: WEB_CLASSES,
            neighbors: (2, 3),
            touch_work: (80, 200),
            leaf_work: 8,
            read_bytes: 12,
            temp_bytes: 60,
            instance_bytes: (30, 250),
            seed: 0x7ace_0001,
        },
    );

    // PreviewWindow::paint(block) — progressive preview (client-heavy).
    let paint = b.add_method(
        window,
        MethodDef::new(
            "paint",
            vec![
                Op::Read {
                    obj: Reg(0),
                    bytes: 32_768,
                },
                Op::Work { micros: 22_000_000 },
                Op::Native {
                    kind: NativeKind::Framebuffer,
                    work_micros: 500_000,
                    arg_bytes: 16_384,
                    ret_bytes: 0,
                },
            ],
        ),
    );

    // RayEngine::trace(scene, pixels) — ray casting with math natives.
    let trace = b.add_method(
        engine,
        MethodDef::new(
            "trace",
            vec![
                Op::Read {
                    obj: Reg(0),
                    bytes: 2_048,
                },
                Op::Work { micros: 4_500_000 },
                Op::Repeat {
                    n: math_calls / 2,
                    body: vec![Op::Native {
                        kind: NativeKind::Math,
                        work_micros: 100,
                        arg_bytes: 16,
                        ret_bytes: 8,
                    }],
                },
                Op::Write {
                    obj: Reg(1),
                    bytes: 8_192,
                },
            ],
        ),
    );
    let shade = b.add_method(
        shader,
        MethodDef::new(
            "shade",
            vec![
                Op::Read {
                    obj: Reg(1),
                    bytes: 4_096,
                },
                Op::Work { micros: 1_500_000 },
                Op::Repeat {
                    n: math_calls / 3,
                    body: vec![Op::Native {
                        kind: NativeKind::Math,
                        work_micros: 90,
                        arg_bytes: 16,
                        ret_bytes: 8,
                    }],
                },
                Op::Write {
                    obj: Reg(1),
                    bytes: 4_096,
                },
            ],
        ),
    );
    let sample = b.add_method(
        sampler,
        MethodDef::new(
            "sample",
            vec![
                Op::Work { micros: 500_000 },
                Op::Repeat {
                    n: math_calls / 6,
                    body: vec![Op::Native {
                        kind: NativeKind::Math,
                        work_micros: 80,
                        arg_bytes: 16,
                        ret_bytes: 8,
                    }],
                },
            ],
        ),
    );
    let scene_query = b.add_method(
        scene,
        MethodDef::new(
            "query",
            vec![
                Op::Read {
                    obj: Reg(0),
                    bytes: 1_024,
                },
                Op::Work { micros: 300_000 },
            ],
        ),
    );

    // ---- main --------------------------------------------------------
    let mut body: Vec<Op> = Vec::new();
    for (class, bytes, slot) in [
        (window, 4_000u32, SLOT_WINDOW),
        (engine, 2_500, SLOT_ENGINE),
        (shader, 1_500, SLOT_SHADER),
        (sampler, 900, SLOT_SAMPLER),
        (scene, 150_000, SLOT_SCENE),
    ] {
        body.push(Op::New {
            class,
            scalar_bytes: bytes,
            ref_slots: 0,
            dst: Reg(0),
        });
        body.push(Op::PutSlot { slot, src: Reg(0) });
    }
    body.push(Op::New {
        class: pixels,
        scalar_bytes: 393_216, // pixel accumulation buffer
        ref_slots: 0,
        dst: Reg(0),
    });
    body.push(Op::PutSlot {
        slot: SLOT_PIXBUF,
        src: Reg(0),
    });
    body.push(Op::New {
        class: pixels,
        scalar_bytes: 131_072, // texture atlas (same array class)
        ref_slots: 0,
        dst: Reg(0),
    });
    body.push(Op::PutSlot {
        slot: SLOT_TEXTURE,
        src: Reg(0),
    });
    body.extend(web.setup_ops(SLOT_WEB_BASE));

    let groups = rotating_groups(web.len(), 4.min(web.len()), 2);
    for group in &groups {
        let mut block = vec![
            Op::GetSlot {
                slot: SLOT_SCENE,
                dst: Reg(0),
            },
            Op::GetSlot {
                slot: SLOT_PIXBUF,
                dst: Reg(1),
            },
        ];
        for (slot, class, method, args) in [
            (SLOT_SAMPLER, sampler, sample, vec![]),
            (SLOT_ENGINE, engine, trace, vec![Reg(0), Reg(1)]),
            (SLOT_SHADER, shader, shade, vec![Reg(0), Reg(1)]),
            (SLOT_SCENE, scene, scene_query, vec![Reg(0)]),
        ] {
            block.push(Op::GetSlot { slot, dst: Reg(3) });
            block.push(Op::Call {
                obj: Reg(3),
                class,
                method,
                arg_bytes: 16,
                ret_bytes: 8,
                args,
            });
        }
        // Paint the finished block (low interaction: once per block).
        block.push(Op::GetSlot {
            slot: SLOT_WINDOW,
            dst: Reg(3),
        });
        block.push(Op::Call {
            obj: Reg(3),
            class: window,
            method: paint,
            arg_bytes: 16,
            ret_bytes: 0,
            args: vec![Reg(1)],
        });
        block.extend(web.touch_ops(SLOT_WEB_BASE, group.iter().copied()));
        body.push(Op::Repeat {
            n: (blocks / 2).max(1),
            body: block,
        });
    }

    let m = b.add_method(main, MethodDef::new("main", body));
    let entry_slots = SLOT_WEB_BASE + WEB_CLASSES as u16 + 4;
    let program: Arc<Program> = Arc::new(
        b.build(main, m, 2_000, entry_slots)
            .expect("Tracer model assembles"),
    );
    App {
        name: "Tracer",
        description: "Interactive Java raytracer",
        resource_demands: "CPU intensive, low interaction",
        program,
    }
}
