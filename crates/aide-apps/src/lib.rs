//! Models of the paper's five evaluation applications (Table 1).
//!
//! The originals are Java programs we cannot run (JavaNote, Dia, Biomer,
//! Voxel, Tracer); these are deterministic, seeded reconstructions of their
//! *shapes* — class counts, interaction webs, native-call mixes, memory
//! growth, and CPU distribution — expressed as [`aide_vm::Program`]s. Each
//! model is calibrated so the paper's experiments reproduce: JavaNote
//! matches Table 2's execution metrics and exhausts a 6 MB heap; Biomer's
//! tight coupling makes offloading expensive; Voxel and Tracer are
//! CPU-bound with stateless math natives and shared primitive arrays.
//!
//! # Examples
//!
//! ```
//! use aide_apps::{javanote, Scale};
//!
//! // A 5%-scale JavaNote for quick tests.
//! let app = javanote(Scale(0.05));
//! assert_eq!(app.name, "JavaNote");
//! assert_eq!(app.program.class_count(), 138);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use aide_vm::Program;

mod biomer;
mod common;
mod dia;
mod javanote;
mod tracer;
mod voxel;

pub use biomer::{biomer, biomer_cpu, biomer_manual_partition};
pub use common::{Scale, Web, WebSpec};
pub use dia::dia;
pub use javanote::javanote;
pub use tracer::tracer;
pub use voxel::voxel;

/// A built application model.
#[derive(Debug, Clone)]
pub struct App {
    /// Application name (Table 1).
    pub name: &'static str,
    /// One-line description (Table 1).
    pub description: &'static str,
    /// Resource-demand characterization (Table 1).
    pub resource_demands: &'static str,
    /// The executable program.
    pub program: Arc<Program>,
}

/// The three memory-experiment applications (§5.1): JavaNote, Dia, Biomer.
pub fn memory_apps(scale: Scale) -> Vec<App> {
    vec![javanote(scale), dia(scale), biomer(scale)]
}

/// The three processing-experiment applications (§5.2): Voxel, Tracer,
/// Biomer (CPU-flavoured scenario).
pub fn cpu_apps(scale: Scale) -> Vec<App> {
    vec![voxel(scale), tracer(scale), biomer_cpu(scale)]
}

/// The full Table 1 catalogue.
pub fn all_apps(scale: Scale) -> Vec<App> {
    vec![
        javanote(scale),
        dia(scale),
        biomer(scale),
        voxel(scale),
        tracer(scale),
    ]
}
