//! Dia — "image manipulation program; content-based, memory intensive".
//!
//! An image editor: the open image is tiled into pixel arrays, filter
//! passes produce retained history layers (live memory grows past the
//! heap), and the natively implemented canvas redraws from tile data every
//! step — so after offloading, redraws become remote reads. Dia's
//! remote-execution overhead sits between JavaNote's (colder cut) and
//! Biomer's (hotter cut): ≈8.5% under the initial policy (Figure 6).

use std::sync::Arc;

use aide_vm::{MethodDef, NativeKind, Op, Program, ProgramBuilder, Reg};

use crate::common::{rotating_groups, Scale, Web, WebSpec};
use crate::App;

/// Tiles of the base image (each 20 KB of pixels ≈ a 2 MB image).
const BASE_TILES: u32 = 100;
/// History layers retained while filtering (each adds tiles).
const HISTORY_LAYERS: u32 = 10;
/// Tiles per history layer.
const LAYER_TILES: u32 = 28;
/// Editing steps.
const STEPS: u32 = 1_200;

const SLOT_CANVAS: u16 = 0;
const SLOT_IMAGE: u16 = 1;
const SLOT_FILTER_BASE: u16 = 2; // 4 filters, then toolbar/palette/layer
const SLOT_WEB_BASE: u16 = 12;
const WEB_CLASSES: usize = 58;
const SLOT_TILE_BASE: u16 = 12 + WEB_CLASSES as u16;

/// Builds the Dia model at the given scale.
///
/// # Panics
///
/// Panics only if the internal program assembly is inconsistent (a bug).
pub fn dia(scale: Scale) -> App {
    let base_tiles = scale.at_least(BASE_TILES, 8);
    let layers = scale.at_least(HISTORY_LAYERS, 2);
    let layer_tiles = scale.at_least(LAYER_TILES, 4);
    let steps = scale.at_least(STEPS, 10);

    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");

    // Natively implemented display layer.
    let canvas = b.add_native_class("Canvas");
    let toolbar = b.add_native_class("Toolbar");
    let palette = b.add_native_class("Palette");

    // Offloadable image model.
    let image = b.add_class("Image");
    let layer = b.add_class("Layer");
    let histogram = b.add_class("Histogram");
    let tile = b.add_array_class("PixelArray");
    let filters = [
        b.add_class("BlurFilter"),
        b.add_class("SharpenFilter"),
        b.add_class("ColorMapFilter"),
        b.add_class("DistortFilter"),
    ];

    let web = Web::build(
        &mut b,
        "DiaUi",
        WebSpec {
            classes: WEB_CLASSES,
            neighbors: (3, 5),
            touch_work: (200, 500),
            leaf_work: 15,
            read_bytes: 20,
            temp_bytes: 180,
            instance_bytes: (50, 500),
            seed: 0xD1A_0001,
        },
    );

    // Canvas::redraw(tile) — reads pixels and blits (client-bound).
    let redraw = b.add_method(
        canvas,
        MethodDef::new(
            "redraw",
            vec![
                Op::Read {
                    obj: Reg(0),
                    bytes: 2_048,
                },
                Op::Work { micros: 38_000 },
                Op::Native {
                    kind: NativeKind::Framebuffer,
                    work_micros: 16_000,
                    arg_bytes: 2_048,
                    ret_bytes: 0,
                },
            ],
        ),
    );
    let toolbar_poll = b.add_method(
        toolbar,
        MethodDef::new(
            "poll",
            vec![
                Op::Work { micros: 2_000 },
                Op::Native {
                    kind: NativeKind::UiToolkit,
                    work_micros: 1_000,
                    arg_bytes: 48,
                    ret_bytes: 16,
                },
            ],
        ),
    );
    let palette_pick = b.add_method(
        palette,
        MethodDef::new(
            "pick",
            vec![
                Op::Work { micros: 1_200 },
                Op::Native {
                    kind: NativeKind::Framebuffer,
                    work_micros: 600,
                    arg_bytes: 96,
                    ret_bytes: 4,
                },
            ],
        ),
    );

    // Filter::apply(tile) — pixel crunching with stateless string/math
    // style natives (memcpy-ish row operations).
    let mut filter_apply = Vec::new();
    for &f in &filters {
        filter_apply.push(b.add_method(
            f,
            MethodDef::new(
                "apply",
                vec![
                    Op::Read {
                        obj: Reg(0),
                        bytes: 4_096,
                    },
                    Op::Work { micros: 25_000 },
                    Op::Native {
                        kind: NativeKind::StringOp,
                        work_micros: 3_000,
                        arg_bytes: 256,
                        ret_bytes: 256,
                    },
                    Op::Write {
                        obj: Reg(0),
                        bytes: 4_096,
                    },
                ],
            ),
        ));
    }
    let histo_update = b.add_method(
        histogram,
        MethodDef::new(
            "update",
            vec![
                Op::Read {
                    obj: Reg(0),
                    bytes: 1_024,
                },
                Op::Work { micros: 6_000 },
            ],
        ),
    );
    let image_commit = b.add_method(
        image,
        MethodDef::new(
            "commit",
            vec![
                Op::Work { micros: 4_000 },
                Op::Native {
                    kind: NativeKind::FileIo,
                    work_micros: 3_000,
                    arg_bytes: 4_096,
                    ret_bytes: 8,
                },
            ],
        ),
    );

    // ---- main --------------------------------------------------------
    let mut body: Vec<Op> = Vec::new();
    for (class, bytes, slot) in [(canvas, 4_000u32, SLOT_CANVAS), (image, 2_000, SLOT_IMAGE)] {
        body.push(Op::New {
            class,
            scalar_bytes: bytes,
            ref_slots: 0,
            dst: Reg(0),
        });
        body.push(Op::PutSlot { slot, src: Reg(0) });
    }
    for (i, &f) in filters.iter().enumerate() {
        body.push(Op::New {
            class: f,
            scalar_bytes: 600,
            ref_slots: 0,
            dst: Reg(0),
        });
        body.push(Op::PutSlot {
            slot: SLOT_FILTER_BASE + i as u16,
            src: Reg(0),
        });
    }
    body.push(Op::New {
        class: toolbar,
        scalar_bytes: 800,
        ref_slots: 0,
        dst: Reg(0),
    });
    body.push(Op::PutSlot {
        slot: SLOT_FILTER_BASE + 4,
        src: Reg(0),
    });
    body.push(Op::New {
        class: palette,
        scalar_bytes: 700,
        ref_slots: 0,
        dst: Reg(0),
    });
    body.push(Op::PutSlot {
        slot: SLOT_FILTER_BASE + 5,
        src: Reg(0),
    });
    body.extend(web.setup_ops(SLOT_WEB_BASE));

    // Open the image: base tiles.
    let mut tile_cursor: u16 = 0;
    for _ in 0..base_tiles {
        body.push(Op::New {
            class: tile,
            scalar_bytes: 20_000,
            ref_slots: 0,
            dst: Reg(1),
        });
        body.push(Op::PutSlot {
            slot: SLOT_TILE_BASE + tile_cursor,
            src: Reg(1),
        });
        tile_cursor += 1;
    }

    // Editing: `layers` filter passes, each followed by interactive steps.
    let steps_per_layer = (steps / layers).max(1);
    let groups = rotating_groups(web.len(), 12.min(web.len()), layers as usize);
    // Front-load history growth into the first 60% of the passes so the
    // heap wall arrives mid-session.
    let load_passes = (layers * 6 / 10).max(1);
    let tiles_per_pass = layers * layer_tiles / load_passes;
    for (li, group) in groups.iter().enumerate().take(layers as usize) {
        // The filter pass materializes a history layer of new tiles.
        body.push(Op::New {
            class: layer,
            scalar_bytes: 400,
            ref_slots: 0,
            dst: Reg(2),
        });
        body.push(Op::PutSlot {
            slot: SLOT_FILTER_BASE + 6,
            src: Reg(2),
        });
        let this_pass_tiles = if (li as u32) < load_passes {
            tiles_per_pass
        } else {
            0
        };
        for _ in 0..this_pass_tiles {
            body.push(Op::New {
                class: tile,
                scalar_bytes: 20_000,
                ref_slots: 0,
                dst: Reg(1),
            });
            body.push(Op::PutSlot {
                slot: SLOT_TILE_BASE + tile_cursor,
                src: Reg(1),
            });
            tile_cursor += 1;
        }

        // Interactive steps for this layer.
        let visible_tile = SLOT_TILE_BASE + (li as u16 * layer_tiles as u16) % tile_cursor.max(1);
        let filter = filters[li % filters.len()];
        let apply = filter_apply[li % filters.len()];
        let mut step_body = vec![
            Op::GetSlot {
                slot: visible_tile,
                dst: Reg(1),
            },
            Op::GetSlot {
                slot: SLOT_FILTER_BASE + (li % filters.len()) as u16,
                dst: Reg(2),
            },
            Op::GetSlot {
                slot: SLOT_CANVAS,
                dst: Reg(3),
            },
            // Apply the filter to the visible tile, then redraw — the
            // redraw reads tile data back into the canvas.
            Op::Call {
                obj: Reg(2),
                class: filter,
                method: apply,
                arg_bytes: 32,
                ret_bytes: 16,
                args: vec![Reg(1)],
            },
            Op::Call {
                obj: Reg(3),
                class: canvas,
                method: redraw,
                arg_bytes: 16,
                ret_bytes: 0,
                args: vec![Reg(1)],
            },
        ];
        // Histogram over the tile + chrome.
        step_body.push(Op::New {
            class: histogram,
            scalar_bytes: 2_100,
            ref_slots: 0,
            dst: Reg(5),
        });
        step_body.push(Op::Call {
            obj: Reg(5),
            class: histogram,
            method: histo_update,
            arg_bytes: 16,
            ret_bytes: 32,
            args: vec![Reg(1)],
        });
        step_body.push(Op::Clear { reg: Reg(5) });
        step_body.extend(web.touch_ops(SLOT_WEB_BASE, group.iter().copied()));
        step_body.push(Op::Work { micros: 9_000 });

        body.push(Op::Repeat {
            n: steps_per_layer,
            body: step_body,
        });

        // Toolbar/palette chrome at a quarter of the step rate.
        let mut chrome = Vec::new();
        for (slot, class, method) in [
            (SLOT_FILTER_BASE + 4, toolbar, toolbar_poll),
            (SLOT_FILTER_BASE + 5, palette, palette_pick),
        ] {
            chrome.push(Op::GetSlot { slot, dst: Reg(6) });
            chrome.push(Op::Call {
                obj: Reg(6),
                class,
                method,
                arg_bytes: 12,
                ret_bytes: 8,
                args: vec![],
            });
            chrome.push(Op::Work { micros: 12_000 });
        }
        body.push(Op::Repeat {
            n: (steps_per_layer / 4).max(1),
            body: chrome,
        });

        // Commit the layer (file I/O native on the image class).
        body.push(Op::GetSlot {
            slot: SLOT_IMAGE,
            dst: Reg(6),
        });
        body.push(Op::Call {
            obj: Reg(6),
            class: image,
            method: image_commit,
            arg_bytes: 64,
            ret_bytes: 8,
            args: vec![],
        });
    }

    let m = b.add_method(main, MethodDef::new("main", body));
    let entry_slots =
        SLOT_TILE_BASE + (base_tiles + load_passes * tiles_per_pass + layer_tiles) as u16 + 4;
    let program: Arc<Program> = Arc::new(
        b.build(main, m, 2_000, entry_slots)
            .expect("Dia model assembles"),
    );
    App {
        name: "Dia",
        description: "Image manipulation program",
        resource_demands: "Content-based, memory intensive",
        program,
    }
}
