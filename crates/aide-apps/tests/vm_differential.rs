//! Differential test for the interpreter overhaul: every application shape
//! from Table 1 must behave identically under the flat register VM and the
//! legacy tree-walker — same `RunSummary` (including the mutator/hook CPU
//! split and the logical op count) and the same monitor-event stream,
//! event for event.

use std::sync::{Arc, Mutex};

use aide_apps::{all_apps, Scale};
use aide_vm::{
    ClassId, ExecMode, GcReport, Interaction, Machine, MethodId, NativeKind, ObjectId, RunSummary,
    RuntimeHooks, VmConfig,
};

/// One recorded hook event, in delivery order.
#[derive(Debug, Clone, PartialEq)]
enum Ev {
    Interaction(Interaction),
    Alloc(ClassId, ObjectId, u64),
    Free(ClassId, u64, u64),
    Work(ClassId, f64),
    Native(ClassId, NativeKind, u32, u64, bool),
    StaticAccess(ClassId, ClassId, u64, bool),
    MethodExit(ClassId, MethodId),
    Gc(u64, u64, u64),
}

#[derive(Default)]
struct Recorder {
    events: Mutex<Vec<Ev>>,
}

impl RuntimeHooks for Recorder {
    fn on_interaction(&self, event: Interaction) {
        self.events.lock().unwrap().push(Ev::Interaction(event));
    }
    fn on_alloc(&self, class: ClassId, object: ObjectId, bytes: u64) {
        self.events
            .lock()
            .unwrap()
            .push(Ev::Alloc(class, object, bytes));
    }
    fn on_free(&self, class: ClassId, objects: u64, bytes: u64) {
        self.events
            .lock()
            .unwrap()
            .push(Ev::Free(class, objects, bytes));
    }
    fn on_work(&self, class: ClassId, micros: f64) {
        self.events.lock().unwrap().push(Ev::Work(class, micros));
    }
    fn on_native(&self, caller: ClassId, kind: NativeKind, work: u32, bytes: u64, remote: bool) {
        self.events
            .lock()
            .unwrap()
            .push(Ev::Native(caller, kind, work, bytes, remote));
    }
    fn on_static_access(&self, accessor: ClassId, class: ClassId, bytes: u64, remote: bool) {
        self.events
            .lock()
            .unwrap()
            .push(Ev::StaticAccess(accessor, class, bytes, remote));
    }
    fn on_method_exit(&self, class: ClassId, method: MethodId) {
        self.events
            .lock()
            .unwrap()
            .push(Ev::MethodExit(class, method));
    }
    fn on_gc(&self, report: &GcReport) {
        self.events.lock().unwrap().push(Ev::Gc(
            report.cycle,
            report.freed_objects,
            report.freed_bytes,
        ));
    }
}

fn run_app(
    program: Arc<aide_vm::Program>,
    mode: ExecMode,
    config: VmConfig,
) -> (RunSummary, Vec<Ev>) {
    let rec = Arc::new(Recorder::default());
    let mut machine = Machine::with_hooks(program, config, rec.clone());
    machine.set_exec_mode(mode);
    let summary = machine.run_entry().expect("app run succeeds");
    let events = rec.events.lock().unwrap().clone();
    (summary, events)
}

fn assert_identical(name: &str, config: VmConfig) {
    for app in all_apps(Scale(0.02)) {
        if app.name != name {
            continue;
        }
        let (flat, flat_events) = run_app(app.program.clone(), ExecMode::Flat, config);
        let (legacy, legacy_events) = run_app(app.program.clone(), ExecMode::Legacy, config);
        assert_eq!(
            flat, legacy,
            "{name}: RunSummary diverged between interpreters"
        );
        assert_eq!(
            flat_events.len(),
            legacy_events.len(),
            "{name}: event count diverged"
        );
        for (i, (f, l)) in flat_events.iter().zip(legacy_events.iter()).enumerate() {
            assert_eq!(f, l, "{name}: event {i} diverged");
        }
        assert!(flat.ops_executed > 0, "{name}: no ops counted");
        return;
    }
    panic!("unknown app {name}");
}

#[test]
fn javanote_is_mode_identical() {
    assert_identical("JavaNote", VmConfig::client(64 << 20));
}

#[test]
fn dia_is_mode_identical() {
    assert_identical("Dia", VmConfig::client(64 << 20));
}

#[test]
fn biomer_is_mode_identical() {
    assert_identical("Biomer", VmConfig::client(64 << 20));
}

#[test]
fn voxel_is_mode_identical() {
    assert_identical("Voxel", VmConfig::client(64 << 20));
}

#[test]
fn tracer_is_mode_identical() {
    // Tracer also exercises the monitoring cost split: the identical
    // streams must hold with per-event charging enabled.
    let mut config = VmConfig::client(64 << 20);
    config.cost.monitor_event_micros = 2.2;
    assert_identical("Tracer", config);
}
