//! Tests of the application models: structural invariants, determinism,
//! scaling behaviour, and executability.

use std::sync::Arc;

use aide_apps::{all_apps, biomer_manual_partition, cpu_apps, javanote, memory_apps, Scale};
use aide_vm::{CountingHooks, Machine, VmConfig};

#[test]
fn catalogue_matches_table_1() {
    let apps = all_apps(Scale(0.02));
    let names: Vec<&str> = apps.iter().map(|a| a.name).collect();
    assert_eq!(names, ["JavaNote", "Dia", "Biomer", "Voxel", "Tracer"]);
    for app in &apps {
        assert!(!app.description.is_empty());
        assert!(!app.resource_demands.is_empty());
        assert!(app.program.class_count() > 10, "{}", app.name);
    }
}

#[test]
fn class_counts_are_scale_invariant() {
    for scale in [Scale(0.02), Scale(0.3), Scale(1.0)] {
        let counts: Vec<usize> = all_apps(scale)
            .iter()
            .map(|a| a.program.class_count())
            .collect();
        assert_eq!(counts, [138, 70, 50, 26, 21]);
    }
}

#[test]
fn programs_are_deterministic() {
    for (a, b) in all_apps(Scale(0.05)).into_iter().zip(all_apps(Scale(0.05))) {
        assert_eq!(*a.program, *b.program, "{} differs across builds", a.name);
    }
}

#[test]
fn every_app_runs_on_a_plain_vm() {
    for app in all_apps(Scale(0.02)) {
        let hooks = Arc::new(CountingHooks::new());
        let machine = Machine::with_hooks(
            app.program.clone(),
            VmConfig::client(64 << 20),
            hooks.clone(),
        );
        let summary = machine
            .run_entry()
            .unwrap_or_else(|e| panic!("{} failed: {e}", app.name));
        assert!(summary.cpu_seconds > 0.0, "{}", app.name);
        assert!(
            hooks
                .interactions
                .load(std::sync::atomic::Ordering::Relaxed)
                > 0,
            "{}",
            app.name
        );
    }
}

#[test]
fn scale_controls_workload_volume() {
    let small = javanote(Scale(0.05));
    let large = javanote(Scale(0.2));
    let run = |app: aide_apps::App| {
        let hooks = Arc::new(CountingHooks::new());
        Machine::with_hooks(app.program, VmConfig::client(64 << 20), hooks.clone())
            .run_entry()
            .unwrap();
        hooks
            .interactions
            .load(std::sync::atomic::Ordering::Relaxed)
    };
    let (a, b) = (run(small), run(large));
    assert!(
        b > a * 2,
        "4x scale should yield >2x interactions ({a} vs {b})"
    );
}

#[test]
fn memory_apps_have_pinned_ui_and_offloadable_bulk() {
    for app in memory_apps(Scale(0.02)) {
        let pinned = app
            .program
            .classes()
            .iter()
            .filter(|c| c.native_impl)
            .count();
        assert!(pinned >= 2, "{} needs a native UI layer", app.name);
        // The content-based editors carry their bulk in primitive arrays
        // (the target of the Array enhancement); Biomer's bulk lives in
        // regular fragment objects.
        if app.name != "Biomer" {
            let arrays = app
                .program
                .classes()
                .iter()
                .filter(|c| c.is_primitive_array)
                .count();
            assert!(arrays >= 1, "{} needs primitive-array bulk data", app.name);
        }
    }
}

#[test]
fn cpu_apps_invoke_stateless_math() {
    for app in cpu_apps(Scale(0.02)) {
        let calls_math = app.program.classes().iter().any(|c| {
            !c.native_impl && c.calls_natives() && !c.calls_stateful_natives()
                || c.methods.iter().any(|_| false)
        });
        // At least one offloadable class invokes only stateless natives —
        // the target of the Figure 10 "Native" enhancement.
        assert!(
            calls_math
                || app
                    .program
                    .classes()
                    .iter()
                    .any(|c| !c.native_impl && c.calls_natives()),
            "{} should exercise native bouncing",
            app.name
        );
    }
}

#[test]
fn manual_partition_names_exist_in_biomer() {
    let app = aide_apps::biomer_cpu(Scale(0.02));
    for name in biomer_manual_partition() {
        assert!(
            app.program.class_by_name(&name).is_some(),
            "manual partition references unknown class {name}"
        );
    }
}

#[test]
fn tiny_scales_never_panic() {
    for scale in [Scale(0.0001), Scale(0.005)] {
        for app in all_apps(scale) {
            let machine = Machine::new(app.program.clone(), VmConfig::client(64 << 20));
            machine
                .run_entry()
                .unwrap_or_else(|e| panic!("{} at tiny scale: {e}", app.name));
        }
    }
}
