//! Atomic counters, gauges, fixed-bucket histograms, and the registry
//! that names them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::enabled;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments the counter by `n`.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move in both directions.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations (latencies in
/// microseconds, sizes in bytes, ...).
///
/// Bucket bounds are inclusive upper bounds; observations above the
/// last bound land in an implicit overflow (`+Inf`) bucket. Recording
/// is a binary search plus two relaxed atomic adds — no locks.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One slot per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds.
    /// Bounds must be strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation, or 0 if empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Serializable point-in-time state of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) counts; one extra overflow slot.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Observations recorded since `before` (per-bucket saturating
    /// subtraction; mismatched bounds fall back to `self`).
    pub fn delta_since(&self, before: &HistogramSnapshot) -> HistogramSnapshot {
        if before.bounds != self.bounds || before.counts.len() != self.counts.len() {
            return self.clone();
        }
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&before.counts)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(before.count),
            sum: self.sum.saturating_sub(before.sum),
        }
    }
}

/// The metrics registry: a name → handle map.
///
/// Registration takes a write lock; the returned `Arc` handles are then
/// lock-free to record into. Instrumented code caches handles at setup
/// and never touches the registry on the hot path.
#[derive(Debug, Default)]
pub struct Telemetry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Telemetry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Returns (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns (registering on first use) the histogram named `name`.
    /// The bounds apply only on first registration; later callers get
    /// the existing histogram regardless of the bounds they pass.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)))
            .clone()
    }

    /// Point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Serializable point-in-time state of a whole [`Telemetry`] registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// Activity since `before`: counters and histograms are subtracted
    /// (metrics absent from `before` keep their full value); gauges are
    /// instantaneous, so the `self` value is kept as-is.
    pub fn delta_since(&self, before: &TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        v.saturating_sub(before.counters.get(k).copied().unwrap_or(0)),
                    )
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| {
                    let d = match before.histograms.get(k) {
                        Some(b) => v.delta_since(b),
                        None => v.clone(),
                    };
                    (k.clone(), d)
                })
                .collect(),
        }
    }

    /// Counter value by name, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name, 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram state by name, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let _guard = crate::test_guard();
        let t = Telemetry::new();
        let c = t.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name, same handle.
        assert_eq!(t.counter("c").get(), 5);

        let g = t.gauge("g");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_observations() {
        let _guard = crate::test_guard();
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 0, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 5122);
        assert!((h.mean() - 1024.4).abs() < 1e-9);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _guard = crate::test_guard();
        let t = Telemetry::new();
        let c = t.counter("c");
        let h = t.histogram("h", &[10]);
        crate::set_enabled(false);
        c.inc();
        h.observe(5);
        crate::set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        h.observe(5);
        assert_eq!(c.get(), 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn snapshot_delta_reports_per_run_activity() {
        let _guard = crate::test_guard();
        let t = Telemetry::new();
        let c = t.counter("requests");
        let h = t.histogram("latency", &[10, 100]);
        c.add(3);
        h.observe(5);
        let before = t.snapshot();
        c.add(2);
        h.observe(50);
        h.observe(500);
        t.gauge("heap").set(42);
        let after = t.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.counter("requests"), 2);
        assert_eq!(d.gauge("heap"), 42);
        let hd = d.histogram("latency").expect("registered");
        assert_eq!(hd.count, 2);
        assert_eq!(hd.sum, 550);
        assert_eq!(hd.counts, vec![0, 1, 1]);
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let _guard = crate::test_guard();
        let t = Telemetry::new();
        t.counter("c").add(7);
        t.gauge("g").set(-2);
        t.histogram("h", &[1, 2]).observe(3);
        let snap = t.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: TelemetrySnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(snap, back);
    }
}
