//! Platform-wide observability for the AIDE reproduction.
//!
//! The paper's platform is driven entirely by measurement: the monitor
//! feeds a weighted execution graph to the partitioner and offloading
//! happens "only if it is beneficial". This crate makes the platform
//! *itself* measurable, with three pieces:
//!
//! - a lock-cheap **metrics registry** ([`Telemetry`]) of atomic
//!   counters, gauges, and fixed-bucket histograms. Handles are `Arc`s
//!   resolved once at registration; the hot path is a relaxed atomic op
//!   plus one branch on the global [`enabled`] switch.
//! - a bounded ring-buffer **flight recorder** ([`FlightRecorder`]) of
//!   structured [`PlatformEvent`]s, so a report can explain each offload
//!   decision (trigger, candidate scores, winner, migrations, failures)
//!   after the fact.
//! - **exporters**: JSON-lines snapshot dumps and a Prometheus-style
//!   text exposition (served by `aide-surrogate` on its RPC port via a
//!   `STATS` request), plus human-readable timeline rendering.
//!
//! The crate is a leaf: it depends only on `serde`/`serde_json`/
//! `parking_lot`, so every other crate in the workspace can record into
//! it without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod fleet;
mod metrics;
mod recorder;

pub use export::{prometheus_text, snapshot_json_lines};
pub use fleet::{FleetSnapshot, SessionLease};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Telemetry, TelemetrySnapshot};
pub use recorder::{
    events_json_lines, render_timeline, FlightRecorder, PlatformEvent, SpanRef, TimedEvent,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(true);

/// The process-wide metrics registry.
///
/// Instrumented code resolves handles here (once, at setup) so call
/// signatures across the workspace stay unchanged. Per-run numbers are
/// obtained by snapshotting before and after and taking
/// [`TelemetrySnapshot::delta_since`].
pub fn global() -> &'static Telemetry {
    GLOBAL.get_or_init(Telemetry::new)
}

/// Globally enables or disables metric recording.
///
/// When disabled, every recording call is a single relaxed load plus a
/// branch — the overhead bench uses this to price the enabled path
/// against a true baseline.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether metric recording is currently enabled (default: enabled).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The flight recorder's trace annotator: returns the recording thread's
/// active `(trace_id, span_id)`, if any. Registered by the tracing layer
/// (`aide_trace::install_recorder_annotator`); a plain function pointer
/// keeps this crate a leaf with no dependency on the span machinery.
static TRACE_ANNOTATOR: OnceLock<fn() -> Option<(u64, u64)>> = OnceLock::new();

/// Registers the span annotator consulted by [`FlightRecorder::record`]
/// and [`FlightRecorder::record_at`]. First registration wins; later
/// calls are no-ops (the annotator is process-global state).
pub fn set_trace_annotator(annotator: fn() -> Option<(u64, u64)>) {
    let _ = TRACE_ANNOTATOR.set(annotator);
}

pub(crate) fn annotate_with_trace() -> Option<(u64, u64)> {
    TRACE_ANNOTATOR.get().and_then(|f| f())
}

/// Serializes tests that record metrics against tests that flip the
/// global [`enabled`] switch, and restores the enabled state.
#[cfg(test)]
pub(crate) fn test_guard() -> parking_lot::MutexGuard<'static, ()> {
    static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
    let guard = LOCK.lock();
    set_enabled(true);
    guard
}

/// Canonical metric names, shared by all instrumented crates.
///
/// Naming follows Prometheus conventions: `_total` for counters, an
/// explicit unit suffix for histograms and gauges.
pub mod names {
    /// RPC requests issued by an endpoint (caller side).
    pub const RPC_REQUESTS: &str = "aide_rpc_requests_total";
    /// Real round-trip latency of RPC calls, in microseconds.
    pub const RPC_LATENCY_MICROS: &str = "aide_rpc_request_latency_micros";
    /// Simulated request+reply payload bytes charged to the link.
    pub const RPC_SIMULATED_BYTES: &str = "aide_rpc_simulated_bytes_total";
    /// RPC calls that returned an error (transport or remote).
    pub const RPC_ERRORS: &str = "aide_rpc_errors_total";
    /// Request frames resent by the retry machinery.
    pub const RPC_RETRIES: &str = "aide_rpc_retries_total";
    /// Duplicate requests answered from the at-most-once dedup cache
    /// (or suppressed while the original was still executing).
    pub const RPC_DEDUP_HITS: &str = "aide_rpc_dedup_hits_total";
    /// Replies that arrived after their caller had already timed out.
    pub const RPC_LATE_REPLIES: &str = "aide_rpc_late_replies_total";
    /// Incoming frames rejected by the wire codec (bad version, bad
    /// checksum, truncation, unknown tag).
    pub const RPC_BAD_FRAMES: &str = "aide_rpc_bad_frames_total";
    /// Frames written to a TCP carrier.
    pub const TCP_FRAMES_SENT: &str = "aide_tcp_frames_sent_total";
    /// Frames read from a TCP carrier.
    pub const TCP_FRAMES_RECEIVED: &str = "aide_tcp_frames_received_total";
    /// Encoded frame bytes written to a TCP carrier.
    pub const TCP_BYTES_SENT: &str = "aide_tcp_bytes_sent_total";
    /// Encoded frame bytes read from a TCP carrier.
    pub const TCP_BYTES_RECEIVED: &str = "aide_tcp_bytes_received_total";
    /// RPC requests issued over the in-memory channel backend.
    pub const RPC_BACKEND_INMEM_REQUESTS: &str = "aide_rpc_inmem_requests_total";
    /// RPC requests issued over the TCP backend.
    pub const RPC_BACKEND_TCP_REQUESTS: &str = "aide_rpc_tcp_requests_total";
    /// RPC requests issued over the emulated virtual-time backend.
    pub const RPC_BACKEND_EMU_REQUESTS: &str = "aide_rpc_emu_requests_total";
    /// Frame-buffer pool acquires served by reusing a shelved buffer.
    pub const RPC_POOL_HITS: &str = "aide_rpc_pool_hits_total";
    /// Frame-buffer pool acquires that started from an empty buffer.
    pub const RPC_POOL_MISSES: &str = "aide_rpc_pool_misses_total";
    /// Capacity (bytes) of freshly allocated frame buffers retired so far.
    pub const RPC_POOL_ALLOCATED_BYTES: &str = "aide_rpc_pool_allocated_bytes_total";
    /// Capacity (bytes) of reused frame buffers retired so far.
    pub const RPC_POOL_RECYCLED_BYTES: &str = "aide_rpc_pool_recycled_bytes_total";
    /// Frame buffers currently resting on the pool shelf.
    pub const RPC_POOL_BUFFERS: &str = "aide_rpc_pool_buffers";
    /// Logical RPC sessions opened over multiplexed connections.
    pub const MUX_SESSIONS: &str = "aide_mux_sessions_total";
    /// Frames carried over multiplexed connections (both directions).
    pub const MUX_FRAMES: &str = "aide_mux_frames_total";
    /// Encoded bytes carried over multiplexed connections (both directions).
    pub const MUX_BYTES: &str = "aide_mux_bytes_total";

    /// Completed GC cycles.
    pub const GC_CYCLES: &str = "aide_gc_cycles_total";
    /// GC pause durations (modeled), in microseconds.
    pub const GC_PAUSE_MICROS: &str = "aide_gc_pause_micros";
    /// Bytes reclaimed by GC.
    pub const GC_FREED_BYTES: &str = "aide_gc_freed_bytes_total";
    /// Live heap bytes after the most recent GC.
    pub const HEAP_USED_BYTES: &str = "aide_heap_used_bytes";
    /// Free heap bytes after the most recent GC.
    pub const HEAP_FREE_BYTES: &str = "aide_heap_free_bytes";

    /// Export leases extended by piggybacked or explicit renewals.
    pub const GC_LEASES_RENEWED: &str = "aide_gc_leases_renewed_total";
    /// Export leases that ran past their TTL and were swept.
    pub const GC_LEASES_EXPIRED: &str = "aide_gc_leases_expired_total";
    /// Release batches dropped because their release sequence number was
    /// at or below the session watermark (a retried or replayed batch).
    pub const GC_RELEASE_DUPLICATE: &str = "aide_gc_release_duplicate_total";
    /// Release batches dropped because they carried an epoch older than
    /// the peer's current lease epoch (a zombie from before a failover).
    pub const GC_RELEASE_STALE: &str = "aide_gc_release_stale_total";
    /// Releases naming an object that is not in the export table.
    pub const GC_RELEASE_UNKNOWN: &str = "aide_gc_release_unknown_total";
    /// Exported objects reclaimed by stale-epoch sweeps (failover or
    /// session teardown), not by peer releases.
    pub const GC_EXPORTS_RECLAIMED: &str = "aide_gc_exports_reclaimed_total";
    /// Distinct objects currently held in an export table.
    pub const GC_EXPORT_ENTRIES: &str = "aide_gc_export_table_entries";
    /// Distinct remote objects currently held in an import table.
    pub const GC_IMPORT_ENTRIES: &str = "aide_gc_import_table_entries";
    /// External-root pins taken by VMs for exported objects.
    pub const VM_EXTERNAL_PINS: &str = "aide_vm_external_pins_total";
    /// External-root unpins released by VMs.
    pub const VM_EXTERNAL_UNPINS: &str = "aide_vm_external_unpins_total";
    /// Unpin calls naming an object that carried no pin — the
    /// double-unpin symptom the lease state machine must never produce.
    pub const VM_UNPIN_UNBALANCED: &str = "aide_vm_external_unpin_unbalanced_total";
    /// Flat-interpreter inline-cache hits (local-vs-remote check answered
    /// by a single compare-and-branch).
    pub const VM_IC_HITS: &str = "aide_vm_ic_hits_total";
    /// Flat-interpreter inline-cache misses (heap lookup or remote path).
    pub const VM_IC_MISSES: &str = "aide_vm_ic_miss_total";
    /// Logical VM ops dispatched (identical count under either
    /// interpreter; flat control ops are excluded).
    pub const VM_DISPATCH_OPS: &str = "aide_vm_dispatch_ops_total";

    /// Monitor hook invocations (allocs, frees, interactions, work...).
    pub const MONITOR_HOOK_EVENTS: &str = "aide_monitor_hook_events_total";
    /// Wall-clock nanoseconds spent inside monitor hooks.
    pub const MONITOR_HOOK_NANOS: &str = "aide_monitor_hook_nanos_total";

    /// Partitioning epochs the incremental partitioner evaluated.
    pub const PARTITION_EPOCHS: &str = "aide_partition_epochs_total";
    /// Partitioning epochs skipped by the dirty-region shortcut (churn
    /// since the last evaluation stayed below the threshold).
    pub const PARTITION_EPOCHS_SKIPPED: &str = "aide_partition_epochs_skipped_total";
    /// Graph deltas applied to the incremental execution graph.
    pub const GRAPH_DELTAS_APPLIED: &str = "aide_graph_deltas_applied_total";
    /// Wall-clock duration of candidate evaluation per epoch, in
    /// microseconds.
    pub const PARTITION_EVAL_MICROS: &str = "aide_partition_eval_micros";

    /// Offloads (migrations to a surrogate) completed.
    pub const OFFLOADS: &str = "aide_offloads_total";
    /// Bytes shipped by completed offloads.
    pub const OFFLOAD_BYTES: &str = "aide_offload_bytes_total";
    /// Wall-clock duration of each offload migration, in microseconds.
    pub const OFFLOAD_DURATION_MICROS: &str = "aide_offload_duration_micros";
    /// Two-phase migrations aborted before COMMIT.
    pub const MIGRATIONS_ABORTED: &str = "aide_migrations_aborted_total";
    /// Objects reinstated into the client heap by migration rollback.
    pub const MIGRATION_ROLLBACK_OBJECTS: &str = "aide_migration_rollback_objects_total";
    /// Surrogate failovers handled.
    pub const FAILOVERS: &str = "aide_failovers_total";
    /// Wall-clock duration of each failover, in microseconds.
    pub const FAILOVER_DURATION_MICROS: &str = "aide_failover_duration_micros";

    /// Sessions accepted by a surrogate daemon.
    pub const SURROGATE_SESSIONS: &str = "aide_surrogate_sessions_total";
    /// Surrogate sessions currently open.
    pub const SURROGATE_ACTIVE_SESSIONS: &str = "aide_surrogate_active_sessions";
    /// Requests served across all surrogate sessions.
    pub const SURROGATE_REQUESTS: &str = "aide_surrogate_requests_total";

    /// Logical sessions currently live across all sharded serving pools.
    pub const FLEET_LIVE_SESSIONS: &str = "aide_fleet_live_sessions";
    /// Sessions refused admission (answered `Busy`) by sharded pools.
    pub const FLEET_SESSIONS_REJECTED: &str = "aide_fleet_sessions_rejected_total";
    /// Migrations currently parked in store-and-forward relay queues.
    pub const FLEET_RELAY_QUEUE_DEPTH: &str = "aide_fleet_relay_queue_depth";
    /// Migrations queued for relay because the chosen surrogate was
    /// unreachable.
    pub const FLEET_RELAY_QUEUED: &str = "aide_fleet_relay_queued_total";
    /// Queued migrations delivered to their surrogate on reconnect.
    pub const FLEET_RELAY_RELAYED: &str = "aide_fleet_relay_relayed_total";
    /// Queued migrations dropped because their TTL lapsed before the
    /// surrogate came back.
    pub const FLEET_RELAY_EXPIRED: &str = "aide_fleet_relay_expired_total";

    /// Null-RPC probe round-trips measured by the registry, in
    /// microseconds.
    pub const REGISTRY_PROBE_RTT_MICROS: &str = "aide_registry_probe_rtt_micros";
    /// Surrogates evicted from the registry after consecutive probe
    /// failures.
    pub const REGISTRY_EVICTIONS: &str = "aide_registry_evictions_total";

    /// Frames deliberately dropped by a chaos transport.
    pub const CHAOS_DROPPED: &str = "aide_chaos_frames_dropped_total";
    /// Frames duplicated by a chaos transport.
    pub const CHAOS_DUPLICATED: &str = "aide_chaos_frames_duplicated_total";
    /// Frames whose payload a chaos transport corrupted or truncated.
    pub const CHAOS_CORRUPTED: &str = "aide_chaos_frames_corrupted_total";
    /// Frames delayed or reordered by a chaos transport.
    pub const CHAOS_DELAYED: &str = "aide_chaos_frames_delayed_total";
    /// Hard connection resets injected by a chaos transport.
    pub const CHAOS_RESETS: &str = "aide_chaos_resets_total";

    /// Divergences detected while replaying a recorded decision trace.
    pub const REPLAY_DIVERGENCES: &str = "aide_replay_divergences_total";
    /// Recorded trace inputs consumed by replays.
    pub const REPLAY_EVENTS_CONSUMED: &str = "aide_replay_events_consumed_total";

    /// Spans accepted into the causal-tracing collector.
    pub const TRACE_SPANS_RECORDED: &str = "aide_trace_spans_recorded_total";
    /// Spans dropped because the collector was at capacity.
    pub const TRACE_SPANS_DROPPED: &str = "aide_trace_spans_dropped_total";
    /// Spans currently buffered in the collector awaiting export.
    pub const TRACE_BUFFER_SPANS: &str = "aide_trace_buffer_spans";
}

/// Bucket presets (upper bounds) for the fixed-bucket histograms.
pub mod buckets {
    /// Latency buckets in microseconds: 50 µs … 1 s.
    pub const LATENCY_MICROS: &[u64] = &[
        50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
    ];
    /// Duration buckets in microseconds for long operations
    /// (migrations, failovers, GC pauses): 100 µs … 10 s.
    pub const DURATION_MICROS: &[u64] = &[
        100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000, 10_000_000,
    ];
    /// Payload-size buckets in bytes: 64 B … 16 MiB.
    pub const BYTES: &[u64] = &[
        64,
        256,
        1_024,
        4_096,
        16_384,
        65_536,
        262_144,
        1 << 20,
        4 << 20,
        16 << 20,
    ];
}
