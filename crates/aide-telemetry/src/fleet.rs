//! Per-daemon fleet load exposition: the typed form of the
//! `aide_daemon_*` lines a sharded daemon appends to its `STATS` scrape.
//!
//! The daemon side renders a [`FleetSnapshot`] into Prometheus text
//! (`aide-surrogate`'s worker pool appends it to every `STATS` answer);
//! the client side parses the same text back to feed load-aware
//! placement. Keeping both directions here, next to a serde round-trip
//! test, pins the wire format: a renamed gauge breaks the parser in the
//! same file, not silently in a scrape three crates away.

use serde::{Deserialize, Serialize};

/// One live session's lease age as exposed in a `STATS` scrape.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SessionLease {
    /// Carrier connection id the session arrived on.
    pub conn: u64,
    /// Session id within the carrier (mux channel).
    pub session: u32,
    /// Age of the session's oldest outstanding export lease, in
    /// milliseconds (0 when the session holds no leases).
    pub age_ms: u64,
}

/// A daemon's load snapshot: the per-daemon gauges and per-session lease
/// ages of one `STATS` exposition, labelled by daemon name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// Daemon name used as the `daemon="..."` label.
    pub daemon: String,
    /// Sessions currently live across the daemon's shards.
    pub live_sessions: u64,
    /// Admission limit: sessions beyond this are rejected `Busy`.
    pub session_limit: u64,
    /// Frames queued across the shard inboxes (backpressure signal).
    pub queue_depth: u64,
    /// Sessions rejected by admission control since startup.
    pub sessions_rejected_total: u64,
    /// Oldest-lease age per live session, sorted by `(conn, session)` so
    /// rendering is deterministic.
    pub leases: Vec<SessionLease>,
}

impl FleetSnapshot {
    /// Renders the snapshot as Prometheus text lines, sorted leases and
    /// all — exactly the lines `parse` consumes.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut text = String::new();
        let name = &self.daemon;
        let _ = writeln!(
            text,
            "aide_daemon_live_sessions{{daemon=\"{name}\"}} {}",
            self.live_sessions
        );
        let _ = writeln!(
            text,
            "aide_daemon_session_limit{{daemon=\"{name}\"}} {}",
            self.session_limit
        );
        let _ = writeln!(
            text,
            "aide_daemon_queue_depth{{daemon=\"{name}\"}} {}",
            self.queue_depth
        );
        let _ = writeln!(
            text,
            "aide_daemon_sessions_rejected_total{{daemon=\"{name}\"}} {}",
            self.sessions_rejected_total
        );
        let mut leases = self.leases.clone();
        leases.sort();
        for lease in &leases {
            let _ = writeln!(
                text,
                "aide_daemon_session_lease_age_ms{{daemon=\"{name}\",conn=\"{conn}\",session=\"{session}\"}} {age}",
                conn = lease.conn,
                session = lease.session,
                age = lease.age_ms,
            );
        }
        text
    }

    /// Parses the `aide_daemon_*` lines labelled `daemon="<daemon>"` out
    /// of a `STATS` exposition. Other daemons' lines and unrelated
    /// metrics are ignored. Returns `None` when the text carries no
    /// live-session gauge for that daemon (i.e. it is not a sharded
    /// daemon's scrape).
    pub fn parse(text: &str, daemon: &str) -> Option<FleetSnapshot> {
        let mut snapshot = FleetSnapshot {
            daemon: daemon.to_string(),
            live_sessions: 0,
            session_limit: 0,
            queue_depth: 0,
            sessions_rejected_total: 0,
            leases: Vec::new(),
        };
        let label = format!("{{daemon=\"{daemon}\"}}");
        let mut saw_live = false;
        for line in text.lines() {
            let Some((metric, value)) = line.rsplit_once(' ') else {
                continue;
            };
            let Ok(value) = value.parse::<u64>() else {
                continue;
            };
            if let Some(rest) = metric.strip_prefix("aide_daemon_session_lease_age_ms{") {
                if let Some(lease) = parse_lease_labels(rest, daemon) {
                    snapshot.leases.push(SessionLease {
                        age_ms: value,
                        ..lease
                    });
                }
                continue;
            }
            let Some(gauge) = metric.strip_suffix(label.as_str()) else {
                continue;
            };
            match gauge {
                "aide_daemon_live_sessions" => {
                    snapshot.live_sessions = value;
                    saw_live = true;
                }
                "aide_daemon_session_limit" => snapshot.session_limit = value,
                "aide_daemon_queue_depth" => snapshot.queue_depth = value,
                "aide_daemon_sessions_rejected_total" => snapshot.sessions_rejected_total = value,
                _ => {}
            }
        }
        if !saw_live {
            return None;
        }
        snapshot.leases.sort();
        Some(snapshot)
    }
}

/// Parses `daemon="d",conn="1",session="2"}` label text into a lease with
/// `age_ms` zeroed; `None` when the daemon label differs or labels are
/// malformed.
fn parse_lease_labels(labels: &str, daemon: &str) -> Option<SessionLease> {
    let labels = labels.strip_suffix('}')?;
    let mut conn = None;
    let mut session = None;
    let mut matched_daemon = false;
    for pair in labels.split(',') {
        let (key, value) = pair.split_once('=')?;
        let value = value.strip_prefix('"')?.strip_suffix('"')?;
        match key {
            "daemon" => matched_daemon = value == daemon,
            "conn" => conn = value.parse().ok(),
            "session" => session = value.parse().ok(),
            _ => {}
        }
    }
    if !matched_daemon {
        return None;
    }
    Some(SessionLease {
        conn: conn?,
        session: session?,
        age_ms: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetSnapshot {
        FleetSnapshot {
            daemon: "d0".to_string(),
            live_sessions: 3,
            session_limit: 16,
            queue_depth: 2,
            sessions_rejected_total: 5,
            leases: vec![
                SessionLease {
                    conn: 2,
                    session: 1,
                    age_ms: 40,
                },
                SessionLease {
                    conn: 1,
                    session: 7,
                    age_ms: 1200,
                },
                SessionLease {
                    conn: 1,
                    session: 2,
                    age_ms: 0,
                },
            ],
        }
    }

    #[test]
    fn render_parse_round_trip_is_identity_modulo_lease_order() {
        let snapshot = sample();
        let parsed = FleetSnapshot::parse(&snapshot.render(), "d0").expect("parses");
        let mut sorted = snapshot.clone();
        sorted.leases.sort();
        assert_eq!(parsed, sorted);
        // A second render/parse cycle is a fixed point.
        assert_eq!(
            parsed.render(),
            FleetSnapshot::parse(&parsed.render(), "d0")
                .unwrap()
                .render()
        );
    }

    #[test]
    fn serde_json_round_trip_preserves_every_field() {
        let snapshot = sample();
        let json = serde_json::to_string(&snapshot).expect("serializes");
        let back: FleetSnapshot = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, snapshot);
    }

    #[test]
    fn parse_filters_other_daemons_and_foreign_metrics() {
        let mut text = sample().render();
        let mut other = sample();
        other.daemon = "d1".to_string();
        other.live_sessions = 99;
        text.push_str(&other.render());
        text.push_str("aide_vm_heap_used_bytes 12345\nnot a metric line\n");
        let parsed = FleetSnapshot::parse(&text, "d0").expect("parses");
        assert_eq!(parsed.live_sessions, 3);
        assert_eq!(parsed.leases.len(), 3);
        // A daemon absent from the scrape parses to None, not zeroes.
        assert!(FleetSnapshot::parse(&text, "d7").is_none());
    }
}
