//! Exporters: JSON-lines snapshot dumps and Prometheus-style text
//! exposition.

use std::fmt::Write as _;

use serde_json::json;

use crate::metrics::TelemetrySnapshot;

/// Serializes a snapshot as JSON lines: one object per metric, with a
/// `kind` discriminant. This is the `BENCH_*.json` artifact format.
pub fn snapshot_json_lines(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let line = json!({"kind": "counter", "name": name, "value": value});
        out.push_str(&line.to_string());
        out.push('\n');
    }
    for (name, value) in &snapshot.gauges {
        let line = json!({"kind": "gauge", "name": name, "value": value});
        out.push_str(&line.to_string());
        out.push('\n');
    }
    for (name, h) in &snapshot.histograms {
        let buckets: Vec<_> = h
            .bounds
            .iter()
            .zip(&h.counts)
            .map(|(b, c)| json!([b, c]))
            .collect();
        let overflow = h.counts.last().copied().unwrap_or(0);
        let line = json!({
            "kind": "histogram",
            "name": name,
            "count": h.count,
            "sum": h.sum,
            "buckets": buckets,
            "overflow": overflow,
        });
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4). Histogram buckets are emitted cumulatively with
/// `le` labels, as Prometheus expects.
pub fn prometheus_text(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, h) in &snapshot.histograms {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in h.bounds.iter().zip(&h.counts) {
            cumulative += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    use super::*;

    fn sample() -> TelemetrySnapshot {
        let t = Telemetry::new();
        t.counter("aide_rpc_requests_total").add(3);
        t.gauge("aide_heap_used_bytes").set(1024);
        let h = t.histogram("aide_rpc_request_latency_micros", &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5000);
        t.snapshot()
    }

    #[test]
    fn json_lines_parse_individually() {
        let _guard = crate::test_guard();
        let text = snapshot_json_lines(&sample());
        let lines: Vec<serde_json::Value> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("valid json"))
            .collect();
        assert_eq!(lines.len(), 3);
        assert!(lines
            .iter()
            .any(|l| l["kind"] == "counter" && l["value"] == 3));
        assert!(lines
            .iter()
            .any(|l| l["kind"] == "histogram" && l["count"] == 3));
    }

    #[test]
    fn prometheus_text_has_cumulative_buckets() {
        let _guard = crate::test_guard();
        let text = prometheus_text(&sample());
        assert!(text.contains("# TYPE aide_rpc_requests_total counter"));
        assert!(text.contains("aide_rpc_requests_total 3"));
        assert!(text.contains("aide_heap_used_bytes 1024"));
        assert!(text.contains("aide_rpc_request_latency_micros_bucket{le=\"10\"} 1"));
        assert!(text.contains("aide_rpc_request_latency_micros_bucket{le=\"100\"} 2"));
        assert!(text.contains("aide_rpc_request_latency_micros_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("aide_rpc_request_latency_micros_sum 5055"));
        assert!(text.contains("aide_rpc_request_latency_micros_count 3"));
    }
}
