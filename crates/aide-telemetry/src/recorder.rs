//! The flight recorder: a bounded ring buffer of structured platform
//! events, so a run can explain its offload decisions after the fact.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A structured event in the life of the platform.
///
/// The taxonomy follows the paper's decision pipeline: the memory
/// monitor fires a trigger, the partitioner evaluates candidate
/// partitionings under the active policy, a winner is chosen, classes
/// migrate, and (beyond the paper, §8) links die and failovers recover.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlatformEvent {
    /// The offload trigger fired (memory pressure or allocation
    /// failure).
    TriggerFired {
        /// GC cycle at which the trigger fired.
        at_gc_cycle: u64,
        /// Live heap bytes when the trigger fired.
        heap_used: u64,
        /// Heap capacity in bytes.
        heap_capacity: u64,
        /// Human-readable trigger reason.
        reason: String,
    },
    /// The partitioner finished evaluating candidate partitionings.
    CandidatesEvaluated {
        /// Number of candidate partitionings scored.
        candidates: usize,
        /// Wall-clock time spent partitioning, in microseconds.
        elapsed_micros: u64,
    },
    /// A winning candidate partitioning was chosen.
    WinnerChosen {
        /// The policy score of the winner (lower is better).
        policy_score: f64,
        /// Bytes the winner would move to the surrogate.
        offload_bytes: u64,
        /// Interactions crossing the proposed cut.
        cut_interactions: u64,
    },
    /// The partitioner declined to offload (no beneficial candidate).
    OffloadDeclined {
        /// Number of candidate partitionings scored.
        candidates: usize,
    },
    /// The incremental partitioner skipped an evaluation epoch outright:
    /// graph churn since the last decision stayed below the configured
    /// threshold (dirty-region shortcut), so the previous "do not
    /// offload" outcome still stands.
    EpochSkipped {
        /// Weight-equivalent churn accumulated since the last evaluation.
        churn_weight: u64,
        /// The configured churn threshold.
        threshold: u64,
    },
    /// Objects of the winning partition migrated to a surrogate.
    ClassMigrated {
        /// Objects shipped.
        objects: u64,
        /// Bytes shipped.
        bytes: u64,
        /// Wall-clock migration duration, in microseconds.
        duration_micros: u64,
    },
    /// A two-phase class migration was aborted before COMMIT (the
    /// surrogate installed nothing; the client keeps its objects).
    MigrationAborted {
        /// Why the migration could not complete.
        reason: String,
    },
    /// A failed migration's objects were reinstated into the client
    /// heap, restoring the pre-offload placement.
    MigrationRolledBack {
        /// Objects reinstated.
        objects: u64,
        /// Bytes reinstated.
        bytes: u64,
    },
    /// A surrogate link was declared dead.
    LinkDied {
        /// Name of the dead surrogate.
        surrogate: String,
    },
    /// A failover completed: state reinstated on the client.
    FailoverCompleted {
        /// Name of the failed surrogate.
        surrogate: String,
        /// Objects reinstated from the ledger.
        reinstated_objects: u64,
        /// Bytes reinstated from the ledger.
        reinstated_bytes: u64,
        /// Objects whose state was lost with the surrogate.
        objects_lost: u64,
        /// Wall-clock failover duration, in microseconds.
        duration_micros: u64,
    },
    /// Export leases ran past their TTL without renewal and the expired
    /// entries were swept back to the collector (the holder is presumed
    /// dead or partitioned).
    LeaseExpired {
        /// Number of exported objects whose leases expired.
        objects: u64,
        /// The export epoch the expired entries belonged to.
        epoch: u64,
    },
    /// Stale-epoch export entries were reclaimed in bulk (failover or
    /// session teardown): their pins were dropped and the objects handed
    /// back to the local collector.
    ExportsReclaimed {
        /// Number of exported objects reclaimed.
        objects: u64,
        /// Why the reclaim ran (e.g. `"failover"`, `"session-closed"`).
        reason: String,
    },
    /// A `GcRelease` named an object that is not in the export table —
    /// chaos-induced misaccounting (a replayed or misrouted release)
    /// that used to be silently ignored.
    GcReleaseUnknown {
        /// The unknown object id (raw `ObjectId` bits).
        object: u64,
    },
    /// An offload decision found no reachable surrogate and parked its
    /// gathered victims in the store-and-forward relay queue.
    MigrationQueued {
        /// Relay transaction id assigned by the queue.
        txn: u64,
        /// Objects parked.
        objects: u64,
        /// Bytes parked.
        bytes: u64,
    },
    /// A queued migration was delivered to a surrogate on reconnect.
    MigrationRelayed {
        /// Relay transaction id.
        txn: u64,
        /// Objects delivered.
        objects: u64,
        /// Bytes delivered.
        bytes: u64,
        /// How long the shipment sat queued, in milliseconds.
        queued_for_ms: u64,
    },
    /// A queued migration sat past its TTL and was reinstated into the
    /// client heap instead of delivered.
    RelayExpired {
        /// Relay transaction id.
        txn: u64,
        /// Objects reinstated.
        objects: u64,
        /// Bytes reinstated.
        bytes: u64,
    },
    /// A queued migration was recalled into the client heap because
    /// execution went purely local while it was still parked.
    RelayRecalled {
        /// Relay transaction id.
        txn: u64,
        /// Objects reinstated.
        objects: u64,
    },
    /// A surrogate refused service with a `Busy` reply (admission
    /// control): the lease was retired but the surrogate stays ranked,
    /// under a brief cooldown.
    SessionRejected {
        /// Name of the saturated surrogate.
        surrogate: String,
        /// Cooldown the surrogate suggested, in milliseconds.
        retry_after_ms: u32,
    },
    /// A trace replay produced an event that differs from the recorded
    /// baseline timeline at the same position (`aide-replay`'s strict
    /// divergence check).
    ReplayDiverged {
        /// Index into the baseline timeline where the mismatch occurred.
        at_index: u64,
        /// Description of the event the baseline expected.
        expected: String,
        /// Description of the event the replay actually produced.
        actual: String,
    },
}

impl PlatformEvent {
    /// One-line human-readable description, used by timeline rendering.
    pub fn describe(&self) -> String {
        match self {
            PlatformEvent::TriggerFired {
                at_gc_cycle,
                heap_used,
                heap_capacity,
                reason,
            } => format!(
                "trigger fired at gc #{at_gc_cycle}: heap {heap_used}/{heap_capacity} B ({reason})"
            ),
            PlatformEvent::CandidatesEvaluated {
                candidates,
                elapsed_micros,
            } => format!("evaluated {candidates} candidate partitionings in {elapsed_micros} us"),
            PlatformEvent::WinnerChosen {
                policy_score,
                offload_bytes,
                cut_interactions,
            } => format!(
                "winner chosen: policy score {policy_score:.4}, {offload_bytes} B to move, {cut_interactions} cut interactions"
            ),
            PlatformEvent::OffloadDeclined { candidates } => {
                format!("offload declined after scoring {candidates} candidates")
            }
            PlatformEvent::EpochSkipped {
                churn_weight,
                threshold,
            } => format!("epoch skipped: churn {churn_weight} below threshold {threshold}"),
            PlatformEvent::ClassMigrated {
                objects,
                bytes,
                duration_micros,
            } => format!("migrated {objects} objects ({bytes} B) in {duration_micros} us"),
            PlatformEvent::MigrationAborted { reason } => {
                format!("migration aborted: {reason}")
            }
            PlatformEvent::MigrationRolledBack { objects, bytes } => {
                format!("migration rolled back: {objects} objects ({bytes} B) reinstated")
            }
            PlatformEvent::LinkDied { surrogate } => {
                format!("link to surrogate '{surrogate}' died")
            }
            PlatformEvent::FailoverCompleted {
                surrogate,
                reinstated_objects,
                reinstated_bytes,
                objects_lost,
                duration_micros,
            } => format!(
                "failover from '{surrogate}' completed in {duration_micros} us: {reinstated_objects} objects ({reinstated_bytes} B) reinstated, {objects_lost} lost"
            ),
            PlatformEvent::LeaseExpired { objects, epoch } => {
                format!("{objects} export leases expired (epoch {epoch}), entries swept")
            }
            PlatformEvent::ExportsReclaimed { objects, reason } => {
                format!("{objects} stale exports reclaimed ({reason})")
            }
            PlatformEvent::GcReleaseUnknown { object } => {
                format!("gc release named unknown export {object:#x}")
            }
            PlatformEvent::MigrationQueued {
                txn,
                objects,
                bytes,
            } => format!("migration queued for relay: txn {txn}, {objects} objects ({bytes} B)"),
            PlatformEvent::MigrationRelayed {
                txn,
                objects,
                bytes,
                queued_for_ms,
            } => format!(
                "queued migration relayed: txn {txn}, {objects} objects ({bytes} B) after {queued_for_ms} ms"
            ),
            PlatformEvent::RelayExpired {
                txn,
                objects,
                bytes,
            } => format!("relay entry expired: txn {txn}, {objects} objects ({bytes} B) reinstated"),
            PlatformEvent::RelayRecalled { txn, objects } => {
                format!("relay entry recalled: txn {txn}, {objects} objects reinstated")
            }
            PlatformEvent::SessionRejected {
                surrogate,
                retry_after_ms,
            } => format!(
                "surrogate '{surrogate}' rejected the session as busy (retry after {retry_after_ms} ms)"
            ),
            PlatformEvent::ReplayDiverged {
                at_index,
                expected,
                actual,
            } => format!("replay diverged at timeline event {at_index}: expected {expected}, got {actual}"),
        }
    }
}

/// A reference to the causal-tracing span that was active when an event
/// was recorded, linking timeline rows to exported span trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRef {
    /// The trace the active span belonged to.
    pub trace_id: u64,
    /// The active span itself.
    pub span_id: u64,
}

/// A [`PlatformEvent`] stamped with a sequence number and a timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Monotonic sequence number (gaps reveal ring-buffer evictions).
    pub seq: u64,
    /// Microseconds since the recorder was created — wall clock for
    /// live runs, virtual time for emulator runs.
    pub at_micros: u64,
    /// The event.
    pub event: PlatformEvent,
    /// The tracing span active on the recording thread, when a trace
    /// annotator is registered (see [`crate::set_trace_annotator`]).
    /// Absent from serialized form when `None`, so traces recorded
    /// before the tracing layer existed still load.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub span: Option<SpanRef>,
}

/// A bounded ring buffer of [`TimedEvent`]s.
///
/// Live runs stamp events with wall-clock time via [`record`]
/// (microseconds since the recorder was created); the trace-driven
/// emulator stamps virtual time via [`record_at`], which makes emulated
/// and live timelines directly diffable.
///
/// [`record`]: FlightRecorder::record
/// [`record_at`]: FlightRecorder::record_at
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    origin: Instant,
    seq: AtomicU64,
    dropped: AtomicU64,
    events: Mutex<VecDeque<TimedEvent>>,
}

impl FlightRecorder {
    /// Creates a recorder that retains at most `capacity` events (the
    /// oldest are evicted first). Capacity 0 is clamped to 1.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            origin: Instant::now(),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Records `event` stamped with the wall-clock elapsed time since
    /// the recorder was created.
    pub fn record(&self, event: PlatformEvent) {
        let at = u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.record_at(at, event);
    }

    /// Records `event` with an explicit timestamp (virtual time for
    /// emulator runs).
    pub fn record_at(&self, at_micros: u64, event: PlatformEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let span =
            crate::annotate_with_trace().map(|(trace_id, span_id)| SpanRef { trace_id, span_id });
        let mut events = self.events.lock();
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(TimedEvent {
            seq,
            at_micros,
            event,
            span,
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.events.lock().iter().cloned().collect()
    }

    /// Number of events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Renders events as a human-readable timeline, one line per event.
pub fn render_timeline(events: &[TimedEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let link = match &e.span {
            Some(s) => format!("  ~ trace={:#x} span={:#x}", s.trace_id, s.span_id),
            None => String::new(),
        };
        out.push_str(&format!(
            "[{:>4} +{:>10.6}s] {}{link}\n",
            e.seq,
            e.at_micros as f64 / 1e6,
            e.event.describe()
        ));
    }
    out
}

/// Serializes events as JSON lines (one event object per line).
pub fn events_json_lines(events: &[TimedEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("events serialize"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_keeps_events_in_order() {
        let r = FlightRecorder::new(16);
        r.record(PlatformEvent::LinkDied {
            surrogate: "a".into(),
        });
        r.record_at(42, PlatformEvent::OffloadDeclined { candidates: 3 });
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].at_micros, 42);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let r = FlightRecorder::new(2);
        for i in 0..5 {
            r.record_at(
                i,
                PlatformEvent::OffloadDeclined {
                    candidates: i as usize,
                },
            );
        }
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[1].seq, 4);
        assert_eq!(r.dropped(), 3);
    }

    #[test]
    fn events_round_trip_through_serde() {
        let r = FlightRecorder::new(8);
        r.record_at(
            10,
            PlatformEvent::WinnerChosen {
                policy_score: 1.25,
                offload_bytes: 4096,
                cut_interactions: 7,
            },
        );
        r.record_at(
            20,
            PlatformEvent::FailoverCompleted {
                surrogate: "porch-pc".into(),
                reinstated_objects: 12,
                reinstated_bytes: 48_000,
                objects_lost: 1,
                duration_micros: 900,
            },
        );
        let events = r.events();
        let lines = events_json_lines(&events);
        let back: Vec<TimedEvent> = lines
            .lines()
            .map(|l| serde_json::from_str(l).expect("line parses"))
            .collect();
        assert_eq!(events, back);
    }

    thread_local! {
        static TEST_SPAN: std::cell::Cell<Option<(u64, u64)>> =
            const { std::cell::Cell::new(None) };
    }

    fn test_annotator() -> Option<(u64, u64)> {
        TEST_SPAN.with(|c| c.get())
    }

    #[test]
    fn events_carry_the_active_span_when_annotated() {
        crate::set_trace_annotator(test_annotator);
        TEST_SPAN.with(|c| c.set(Some((0xAB, 0xCD))));
        let r = FlightRecorder::new(4);
        r.record(PlatformEvent::OffloadDeclined { candidates: 1 });
        TEST_SPAN.with(|c| c.set(None));
        r.record(PlatformEvent::OffloadDeclined { candidates: 2 });
        let events = r.events();
        assert_eq!(
            events[0].span,
            Some(SpanRef {
                trace_id: 0xAB,
                span_id: 0xCD
            })
        );
        assert_eq!(events[1].span, None);
        // JSON-lines export surfaces the link, and omits it when absent
        // so pre-tracing traces still parse byte-compatibly.
        let lines = events_json_lines(&events);
        assert!(lines.lines().next().unwrap().contains("\"span\""));
        assert!(!lines.lines().nth(1).unwrap().contains("\"span\""));
        let text = render_timeline(&events);
        assert!(text.contains("trace=0xab span=0xcd"), "got: {text}");
    }

    #[test]
    fn timeline_mentions_the_policy_score() {
        let r = FlightRecorder::new(8);
        r.record_at(
            5,
            PlatformEvent::WinnerChosen {
                policy_score: 0.5,
                offload_bytes: 100,
                cut_interactions: 2,
            },
        );
        let text = render_timeline(&r.events());
        assert!(text.contains("policy score 0.5000"), "got: {text}");
    }
}
